//! The paper's open problem, explored: compare the distributed
//! disabled-region decomposition of a faulty block against the exact
//! minimum cover by orthogonal convex polygons (conjectured NP-complete —
//! our exact solver handles small blocks by exhaustive partition search).
//!
//! ```sh
//! cargo run --example open_problem
//! ```

use ocp_core::partition::{optimal_partition, optimality_gap, EXACT_FAULT_LIMIT};
use ocp_core::prelude::*;
use ocp_geometry::Region;
use ocp_mesh::{render, Coord, Topology};

fn c(x: i32, y: i32) -> Coord {
    Coord::new(x, y)
}

fn main() {
    // A fault cluster whose disabled region is forced to keep pocket
    // nodes: the Figure 2(b)-style U. The distributed construction keeps
    // the pocket; can the optimal partition do better?
    let topology = Topology::mesh(12, 10);
    let faults: Vec<Coord> = vec![
        // U-shape: two arms and a bottom bar.
        c(3, 3),
        c(3, 4),
        c(3, 5),
        c(4, 3),
        c(5, 3),
        c(5, 4),
        c(5, 5),
    ];
    let map = FaultMap::new(topology, faults.iter().copied());
    let out = run_pipeline(&map, &PipelineConfig::default());

    println!("fault pattern ('#'), disabled region after phase 2 ('d'):");
    print!(
        "{}",
        render(&out.activation, |cc, a| match a {
            _ if map.is_faulty(cc) => '#',
            ActivationState::Disabled => 'd',
            ActivationState::Enabled => '.',
        })
    );

    let grouped = out.regions_per_block();
    for (bi, (block, regions)) in out.blocks.iter().zip(&grouped).enumerate() {
        let dr_cost: usize = regions.iter().map(|r| r.nonfaulty_count()).sum();
        println!(
            "\nblock {bi}: {} faults, {} disabled region(s), {} nonfaulty kept disabled",
            block.faults.len(),
            regions.len(),
            dr_cost
        );
        match optimality_gap(block, regions, EXACT_FAULT_LIMIT) {
            Some(gap) => {
                println!(
                    "exact optimum: {} nonfaulty nodes (distributed construction wastes {})",
                    gap.optimal_cost,
                    gap.excess()
                );
            }
            None => println!("block too large for the exact solver"),
        }
    }

    // Show the solver's reasoning on the raw fault set.
    let opt = optimal_partition(&Region::from_cells(faults), EXACT_FAULT_LIMIT).unwrap();
    println!(
        "\noptimal cover: {} polygon(s), total cost {}, {} partitions examined",
        opt.polygons.len(),
        opt.cost,
        opt.partitions_examined
    );
    for (i, poly) in opt.polygons.iter().enumerate() {
        println!(
            "  polygon {i}: {} cells covering faults {:?}",
            poly.len(),
            opt.groups[i]
        );
    }
    println!(
        "\nNote: for this U-shaped cluster the pocket fill is unavoidable — every\n\
         partition that severs the bottom bar leaves polygons at distance 1, which\n\
         would merge back into one fault region. The conjectured NP-completeness\n\
         concerns exactly this combinatorial choice at scale."
    );
}
