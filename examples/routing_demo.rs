//! Routing payoff demo: the same faults, routed under the classical
//! faulty-block model vs the paper's orthogonal-convex-polygon model.
//!
//! ```sh
//! cargo run --example routing_demo
//! ```

use ocp_core::prelude::*;
use ocp_geometry::Region;
use ocp_mesh::{render, Coord, Topology};
use ocp_routing::{EnabledMap, FaultTolerantRouter};

fn main() {
    // An L-shaped fault cluster: the block model disables its whole
    // bounding rectangle, the DR model only the L itself.
    let topology = Topology::mesh(14, 10);
    let faults = [
        Coord::new(5, 2),
        Coord::new(5, 3),
        Coord::new(5, 4),
        Coord::new(5, 5),
        Coord::new(6, 2),
        Coord::new(7, 2),
    ];
    let map = FaultMap::new(topology, faults);
    let out = run_pipeline(&map, &PipelineConfig::default());

    let (src, dst) = (Coord::new(2, 4), Coord::new(11, 4));

    for (name, enabled, regions) in [
        (
            "faulty-block model",
            EnabledMap::from_safety(&out),
            out.blocks
                .iter()
                .map(|b| b.cells.clone())
                .collect::<Vec<Region>>(),
        ),
        (
            "disabled-region model (paper)",
            EnabledMap::from_outcome(&out),
            out.regions.iter().map(|r| r.cells.clone()).collect(),
        ),
    ] {
        println!("== {name} ==");
        println!("enabled nodes: {}", enabled.enabled_count());
        let router = FaultTolerantRouter::new(enabled.clone(), &regions);
        match router.route(src, dst) {
            Ok(path) => {
                path.validate(&enabled).expect("valid route");
                println!(
                    "route {src} -> {dst}: {} hops (minimal would be {}), stretch {:.2}",
                    path.len(),
                    topology.distance(src, dst),
                    path.stretch(topology).unwrap_or(1.0),
                );
                let on_path: std::collections::HashSet<Coord> = path.hops.iter().copied().collect();
                print!(
                    "{}",
                    render(&out.activation, |c, _| {
                        if map.is_faulty(c) {
                            '#'
                        } else if c == src {
                            'S'
                        } else if c == dst {
                            'D'
                        } else if on_path.contains(&c) {
                            'o'
                        } else if !enabled.is_enabled(c) {
                            'x'
                        } else {
                            '.'
                        }
                    })
                );
            }
            Err(e) => println!("route {src} -> {dst} failed: {e}"),
        }
        println!();
    }
    println!("legend: '#' fault, 'x' disabled healthy node, 'o' route, S/D endpoints");
}
