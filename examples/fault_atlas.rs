//! Fault atlas: renders the paper's worked examples (Figures 1 and 2 in
//! spirit, Section 3 exactly) under all the labeling rules, side by side.
//!
//! ```sh
//! cargo run --example fault_atlas
//! ```

use ocp_core::prelude::*;
use ocp_mesh::render;
use ocp_workloads::fixtures;

fn show(fx: &fixtures::Fixture) {
    println!("\n=== {} ===", fx.name);
    println!("{}\n", fx.description);
    let map = FaultMap::new(fx.topology, fx.faults.iter().copied());

    for (label, rule) in [
        (
            "Definition 2a (two unsafe neighbors)",
            SafetyRule::TwoUnsafeNeighbors,
        ),
        (
            "Definition 2b (unsafe in both dimensions)",
            SafetyRule::BothDimensions,
        ),
    ] {
        let out = run_pipeline(
            &map,
            &PipelineConfig {
                rule,
                ..PipelineConfig::default()
            },
        );
        let stats = ModelStats::collect(&map, &out);
        println!(
            "{label}: {} block(s), {} region(s), {} nonfaulty sacrificed -> {} after phase 2",
            out.blocks.len(),
            out.regions.len(),
            stats.unsafe_nonfaulty,
            stats.disabled_nonfaulty
        );
        let left = render(&out.safety, |c, s| match s {
            _ if map.is_faulty(c) => '#',
            SafetyState::Unsafe => 'u',
            SafetyState::Safe => '.',
        });
        let right = render(&out.activation, |c, a| match a {
            _ if map.is_faulty(c) => '#',
            ActivationState::Disabled => 'd',
            ActivationState::Enabled => '.',
        });
        // Print the block view and the region view side by side.
        for (l, r) in left.lines().zip(right.lines()) {
            println!("  {l}    {r}");
        }
        println!();
    }
}

fn main() {
    println!("legend: '#' faulty, 'u' unsafe nonfaulty, 'd' disabled nonfaulty, '.' enabled");
    println!("left grid: after phase 1 (faulty blocks); right: after phase 2 (convex polygons)");
    for fx in fixtures::all() {
        show(&fx);
    }
}
