//! Quickstart: label a faulty mesh, form the orthogonal convex polygons,
//! and verify the paper's theorems on the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ocp_core::prelude::*;
use ocp_core::verify::verify;
use ocp_mesh::{render, Coord, Topology};

fn main() {
    // A 12x12 mesh with a cluster of faults and one stray fault.
    let topology = Topology::mesh(12, 12);
    let faults = [
        Coord::new(4, 5),
        Coord::new(5, 6),
        Coord::new(6, 5),
        Coord::new(5, 4),
        Coord::new(10, 2),
    ];
    let map = FaultMap::new(topology, faults);

    // Run the paper's two distributed phases (Definition 2b + Definition 3).
    let out = run_pipeline(&map, &PipelineConfig::default());

    println!("machine: 12x12 mesh, {} faults", map.fault_count());
    println!(
        "phase 1 (safe/unsafe):     {} rounds, {} messages",
        out.safety_trace.rounds(),
        out.safety_trace.messages_sent
    );
    println!(
        "phase 2 (enabled/disabled): {} rounds, {} messages",
        out.enablement_trace.rounds(),
        out.enablement_trace.messages_sent
    );
    println!(
        "faulty blocks: {}   disabled regions: {}",
        out.blocks.len(),
        out.regions.len()
    );

    // '#' = faulty, 'u' = sacrificed by the block model, 'd' = still
    // disabled after phase 2, '.' = enabled.
    println!("\nblock model (phase 1):");
    print!(
        "{}",
        render(&out.safety, |c, s| match s {
            _ if map.is_faulty(c) => '#',
            SafetyState::Unsafe => 'u',
            SafetyState::Safe => '.',
        })
    );
    println!("\northogonal convex polygons (phase 2):");
    print!(
        "{}",
        render(&out.activation, |c, a| match a {
            _ if map.is_faulty(c) => '#',
            ActivationState::Disabled => 'd',
            ActivationState::Enabled => '.',
        })
    );

    let stats = ModelStats::collect(&map, &out);
    println!(
        "\nunsafe nonfaulty: {}  re-enabled: {}  still disabled: {}",
        stats.unsafe_nonfaulty, stats.enabled_recovered, stats.disabled_nonfaulty
    );
    if let Some(ratio) = stats.enabled_ratio() {
        println!("enabled ratio: {:.1}%", ratio * 100.0);
    }

    // Machine-check Theorem 1, Lemma 1, Theorem 2 and the Corollary.
    verify(&map, &out).expect("paper invariants hold");
    println!("\nall Section 4 invariants verified ✓");
}
