//! The protocol as real message-passing processes: one thread per node, one
//! channel per link — the literal reading of the paper's model — compared
//! against the sequential and sharded executors on the same problem.
//!
//! ```sh
//! cargo run --example distributed_actors
//! ```

use ocp_core::labeling::enablement::compute_enablement;
use ocp_core::labeling::safety::{compute_safety, SafetyRule};
use ocp_core::prelude::*;
use ocp_distsim::Executor;
use ocp_mesh::{Coord, Topology};
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let topology = Topology::mesh(16, 16);
    let mut rng = SmallRng::seed_from_u64(99);
    let faults = uniform_faults(topology, 12, &mut rng);
    println!(
        "16x16 mesh, {} faults at {:?}\n",
        faults.len(),
        faults.iter().take(6).collect::<Vec<_>>()
    );
    let map = FaultMap::new(topology, faults);

    let executors: [(&str, Executor); 3] = [
        ("sequential (reference)", Executor::Sequential),
        (
            "sharded, 4 threads + halo channels",
            Executor::Sharded { threads: 4 },
        ),
        (
            "actor: 256 node threads, 960 link channels",
            Executor::Actor,
        ),
    ];

    let mut reference: Option<(Vec<Coord>, u32, u32)> = None;
    for (name, exec) in executors {
        let t0 = std::time::Instant::now();
        let safety = compute_safety(&map, SafetyRule::BothDimensions, exec, 400);
        let enable = compute_enablement(&map, &safety.grid, exec, 400);
        let elapsed = t0.elapsed();
        let disabled: Vec<Coord> = enable
            .grid
            .coords_where(|&a| a == ActivationState::Disabled)
            .collect();
        println!("== {name} ==");
        println!(
            "  phase 1: {} rounds / {} msgs; phase 2: {} rounds / {} msgs; wall {elapsed:?}",
            safety.trace.rounds(),
            safety.trace.messages_sent,
            enable.trace.rounds(),
            enable.trace.messages_sent,
        );
        println!("  disabled nodes: {}", disabled.len());
        match &reference {
            None => reference = Some((disabled, safety.trace.rounds(), enable.trace.rounds())),
            Some((ref_disabled, r1, r2)) => {
                assert_eq!(&disabled, ref_disabled, "{name} diverged from reference");
                assert_eq!(safety.trace.rounds(), *r1);
                assert_eq!(enable.trace.rounds(), *r2);
                println!("  ✓ identical labels and round counts as the reference");
            }
        }
        println!();
    }
    println!("all executors agree: the protocol is purely local and deterministic");
}
