//! Mesh vs torus: the same fault pattern labeled on both topologies.
//!
//! The mesh needs the paper's ghost-node boundary treatment; the torus has
//! no boundary but wraps fault regions across the seam — including blocks
//! that only exist *because* of wraparound adjacency.
//!
//! ```sh
//! cargo run --example torus_vs_mesh
//! ```

use ocp_core::prelude::*;
use ocp_mesh::{render, Coord, Topology, TopologyKind};

fn main() {
    // Faults hugging opposite edges: diagonal neighbors across the torus
    // seam, far apart on the mesh.
    let faults = [
        Coord::new(0, 4),
        Coord::new(9, 5),
        Coord::new(4, 4),
        Coord::new(5, 5),
    ];

    for kind in [TopologyKind::Mesh, TopologyKind::Torus] {
        let topology = Topology::new(kind, 10, 10);
        let map = FaultMap::new(topology, faults);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let stats = ModelStats::collect(&map, &out);
        println!("== {kind:?} 10x10 ==");
        println!(
            "blocks: {}  regions: {}  unsafe nonfaulty: {}  still disabled: {}",
            out.blocks.len(),
            out.regions.len(),
            stats.unsafe_nonfaulty,
            stats.disabled_nonfaulty
        );
        print!(
            "{}",
            render(&out.activation, |c, a| match a {
                _ if map.is_faulty(c) => '#',
                ActivationState::Disabled => 'd',
                ActivationState::Enabled => '.',
            })
        );
        // On the torus, (0,4) and (9,5) are diagonal neighbors through the
        // seam, so they merge into one (wrapped) block.
        let seam_block = out
            .blocks
            .iter()
            .find(|b| b.cells.contains(Coord::new(0, 4)) && b.cells.contains(Coord::new(9, 5)));
        match kind {
            TopologyKind::Mesh => {
                assert!(seam_block.is_none());
                println!("mesh: edge faults stay separate blocks\n");
            }
            TopologyKind::Torus => {
                assert!(seam_block.is_some());
                let b = seam_block.unwrap();
                println!(
                    "torus: seam faults merged into one block of {} cells (unwraps to a rectangle: {})\n",
                    b.len(),
                    b.is_rectangle()
                );
            }
        }
        ocp_core::verify::verify(&map, &out).expect("invariants hold on both topologies");
    }
}
