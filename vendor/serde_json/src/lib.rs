//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde's [`Value`] tree to JSON text and parses
//! JSON text back. Covers the subset this workspace uses: `to_string`,
//! `to_string_pretty`, `from_str`, and an indexable `Value`.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization failure with a human-readable message.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Renders a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Renders a value as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Renders a value straight to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON bytes into any deserializable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    Ok(T::from_value(&v)?)
}

// ------------------------------------------------------------ printer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats, matching
                // the upstream crate's output closely enough to round-trip.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("truncated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error(format!("bad \\u escape: {e}")))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a \"quoted\"\nline".into())),
            (
                "counts".into(),
                Value::Array(vec![Value::Int(-3), Value::UInt(u64::MAX)]),
            ),
            ("ratio".into(), Value::Float(1.0)),
            ("none".into(), Value::Null),
            ("flag".into(), Value::Bool(true)),
        ]);
        for render in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&render).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn integral_float_keeps_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn index_and_compare() {
        let v: Value = from_str(r#"{"violations": 0, "tag": "ok"}"#).unwrap();
        assert_eq!(v["violations"], 0);
        assert_eq!(v["tag"], "ok");
        assert!(v["missing"].is_null());
    }
}
