//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`/`boxed`, `Just`, integer-range and tuple
//! strategies, `any`, `collection::btree_set`, `prop_oneof!`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros. Cases are
//! generated deterministically from a per-test seed. Failing inputs are
//! reported but NOT shrunk — rerun with the printed case index to debug.

use std::marker::PhantomData;

// ------------------------------------------------------------ rng

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Expands a 64-bit seed into generator state via SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform sample from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// FNV-1a hash used by the `proptest!` macro to derive per-test seeds.
#[doc(hidden)]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ------------------------------------------------------------ config & errors

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case demonstrated a real failure.
    Fail(String),
    /// The case was discarded (e.g. by `prop_assume!`), not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failing-case error with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded-case marker with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

// ------------------------------------------------------------ strategy

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds every generated value into `f` to build a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice among alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty set of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Draw until the codepoint is a valid scalar (skips surrogates);
        // bias half the draws to ASCII so short strings still exercise the
        // common case.
        loop {
            let raw = if rng.next_u64() & 1 == 0 {
                rng.below(0x80) as u32
            } else {
                rng.below(0x11_0000) as u32
            };
            if let Some(c) = char::from_u32(raw) {
                return c;
            }
        }
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Inclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing vectors of independent elements.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element`-generated values whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy producing ordered sets of distinct elements.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Sets of `element`-generated values whose size falls in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target =
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            let mut set = BTreeSet::new();
            // The element domain may hold fewer than `target` distinct
            // values, so bound the number of draws.
            let mut attempts = target * 20 + 50;
            while set.len() < target && attempts > 0 {
                set.insert(self.element.new_value(rng));
                attempts -= 1;
            }
            set
        }
    }
}

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection::SizeRange;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ------------------------------------------------------------ macros

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            __case, __cfg.cases, stringify!($name), __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(@munch ($cfg) $($rest)*);
    };
}

/// Uniform choice among alternative strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                __l
            )));
        }
    }};
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn union_covers_all_alternatives() {
        let strat = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = TestRng::new(5);
        let seen: std::collections::BTreeSet<u32> = (0..200)
            .map(|_| crate::Strategy::new_value(&strat, &mut rng))
            .collect();
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn btree_set_respects_size_bounds() {
        let strat = crate::collection::btree_set(0u32..1000, 3..=7);
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let s = crate::Strategy::new_value(&strat, &mut rng);
            assert!((3..=7).contains(&s.len()), "size {} out of bounds", s.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_strategies(x in 0u32..10, (a, b) in (0i32..5, 5i32..10)) {
            prop_assert!(x < 10);
            prop_assert!(a < b, "a={} b={}", a, b);
            prop_assert_eq!(a / 5, 0);
        }

        #[test]
        fn flat_map_dependent_ranges(pair in (2u32..20).prop_flat_map(|n| (Just(n), 0u32..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }
    }
}
