//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled token-level parsing (no `syn`/`quote` — the build has no
//! network access to fetch them). Supports exactly the shapes this
//! workspace uses:
//!
//! * structs with named fields, optionally with plain type parameters
//!   (e.g. `Grid<T>`),
//! * enums with unit variants (optionally with discriminants), struct
//!   variants, and tuple variants.
//!
//! The generated impls target the vendored `serde` facade, whose data model
//! is a JSON-like [`Value`] tree: `Serialize::to_value` /
//! `Deserialize::from_value`. Enums use serde's externally-tagged encoding.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives `serde::Serialize` (the vendored facade's trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the vendored facade's trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    it.next();
                    return parse_item(kw == "enum", &mut it);
                }
                panic!("serde_derive shim: unexpected token `{kw}`");
            }
            other => panic!("serde_derive shim: unexpected input {other:?}"),
        }
    }
}

fn parse_item(
    is_enum: bool,
    it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Input {
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            it.next();
            let mut depth = 1usize;
            let mut expect_param = true;
            while depth > 0 {
                match it.next().expect("unterminated generics") {
                    TokenTree::Punct(p) => match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 1 => expect_param = true,
                        ':' if depth == 1 => expect_param = false,
                        _ => {}
                    },
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        generics.push(id.to_string());
                        expect_param = false;
                    }
                    _ => {}
                }
            }
        }
    }
    // Skip anything (e.g. a `where` clause) up to the body.
    let body = loop {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break Some(g),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
                // Tuple struct: `struct Foo(A, B);`
                return Input {
                    name,
                    generics,
                    kind: Kind::TupleStruct(count_tuple_fields(&g)),
                };
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break None,
            Some(_) => continue,
            None => break None,
        }
    };
    let kind = match (is_enum, body) {
        (false, Some(g)) => Kind::NamedStruct(parse_named_fields(&g)),
        (false, None) => Kind::UnitStruct,
        (true, Some(g)) => Kind::Enum(parse_variants(&g)),
        (true, None) => panic!("serde_derive shim: enum without body"),
    };
    Input {
        name,
        generics,
        kind,
    }
}

/// Field names of a `{ a: T, b: U }` group, tolerating attributes,
/// visibility and generic types containing commas.
fn parse_named_fields(g: &proc_macro::Group) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = g.stream().into_iter().peekable();
    loop {
        // Skip attributes / visibility.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = it.next() else {
            break;
        };
        fields.push(id.to_string());
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field, got {other:?}"),
        }
        // Skip the type up to a comma at angle-bracket depth zero.
        let mut angle = 0i32;
        loop {
            match it.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        angle -= 1;
                    } else if c == ',' && angle == 0 {
                        it.next();
                        break;
                    }
                    it.next();
                }
                Some(_) => {
                    it.next();
                }
            }
        }
    }
    fields
}

/// Number of fields in a tuple `( ... )` group (top-level commas + 1).
fn count_tuple_fields(g: &proc_macro::Group) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tt in g.stream() {
        any = true;
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if !any {
        0
    } else {
        commas + 1
    }
}

fn parse_variants(g: &proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = g.stream().into_iter().peekable();
    loop {
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next();
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = it.next() else {
            break;
        };
        let name = id.to_string();
        let mut fields = VariantFields::Unit;
        if let Some(TokenTree::Group(g)) = it.peek() {
            fields = match g.delimiter() {
                Delimiter::Brace => VariantFields::Named(parse_named_fields(g)),
                Delimiter::Parenthesis => VariantFields::Tuple(count_tuple_fields(g)),
                _ => VariantFields::Unit,
            };
            it.next();
        }
        // Skip an optional `= discriminant` and the trailing comma.
        loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => continue,
                None => break,
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn impl_header(input: &Input, trait_name: &str) -> String {
    let bound = format!("::serde::{trait_name}");
    if input.generics.is_empty() {
        format!("impl {bound} for {}", input.name)
    } else {
        let params: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        format!(
            "impl<{}> {bound} for {}<{}>",
            params.join(", "),
            input.name,
            input.generics.join(", ")
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Kind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "Self::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let entries: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "Self::{vn}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(input, "Serialize")
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__obj, \"{f}\")?"))
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object for {name}\"))?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::index(__arr, {i})?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for {name}\"))?; \
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok(Self::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::__private::field(__obj, \"{f}\")?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __obj = __inner.as_object().ok_or_else(|| ::serde::DeError::custom(\"expected object for variant {vn}\"))?; ::std::result::Result::Ok(Self::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::__private::index(__arr, {i})?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __arr = __inner.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for variant {vn}\"))?; ::std::result::Result::Ok(Self::{vn}({})) }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::String(__s) => match __s.as_str() {{ {unit} _ => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __s))) }}, \
                   ::serde::Value::Object(__entries) if __entries.len() == 1 => {{ \
                     let (__tag, __inner) = &__entries[0]; \
                     match __tag.as_str() {{ {data} _ => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __tag))) }} \
                   }}, \
                   _ => ::std::result::Result::Err(::serde::DeError::custom(\"expected enum encoding for {name}\")) \
                 }}",
                unit = unit_arms.join(" "),
                data = data_arms.join(" "),
            )
        }
    };
    format!(
        "{} {{ fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}",
        impl_header(input, "Deserialize")
    )
}
