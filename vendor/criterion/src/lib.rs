//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!` bench harness
//! compiling and *running*: each benchmark executes a small fixed number
//! of timed iterations and prints the mean wall time. No statistics,
//! warm-up calibration, or HTML reports.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark; enough for a smoke signal, cheap enough
/// for CI.
const ITERS: u32 = 10;

/// Top-level harness handle, one per `criterion_group!` run.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&format!("{id}"), &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in always runs a fixed
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; measurement time is not calibrated.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), &mut f);
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier combining a function name and/or parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    total_nanos: u128,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over the stand-in's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher {
        total_nanos: 0,
        iters: ITERS,
    };
    f(&mut b);
    let mean = b.total_nanos / u128::from(b.iters.max(1));
    println!(
        "  bench: {label:<48} mean {} ns/iter over {} iters",
        mean, b.iters
    );
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let _ = $cfg;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
