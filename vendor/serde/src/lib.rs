//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serde facade with the same import surface the code
//! uses (`serde::{Serialize, Deserialize}` as both traits and derives).
//! Instead of serde's visitor-based data model, everything serializes
//! through a JSON-like [`Value`] tree; the vendored `serde_json` renders
//! and parses it. Formats are self-consistent (round-trip safe) but not
//! guaranteed byte-identical to real serde_json for exotic types.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// A JSON-like dynamically-typed value: the data model every type
/// serializes into and deserializes from.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric contents as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Numeric contents as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) => u64::try_from(v).ok(),
            Value::UInt(v) => Some(v),
            _ => None,
        }
    }

    /// Boolean contents, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key, `None` if absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match *self {
                    Value::Int(v) => v == *other as i64,
                    Value::UInt(v) => i64::try_from(v).is_ok_and(|v| v == *other as i64),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------------ primitives

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(DeError::custom)
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self as u64) {
                    Ok(v) => Value::Int(v),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(DeError::custom)
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Ord + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut sorted: Vec<&T> = self.iter().collect();
        sorted.sort();
        Value::Array(sorted.into_iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut sorted: Vec<(&String, &V)> = self.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            sorted
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                Ok(($(__private::index::<$name>(arr, $idx)?,)+))
            }
        }
    )*};
}
ser_de_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// Helpers the derive macros call; not part of the public API contract.
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Looks up and deserializes an object member.
    pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
        let v = obj
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))?;
        T::from_value(v).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
    }

    /// Deserializes the `i`-th element of an array.
    pub fn index<T: Deserialize>(arr: &[Value], i: usize) -> Result<T, DeError> {
        let v = arr
            .get(i)
            .ok_or_else(|| DeError::custom(format!("missing element {i}")))?;
        T::from_value(v).map_err(|e| DeError::custom(format!("element {i}: {e}")))
    }
}
