//! Offline stand-in for `rand` 0.8.
//!
//! Provides the exact import surface this workspace uses — `Rng`,
//! `SeedableRng`, `rngs::SmallRng`, `seq::SliceRandom` — backed by a
//! xoshiro256++ generator seeded via SplitMix64. Streams are
//! deterministic per seed but intentionally NOT identical to upstream
//! rand's; all in-repo expectations are seed-relative, not
//! stream-absolute.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling helpers, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (which must lie in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        // 53 uniform mantissa bits, same resolution as upstream.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample values of type `T` from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sample from `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast generator: xoshiro256++ seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Uniform random permutation in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements (fewer if the slice is shorter), in
        /// random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + uniform_below(rng, (indices.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices.truncate(amount);
            SliceChooseIter {
                slice: self,
                indices,
                next: 0,
            }
        }
    }

    /// Iterator over the elements picked by
    /// [`SliceRandom::choose_multiple`].
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        indices: Vec<usize>,
        next: usize,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            let idx = *self.indices.get(self.next)?;
            self.next += 1;
            Some(&self.slice[idx])
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            let rem = self.indices.len() - self.next;
            (rem, Some(rem))
        }
    }

    impl<'a, T> ExactSizeIterator for SliceChooseIter<'a, T> {}
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_multiple_distinct_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let items: Vec<u32> = (0..20).collect();
        let picked: Vec<&u32> = items.choose_multiple(&mut rng, 5).collect();
        assert_eq!(picked.len(), 5);
        let mut sorted: Vec<u32> = picked.iter().map(|&&v| v).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut items: Vec<u32> = (0..50).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
