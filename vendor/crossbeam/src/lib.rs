//! Offline stand-in for `crossbeam`.
//!
//! Implements the only piece this workspace uses: `channel::unbounded`
//! MPMC channels with cloneable senders/receivers and disconnect
//! semantics, built on `Mutex` + `Condvar` instead of lock-free queues.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; cloneable (messages go to whichever receiver pops
    /// first).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The message could not be delivered because all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// The channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Reasons a non-blocking receive can fail.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently has no message.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails once the channel is empty
        /// and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.ready.wait(state).unwrap();
            }
        }

        /// Pops a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                Ok(value)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_single_producer() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..1000u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            handle.join().unwrap();
            assert_eq!(sum, 999 * 1000 / 2);
        }
    }
}
