//! Neighborhood views over a topology.

use crate::{Coord, Direction, Neighbor, Topology, DIRECTIONS};

/// The (up to four) neighbors of one node, with per-direction access.
///
/// This is the "who do I exchange messages with" view a node program sees.
#[derive(Clone, Copy, Debug)]
pub struct Neighborhood {
    center: Coord,
    neighbors: [Neighbor; 4],
}

impl Neighborhood {
    /// Neighborhood of `c` in `topology`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `c` is not a real node.
    pub fn of(topology: Topology, c: Coord) -> Self {
        let neighbors = [
            topology.neighbor(c, Direction::West),
            topology.neighbor(c, Direction::East),
            topology.neighbor(c, Direction::South),
            topology.neighbor(c, Direction::North),
        ];
        Self {
            center: c,
            neighbors,
        }
    }

    /// The node whose neighborhood this is.
    #[inline]
    pub fn center(&self) -> Coord {
        self.center
    }

    /// Neighbor in a specific direction.
    #[inline]
    pub fn in_direction(&self, dir: Direction) -> Neighbor {
        self.neighbors[dir.index()]
    }

    /// Iterates `(direction, neighbor)` over all four directions.
    pub fn iter(&self) -> NeighborIter<'_> {
        NeighborIter {
            hood: self,
            next: 0,
        }
    }

    /// Real (non-ghost) neighbor coordinates.
    pub fn nodes(&self) -> impl Iterator<Item = Coord> + '_ {
        self.neighbors.iter().filter_map(|n| n.coord())
    }
}

/// Iterator over the four `(Direction, Neighbor)` pairs of a [`Neighborhood`].
pub struct NeighborIter<'a> {
    hood: &'a Neighborhood,
    next: usize,
}

impl Iterator for NeighborIter<'_> {
    type Item = (Direction, Neighbor);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= 4 {
            return None;
        }
        let dir = DIRECTIONS[self.next];
        self.next += 1;
        Some((dir, self.hood.in_direction(dir)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_node_has_four_real_neighbors() {
        let t = Topology::mesh(5, 5);
        let h = Neighborhood::of(t, Coord::new(2, 2));
        assert_eq!(h.nodes().count(), 4);
        assert_eq!(h.iter().count(), 4);
    }

    #[test]
    fn mesh_corner_has_two_real_two_ghost() {
        let t = Topology::mesh(5, 5);
        let h = Neighborhood::of(t, Coord::new(0, 0));
        assert_eq!(h.nodes().count(), 2);
        assert!(h.in_direction(Direction::West).is_ghost());
        assert!(h.in_direction(Direction::South).is_ghost());
        assert_eq!(
            h.in_direction(Direction::East).coord(),
            Some(Coord::new(1, 0))
        );
        assert_eq!(
            h.in_direction(Direction::North).coord(),
            Some(Coord::new(0, 1))
        );
    }

    #[test]
    fn torus_corner_has_four_real_neighbors() {
        let t = Topology::torus(5, 5);
        let h = Neighborhood::of(t, Coord::new(0, 0));
        assert_eq!(h.nodes().count(), 4);
        let mut nodes: Vec<_> = h.nodes().collect();
        nodes.sort();
        assert_eq!(
            nodes,
            vec![
                Coord::new(0, 1),
                Coord::new(0, 4),
                Coord::new(1, 0),
                Coord::new(4, 0)
            ]
        );
    }

    #[test]
    fn iter_visits_directions_in_index_order() {
        let t = Topology::mesh(3, 3);
        let h = Neighborhood::of(t, Coord::new(1, 1));
        let dirs: Vec<_> = h.iter().map(|(d, _)| d).collect();
        assert_eq!(dirs, DIRECTIONS.to_vec());
    }
}
