//! Connected components under 4-connectivity.
//!
//! The paper's faulty blocks ("connected unsafe nodes") and disabled regions
//! ("connected disabled nodes") are connected components of a per-node
//! predicate under mesh adjacency. Note that on a torus, adjacency wraps, so
//! a region hugging opposite edges is one component.

use crate::{Coord, Grid, Topology, TopologyKind};

/// One maximal 4-connected set of nodes satisfying a predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Component {
    /// Member coordinates in row-major discovery order (sorted).
    pub cells: Vec<Coord>,
}

impl Component {
    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the component has no members (never produced by extraction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Membership test (binary search; `cells` is sorted).
    pub fn contains(&self, c: Coord) -> bool {
        self.cells.binary_search(&c).is_ok()
    }
}

/// Extracts all 4-connected components of `{c : pred(c)}` over `topology`.
///
/// Adjacency is topology-aware: torus wraparound links connect components
/// across the seam; mesh ghost nodes never satisfy the predicate (they are
/// not real nodes). Components are returned with sorted cell lists, ordered
/// by their smallest member.
pub fn connected_components(
    topology: Topology,
    mut pred: impl FnMut(Coord) -> bool,
) -> Vec<Component> {
    let membership = Grid::from_fn(topology, &mut pred);
    connected_components_grid(&membership, |&m| m)
}

/// Like [`connected_components`], but reads membership out of an existing
/// grid via `pred` (avoids re-evaluating an expensive predicate).
pub fn connected_components_grid<T>(
    grid: &Grid<T>,
    mut pred: impl FnMut(&T) -> bool,
) -> Vec<Component> {
    let topology = grid.topology();
    if topology.kind() == TopologyKind::Mesh {
        // Meshes have no seam adjacency, so components can be built from
        // horizontal runs with a union-find — no per-cell flood fill and,
        // because runs bucket into column order directly, no comparison
        // sort. This is the hot path of certificate checking and of every
        // pipeline extraction.
        return mesh_components_by_runs(grid, &mut pred);
    }
    let mut visited = vec![false; topology.len()];
    let mut components = Vec::new();
    let mut stack = Vec::new();

    for start in topology.coords() {
        let si = topology.index_of(start);
        if visited[si] || !pred(grid.get(start)) {
            continue;
        }
        // Depth-first flood fill from `start`.
        let mut cells = Vec::new();
        visited[si] = true;
        stack.push(start);
        while let Some(c) = stack.pop() {
            cells.push(c);
            for n in crate::Neighborhood::of(topology, c).nodes() {
                let ni = topology.index_of(n);
                if !visited[ni] && pred(grid.get(n)) {
                    visited[ni] = true;
                    stack.push(n);
                }
            }
        }
        cells.sort();
        components.push(Component { cells });
    }
    components.sort_by_key(|comp| comp.cells[0]);
    components
}

/// Run-based connected-component labeling for meshes: one row scan finds
/// maximal horizontal runs, vertically overlapping runs of consecutive
/// rows are merged with a path-halving union-find, and each component's
/// cells are emitted by bucketing its runs per column — which yields the
/// sorted `(x, y)` cell order without a comparison sort.
fn mesh_components_by_runs<T>(grid: &Grid<T>, pred: &mut impl FnMut(&T) -> bool) -> Vec<Component> {
    let topology = grid.topology();
    let (w, h) = (topology.width() as i32, topology.height() as i32);

    // `(y, x0, x1)` inclusive runs, appended in row-major order.
    let mut runs: Vec<(i32, i32, i32)> = Vec::new();
    let mut parent: Vec<u32> = Vec::new();
    fn find(parent: &mut [u32], mut i: u32) -> u32 {
        while parent[i as usize] != i {
            parent[i as usize] = parent[parent[i as usize] as usize];
            i = parent[i as usize];
        }
        i
    }

    let (mut prev_start, mut prev_end) = (0usize, 0usize);
    for y in 0..h {
        let row_start = runs.len();
        let mut cursor = prev_start;
        let mut x = 0;
        while x < w {
            if !pred(grid.get(Coord::new(x, y))) {
                x += 1;
                continue;
            }
            let x0 = x;
            while x < w && pred(grid.get(Coord::new(x, y))) {
                x += 1;
            }
            let x1 = x - 1;
            let id = runs.len() as u32;
            runs.push((y, x0, x1));
            parent.push(id);
            // Union with every previous-row run overlapping [x0, x1].
            // Runs are left-to-right in both rows, so a cursor that skips
            // runs ending before x0 makes the whole row merge linear.
            while cursor < prev_end && runs[cursor].2 < x0 {
                cursor += 1;
            }
            let mut j = cursor;
            while j < prev_end && runs[j].1 <= x1 {
                let (a, b) = (find(&mut parent, id), find(&mut parent, j as u32));
                if a != b {
                    parent[a as usize] = b;
                }
                j += 1;
            }
        }
        prev_start = row_start;
        prev_end = runs.len();
    }

    // Group runs by root, preserving row-major order within a component.
    let mut comp_of = vec![u32::MAX; runs.len()];
    let mut grouped: Vec<Vec<usize>> = Vec::new();
    for i in 0..runs.len() {
        let root = find(&mut parent, i as u32) as usize;
        if comp_of[root] == u32::MAX {
            comp_of[root] = grouped.len() as u32;
            grouped.push(Vec::new());
        }
        grouped[comp_of[root] as usize].push(i);
    }

    let mut components: Vec<Component> = grouped
        .into_iter()
        .map(|member_runs| {
            let min_x = member_runs
                .iter()
                .map(|&i| runs[i].1)
                .min()
                .expect("non-empty");
            let max_x = member_runs
                .iter()
                .map(|&i| runs[i].2)
                .max()
                .expect("non-empty");
            // Bucket member ys per column; rows were scanned ascending, so
            // each bucket is ascending in y and concatenation is sorted.
            let mut buckets: Vec<Vec<i32>> = vec![Vec::new(); (max_x - min_x + 1) as usize];
            for &i in &member_runs {
                let (y, x0, x1) = runs[i];
                for x in x0..=x1 {
                    buckets[(x - min_x) as usize].push(y);
                }
            }
            let mut cells = Vec::new();
            for (dx, ys) in buckets.into_iter().enumerate() {
                let x = min_x + dx as i32;
                cells.extend(ys.into_iter().map(|y| Coord::new(x, y)));
            }
            Component { cells }
        })
        .collect();
    components.sort_by_key(|comp| comp.cells[0]);
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords(raw: &[(i32, i32)]) -> Vec<Coord> {
        raw.iter().map(|&(x, y)| Coord::new(x, y)).collect()
    }

    #[test]
    fn empty_predicate_gives_no_components() {
        let t = Topology::mesh(4, 4);
        assert!(connected_components(t, |_| false).is_empty());
    }

    #[test]
    fn full_grid_is_one_component() {
        let t = Topology::mesh(4, 4);
        let comps = connected_components(t, |_| true);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 16);
    }

    #[test]
    fn diagonal_cells_are_separate_components() {
        let t = Topology::mesh(4, 4);
        let set = coords(&[(0, 0), (1, 1)]);
        let comps = connected_components(t, |c| set.contains(&c));
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 1);
        assert_eq!(comps[1].len(), 1);
    }

    #[test]
    fn l_shape_is_one_component() {
        let t = Topology::mesh(5, 5);
        let set = coords(&[(1, 1), (1, 2), (1, 3), (2, 1), (3, 1)]);
        let comps = connected_components(t, |c| set.contains(&c));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 5);
        assert!(comps[0].contains(Coord::new(1, 3)));
        assert!(!comps[0].contains(Coord::new(2, 2)));
    }

    #[test]
    fn torus_wraparound_merges_edge_components() {
        // Cells in column 0 and column 4 of a 5-wide torus are adjacent.
        let set = coords(&[(0, 2), (4, 2)]);
        let torus = Topology::torus(5, 5);
        assert_eq!(connected_components(torus, |c| set.contains(&c)).len(), 1);
        let mesh = Topology::mesh(5, 5);
        assert_eq!(connected_components(mesh, |c| set.contains(&c)).len(), 2);
    }

    #[test]
    fn components_sorted_by_smallest_member() {
        let t = Topology::mesh(6, 6);
        let set = coords(&[(5, 5), (0, 0), (3, 2), (3, 3)]);
        let comps = connected_components(t, |c| set.contains(&c));
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].cells, coords(&[(0, 0)]));
        assert_eq!(comps[1].cells, coords(&[(3, 2), (3, 3)]));
        assert_eq!(comps[2].cells, coords(&[(5, 5)]));
    }

    #[test]
    fn run_labeling_matches_naive_flood_fill() {
        // The mesh fast path must agree with a cell-at-a-time flood fill
        // on arbitrary patterns (checkerboards, spirals, random noise).
        for seed in 0..32u64 {
            let t = Topology::mesh(13, 11);
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mut bits = Vec::new();
            for _ in 0..t.len() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                bits.push(state % 5 < 2);
            }
            let g = Grid::from_fn(t, |c| bits[t.index_of(c)]);
            let fast = connected_components_grid(&g, |&m| m);

            // Naive: repeatedly flood fill with an explicit stack.
            let mut seen = vec![false; t.len()];
            let mut naive: Vec<Vec<Coord>> = Vec::new();
            for start in t.coords() {
                if seen[t.index_of(start)] || !g.get(start) {
                    continue;
                }
                let mut cells = Vec::new();
                let mut stack = vec![start];
                seen[t.index_of(start)] = true;
                while let Some(c) = stack.pop() {
                    cells.push(c);
                    for n in crate::Neighborhood::of(t, c).nodes() {
                        if !seen[t.index_of(n)] && *g.get(n) {
                            seen[t.index_of(n)] = true;
                            stack.push(n);
                        }
                    }
                }
                cells.sort();
                naive.push(cells);
            }
            naive.sort_by_key(|cells| cells[0]);
            let fast_cells: Vec<Vec<Coord>> = fast.into_iter().map(|c| c.cells).collect();
            assert_eq!(fast_cells, naive, "seed {seed}");
        }
    }

    #[test]
    fn grid_variant_matches_predicate_variant() {
        let t = Topology::mesh(8, 8);
        let g = Grid::from_fn(t, |c| (c.x * 7 + c.y * 3) % 4 == 0);
        let a = connected_components(t, |c| *g.get(c));
        let b = connected_components_grid(&g, |&m| m);
        assert_eq!(a, b);
    }
}
