//! Connected components under 4-connectivity.
//!
//! The paper's faulty blocks ("connected unsafe nodes") and disabled regions
//! ("connected disabled nodes") are connected components of a per-node
//! predicate under mesh adjacency. Note that on a torus, adjacency wraps, so
//! a region hugging opposite edges is one component.

use crate::{Coord, Grid, Topology};

/// One maximal 4-connected set of nodes satisfying a predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Component {
    /// Member coordinates in row-major discovery order (sorted).
    pub cells: Vec<Coord>,
}

impl Component {
    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the component has no members (never produced by extraction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Membership test (binary search; `cells` is sorted).
    pub fn contains(&self, c: Coord) -> bool {
        self.cells.binary_search(&c).is_ok()
    }
}

/// Extracts all 4-connected components of `{c : pred(c)}` over `topology`.
///
/// Adjacency is topology-aware: torus wraparound links connect components
/// across the seam; mesh ghost nodes never satisfy the predicate (they are
/// not real nodes). Components are returned with sorted cell lists, ordered
/// by their smallest member.
pub fn connected_components(
    topology: Topology,
    mut pred: impl FnMut(Coord) -> bool,
) -> Vec<Component> {
    let membership = Grid::from_fn(topology, &mut pred);
    connected_components_grid(&membership, |&m| m)
}

/// Like [`connected_components`], but reads membership out of an existing
/// grid via `pred` (avoids re-evaluating an expensive predicate).
pub fn connected_components_grid<T>(
    grid: &Grid<T>,
    mut pred: impl FnMut(&T) -> bool,
) -> Vec<Component> {
    let topology = grid.topology();
    let mut visited = vec![false; topology.len()];
    let mut components = Vec::new();
    let mut stack = Vec::new();

    for start in topology.coords() {
        let si = topology.index_of(start);
        if visited[si] || !pred(grid.get(start)) {
            continue;
        }
        // Depth-first flood fill from `start`.
        let mut cells = Vec::new();
        visited[si] = true;
        stack.push(start);
        while let Some(c) = stack.pop() {
            cells.push(c);
            for n in crate::Neighborhood::of(topology, c).nodes() {
                let ni = topology.index_of(n);
                if !visited[ni] && pred(grid.get(n)) {
                    visited[ni] = true;
                    stack.push(n);
                }
            }
        }
        cells.sort();
        components.push(Component { cells });
    }
    components.sort_by_key(|comp| comp.cells[0]);
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords(raw: &[(i32, i32)]) -> Vec<Coord> {
        raw.iter().map(|&(x, y)| Coord::new(x, y)).collect()
    }

    #[test]
    fn empty_predicate_gives_no_components() {
        let t = Topology::mesh(4, 4);
        assert!(connected_components(t, |_| false).is_empty());
    }

    #[test]
    fn full_grid_is_one_component() {
        let t = Topology::mesh(4, 4);
        let comps = connected_components(t, |_| true);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 16);
    }

    #[test]
    fn diagonal_cells_are_separate_components() {
        let t = Topology::mesh(4, 4);
        let set = coords(&[(0, 0), (1, 1)]);
        let comps = connected_components(t, |c| set.contains(&c));
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 1);
        assert_eq!(comps[1].len(), 1);
    }

    #[test]
    fn l_shape_is_one_component() {
        let t = Topology::mesh(5, 5);
        let set = coords(&[(1, 1), (1, 2), (1, 3), (2, 1), (3, 1)]);
        let comps = connected_components(t, |c| set.contains(&c));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 5);
        assert!(comps[0].contains(Coord::new(1, 3)));
        assert!(!comps[0].contains(Coord::new(2, 2)));
    }

    #[test]
    fn torus_wraparound_merges_edge_components() {
        // Cells in column 0 and column 4 of a 5-wide torus are adjacent.
        let set = coords(&[(0, 2), (4, 2)]);
        let torus = Topology::torus(5, 5);
        assert_eq!(connected_components(torus, |c| set.contains(&c)).len(), 1);
        let mesh = Topology::mesh(5, 5);
        assert_eq!(connected_components(mesh, |c| set.contains(&c)).len(), 2);
    }

    #[test]
    fn components_sorted_by_smallest_member() {
        let t = Topology::mesh(6, 6);
        let set = coords(&[(5, 5), (0, 0), (3, 2), (3, 3)]);
        let comps = connected_components(t, |c| set.contains(&c));
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].cells, coords(&[(0, 0)]));
        assert_eq!(comps[1].cells, coords(&[(3, 2), (3, 3)]));
        assert_eq!(comps[2].cells, coords(&[(5, 5)]));
    }

    #[test]
    fn grid_variant_matches_predicate_variant() {
        let t = Topology::mesh(8, 8);
        let g = Grid::from_fn(t, |c| (c.x * 7 + c.y * 3) % 4 == 0);
        let a = connected_components(t, |c| *g.get(c));
        let b = connected_components_grid(&g, |&m| m);
        assert_eq!(a, b);
    }
}
