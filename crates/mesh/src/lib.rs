//! # ocp-mesh
//!
//! Topology substrate for the orthogonal-convex-polygon fault-model
//! reproduction (Jie Wu, *A Distributed Formation of Orthogonal Convex
//! Polygons in Mesh-Connected Multicomputers*, IPPS 2001).
//!
//! The paper operates on 2-D mesh-connected multicomputers: every node has an
//! address `(x, y)` and links to the up-to-four nodes whose address differs by
//! one in exactly one dimension. Two variants appear:
//!
//! * **Mesh** — no wraparound. To make border nodes behave like interior
//!   nodes, the paper surrounds the mesh with four extra lines of *ghost*
//!   nodes that are permanently safe/enabled but never participate in any
//!   activity. [`Topology::neighbor`] surfaces those as [`Neighbor::Ghost`].
//! * **Torus** — wraparound links; no boundary, hence no ghosts.
//!
//! The crate deliberately knows nothing about faults, labeling or routing —
//! it only answers "who are my neighbors" and stores per-node data densely
//! ([`Grid`]). Everything above (labeling protocols, geometry, routing) builds
//! on these primitives.
//!
//! ```
//! use ocp_mesh::{Topology, Coord, Direction};
//!
//! let mesh = Topology::mesh(4, 4);
//! let c = Coord::new(0, 0);
//! // West of the corner is a ghost node in a mesh ...
//! assert!(mesh.neighbor(c, Direction::West).is_ghost());
//! // ... and the wrapped node (3, 0) in a torus.
//! let torus = Topology::torus(4, 4);
//! assert_eq!(torus.neighbor(c, Direction::West).coord(), Some(Coord::new(3, 0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitgrid;
mod components;
mod coord;
mod grid;
mod neighbors;
mod topology;

pub use bitgrid::{gather_row_east, gather_row_west, BitGrid};
pub use components::{connected_components, connected_components_grid, Component};
pub use coord::{Coord, Dimension, Direction, DIRECTIONS};
pub use grid::{render, Grid};
pub use neighbors::{NeighborIter, Neighborhood};
pub use topology::{Neighbor, Topology, TopologyKind};
