//! Dense per-node storage.

use crate::{Coord, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense row-major storage of one `T` per node of a [`Topology`].
///
/// All the labeling protocols keep their per-node state in `Grid`s; the
/// lock-step engine double-buffers two of them. Indexing is by [`Coord`].
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid<T> {
    topology: Topology,
    cells: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// A grid with every cell set to `value`.
    pub fn filled(topology: Topology, value: T) -> Self {
        Self {
            topology,
            cells: vec![value; topology.len()],
        }
    }
}

impl<T> Grid<T> {
    /// Builds a grid by evaluating `f` at every node.
    pub fn from_fn(topology: Topology, mut f: impl FnMut(Coord) -> T) -> Self {
        let mut cells = Vec::with_capacity(topology.len());
        for c in topology.coords() {
            cells.push(f(c));
        }
        Self { topology, cells }
    }

    /// Adopts an already row-major cell vector (the layout `as_slice`
    /// exposes) without per-coordinate evaluation.
    ///
    /// # Panics
    /// Panics if `cells.len() != topology.len()`.
    pub fn from_row_major(topology: Topology, cells: Vec<T>) -> Self {
        assert_eq!(
            cells.len(),
            topology.len(),
            "cell vector does not cover the machine"
        );
        Self { topology, cells }
    }

    /// The topology this grid covers.
    #[inline]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the grid holds no cells. Never true in practice — a
    /// [`Topology`] has positive dimensions, so every grid has at least
    /// one cell; provided for `len`/`is_empty` API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Shared access to the cell at `c`.
    ///
    /// # Panics
    /// Panics if `c` is not a real node of the topology.
    #[inline]
    pub fn get(&self, c: Coord) -> &T {
        &self.cells[self.topology.index_of(c)]
    }

    /// `Some(&cell)` if `c` is a real node, `None` otherwise (e.g. ghosts).
    #[inline]
    pub fn try_get(&self, c: Coord) -> Option<&T> {
        if self.topology.contains(c) {
            Some(&self.cells[self.topology.index_of(c)])
        } else {
            None
        }
    }

    /// Mutable access to the cell at `c`.
    ///
    /// # Panics
    /// Panics if `c` is not a real node of the topology.
    #[inline]
    pub fn get_mut(&mut self, c: Coord) -> &mut T {
        let i = self.topology.index_of(c);
        &mut self.cells[i]
    }

    /// Overwrites the cell at `c`.
    ///
    /// # Panics
    /// Panics if `c` is not a real node of the topology.
    #[inline]
    pub fn set(&mut self, c: Coord, value: T) {
        *self.get_mut(c) = value;
    }

    /// Iterates `(coord, &cell)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, &T)> {
        let t = self.topology;
        self.cells
            .iter()
            .enumerate()
            .map(move |(i, v)| (t.coord_of(i), v))
    }

    /// Coordinates whose cell satisfies `pred`.
    pub fn coords_where<'a>(
        &'a self,
        mut pred: impl FnMut(&T) -> bool + 'a,
    ) -> impl Iterator<Item = Coord> + 'a {
        self.iter().filter_map(move |(c, v)| pred(v).then_some(c))
    }

    /// Counts cells satisfying `pred`.
    pub fn count_where(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        self.cells.iter().filter(|v| pred(v)).count()
    }

    /// Applies `f` cell-wise, producing a grid of the results.
    pub fn map<U>(&self, mut f: impl FnMut(Coord, &T) -> U) -> Grid<U> {
        Grid {
            topology: self.topology,
            cells: self
                .cells
                .iter()
                .enumerate()
                .map(|(i, v)| f(self.topology.coord_of(i), v))
                .collect(),
        }
    }

    /// Raw row-major cell slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.cells
    }

    /// Raw mutable row-major cell slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.cells
    }

    /// One row of cells (`y` fixed), as a slice.
    ///
    /// # Panics
    /// Panics if `y` is out of range.
    pub fn row(&self, y: u32) -> &[T] {
        assert!(y < self.topology.height(), "row {y} out of range");
        let w = self.topology.width() as usize;
        let start = y as usize * w;
        &self.cells[start..start + w]
    }
}

impl<T: fmt::Debug> fmt::Debug for Grid<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Grid {}x{} {{",
            self.topology.width(),
            self.topology.height()
        )?;
        for y in (0..self.topology.height()).rev() {
            write!(f, "  y={y:>3}:")?;
            for v in self.row(y) {
                write!(f, " {v:?}")?;
            }
            writeln!(f)?;
        }
        write!(f, "}}")
    }
}

/// Renders a grid as ASCII art, one `char` per cell, highest row first (so the
/// picture matches the usual mathematical orientation with `y` growing up).
pub fn render<T>(grid: &Grid<T>, mut cell: impl FnMut(Coord, &T) -> char) -> String {
    let t = grid.topology();
    let mut out = String::with_capacity((t.width() as usize + 1) * t.height() as usize);
    for y in (0..t.height() as i32).rev() {
        for x in 0..t.width() as i32 {
            let c = Coord::new(x, y);
            out.push(cell(c, grid.get(c)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_set_get() {
        let t = Topology::mesh(3, 2);
        let mut g = Grid::filled(t, 0u8);
        assert_eq!(g.len(), 6);
        g.set(Coord::new(2, 1), 9);
        assert_eq!(*g.get(Coord::new(2, 1)), 9);
        assert_eq!(*g.get(Coord::new(0, 0)), 0);
    }

    #[test]
    fn try_get_rejects_outside() {
        let t = Topology::mesh(3, 3);
        let g = Grid::filled(t, 1i32);
        assert!(g.try_get(Coord::new(-1, 0)).is_none());
        assert!(g.try_get(Coord::new(0, 3)).is_none());
        assert_eq!(g.try_get(Coord::new(2, 2)), Some(&1));
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Topology::mesh(4, 3);
        let g = Grid::from_fn(t, |c| (c.x, c.y));
        let collected: Vec<_> = g.iter().map(|(c, v)| (c, *v)).collect();
        assert_eq!(collected[0], (Coord::new(0, 0), (0, 0)));
        assert_eq!(collected[5], (Coord::new(1, 1), (1, 1)));
        assert_eq!(collected.last().unwrap().0, Coord::new(3, 2));
    }

    #[test]
    fn count_and_filter() {
        let t = Topology::mesh(4, 4);
        let g = Grid::from_fn(t, |c| c.x == c.y);
        assert_eq!(g.count_where(|&d| d), 4);
        let diag: Vec<_> = g.coords_where(|&d| d).collect();
        assert_eq!(diag.len(), 4);
        assert!(diag.contains(&Coord::new(3, 3)));
    }

    #[test]
    fn map_preserves_positions() {
        let t = Topology::mesh(3, 3);
        let g = Grid::from_fn(t, |c| c.x + c.y);
        let doubled = g.map(|_, v| v * 2);
        assert_eq!(*doubled.get(Coord::new(2, 2)), 8);
    }

    #[test]
    fn row_access() {
        let t = Topology::mesh(3, 2);
        let g = Grid::from_fn(t, |c| c.y * 10 + c.x);
        assert_eq!(g.row(0), &[0, 1, 2]);
        assert_eq!(g.row(1), &[10, 11, 12]);
    }

    #[test]
    fn render_orientation_top_row_is_max_y() {
        let t = Topology::mesh(2, 2);
        let g = Grid::from_fn(t, |c| c == Coord::new(0, 1));
        let s = render(&g, |_, &marked| if marked { '#' } else { '.' });
        assert_eq!(s, "#.\n..\n");
    }
}
