//! Bit-packed boolean storage: 64 cells per `u64` word.
//!
//! [`BitGrid`] stores one bit per node of a [`Topology`] in row-major
//! order, `words_per_row = ceil(width / 64)` words per row. It exists for
//! word-parallel protocol kernels: the neighbor value of every cell in a
//! row is produced by a single pass of shifts ([`BitGrid::gather_west`] /
//! [`BitGrid::gather_east`]) or a row lookup ([`BitGrid::row_above`] /
//! [`BitGrid::row_below`]), so a boolean neighborhood rule evaluates 64
//! cells per machine word instead of one cell per `step` call.
//!
//! Conventions:
//!
//! * **Padding bits** (positions `>= width` in a row's last word) are kept
//!   zero by every constructor and mutator — kernels may rely on it.
//! * **Mesh boundaries** shift in `false`: a kernel must choose a bit
//!   encoding in which the ghost value is `false` (e.g. track *unsafe*
//!   bits, ghosts are safe; track *disabled* bits, ghosts are enabled).
//! * **Torus seams** wrap: the west gather of column 0 reads column
//!   `width - 1` (a row rotate), and `row_above`/`row_below` wrap row
//!   indices.

use crate::{Coord, Grid, Topology, TopologyKind};

/// One bit per node of a [`Topology`], 64 nodes per `u64` word.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitGrid {
    topology: Topology,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitGrid {
    /// An all-`false` grid.
    pub fn empty(topology: Topology) -> Self {
        let words_per_row = (topology.width() as usize).div_ceil(64);
        Self {
            topology,
            words_per_row,
            words: vec![0; words_per_row * topology.height() as usize],
        }
    }

    /// Builds a grid by evaluating `pred` at every node.
    pub fn from_fn(topology: Topology, mut pred: impl FnMut(Coord) -> bool) -> Self {
        let mut g = Self::empty(topology);
        for c in topology.coords() {
            if pred(c) {
                g.set(c, true);
            }
        }
        g
    }

    /// Packs a row-major cell slice (e.g. [`Grid::as_slice`]) through
    /// `pred` — the allocation-light bulk constructor kernels use.
    ///
    /// # Panics
    /// Panics if `cells.len()` differs from `topology.len()`.
    pub fn from_cells<T>(
        topology: Topology,
        cells: &[T],
        mut pred: impl FnMut(&T) -> bool,
    ) -> Self {
        assert_eq!(
            cells.len(),
            topology.len(),
            "cell slice / topology mismatch"
        );
        let mut g = Self::empty(topology);
        let width = topology.width() as usize;
        for (y, row_cells) in cells.chunks(width).enumerate() {
            let row = &mut g.words[y * g.words_per_row..(y + 1) * g.words_per_row];
            for (x, cell) in row_cells.iter().enumerate() {
                if pred(cell) {
                    row[x / 64] |= 1u64 << (x % 64);
                }
            }
        }
        g
    }

    /// Unpacks into a dense [`Grid`] through `f`, row-major, one pass.
    pub fn unpack<T>(&self, mut f: impl FnMut(bool) -> T) -> Grid<T> {
        let width = self.topology.width() as usize;
        let height = self.topology.height() as usize;
        let mut cells = Vec::with_capacity(width * height);
        for y in 0..height {
            let row = &self.words[y * self.words_per_row..(y + 1) * self.words_per_row];
            for (i, &word) in row.iter().enumerate() {
                let bits = width.saturating_sub(i * 64).min(64);
                for b in 0..bits {
                    cells.push(f(word >> b & 1 == 1));
                }
            }
        }
        Grid::from_row_major(self.topology, cells)
    }

    /// The topology this grid covers.
    #[inline]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Words per row (`ceil(width / 64)`).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The bit at `c`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `c` is not a real node.
    #[inline]
    pub fn get(&self, c: Coord) -> bool {
        debug_assert!(self.topology.contains(c), "get() of non-node {c:?}");
        let (x, y) = (c.x as usize, c.y as usize);
        self.words[y * self.words_per_row + x / 64] >> (x % 64) & 1 == 1
    }

    /// Sets the bit at `c`. Padding bits stay untouched by construction.
    ///
    /// # Panics
    /// Panics (in debug builds) if `c` is not a real node.
    #[inline]
    pub fn set(&mut self, c: Coord, value: bool) {
        debug_assert!(self.topology.contains(c), "set() of non-node {c:?}");
        let (x, y) = (c.x as usize, c.y as usize);
        let word = &mut self.words[y * self.words_per_row + x / 64];
        let mask = 1u64 << (x % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Number of `true` bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Word-parallel in-place OR: sets every bit that is set in `other`.
    ///
    /// # Panics
    /// Panics if the grids cover different topologies.
    pub fn union_with(&mut self, other: &BitGrid) {
        assert_eq!(
            self.topology, other.topology,
            "bit grids cover different machines"
        );
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// The words of row `y`.
    ///
    /// # Panics
    /// Panics if `y` is out of range.
    #[inline]
    pub fn row(&self, y: u32) -> &[u64] {
        assert!(y < self.topology.height(), "row {y} out of range");
        let start = y as usize * self.words_per_row;
        &self.words[start..start + self.words_per_row]
    }

    /// Mutable words of row `y`. The caller must keep padding bits zero.
    ///
    /// # Panics
    /// Panics if `y` is out of range.
    #[inline]
    pub fn row_mut(&mut self, y: u32) -> &mut [u64] {
        assert!(y < self.topology.height(), "row {y} out of range");
        let start = y as usize * self.words_per_row;
        &mut self.words[start..start + self.words_per_row]
    }

    /// The row holding every cell's **north** (`y + 1`) neighbor, or `None`
    /// for the mesh boundary (ghosts, which read as all-`false`). Wraps to
    /// row 0 on a torus.
    #[inline]
    pub fn row_above(&self, y: u32) -> Option<&[u64]> {
        let h = self.topology.height();
        if y + 1 < h {
            Some(self.row(y + 1))
        } else if self.topology.kind() == TopologyKind::Torus {
            Some(self.row(0))
        } else {
            None
        }
    }

    /// The row holding every cell's **south** (`y - 1`) neighbor, or `None`
    /// for the mesh boundary. Wraps to the top row on a torus.
    #[inline]
    pub fn row_below(&self, y: u32) -> Option<&[u64]> {
        if y > 0 {
            Some(self.row(y - 1))
        } else if self.topology.kind() == TopologyKind::Torus {
            Some(self.row(self.topology.height() - 1))
        } else {
            None
        }
    }

    /// Writes, for every cell `x` of row `y`, the bit of its **west**
    /// neighbor (`x - 1`) into `out` — one shift pass over the row's
    /// words. Column 0 reads `false` on a mesh and column `width - 1` on a
    /// torus (the row rotate that stitches the seam).
    pub fn gather_west(&self, y: u32, out: &mut [u64]) {
        gather_row_west(
            self.row(y),
            self.topology.width(),
            self.topology.kind() == TopologyKind::Torus,
            out,
        );
    }

    /// Writes, for every cell `x` of row `y`, the bit of its **east**
    /// neighbor (`x + 1`) into `out`. Column `width - 1` reads `false` on
    /// a mesh and column 0 on a torus.
    pub fn gather_east(&self, y: u32, out: &mut [u64]) {
        gather_row_east(
            self.row(y),
            self.topology.width(),
            self.topology.kind() == TopologyKind::Torus,
            out,
        );
    }
}

/// Row-level west gather over raw words — the building block behind
/// [`BitGrid::gather_west`], exposed so tile executors that hold rows
/// outside a `BitGrid` (halo exchange buffers) can run the same kernel.
///
/// # Panics
/// Panics if `out` is shorter than `row`.
pub fn gather_row_west(row: &[u64], width: u32, wrap: bool, out: &mut [u64]) {
    let mut carry = 0u64;
    for (o, &w) in out.iter_mut().zip(row) {
        *o = (w << 1) | carry;
        carry = w >> 63;
    }
    if wrap && width > 0 {
        let last = (width - 1) as usize;
        if row[last / 64] >> (last % 64) & 1 == 1 {
            out[0] |= 1;
        } else {
            out[0] &= !1;
        }
    }
}

/// Row-level east gather over raw words — see [`gather_row_west`].
///
/// # Panics
/// Panics if `out` is shorter than `row`.
pub fn gather_row_east(row: &[u64], width: u32, wrap: bool, out: &mut [u64]) {
    let n = row.len();
    for i in 0..n {
        let from_next = if i + 1 < n { row[i + 1] << 63 } else { 0 };
        out[i] = (row[i] >> 1) | from_next;
    }
    if wrap && width > 0 {
        let last = (width - 1) as usize;
        let mask = 1u64 << (last % 64);
        if row[0] & 1 == 1 {
            out[last / 64] |= mask;
        } else {
            out[last / 64] &= !mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    /// Brute-force reference for the four gathers.
    fn neighbor_bit(g: &BitGrid, x: i32, y: i32, dx: i32, dy: i32) -> bool {
        let t = g.topology();
        let raw = c(x + dx, y + dy);
        match t.kind() {
            TopologyKind::Torus => g.get(t.wrap(raw)),
            TopologyKind::Mesh => t.contains(raw) && g.get(raw),
        }
    }

    fn check_gathers(t: Topology, seed: u64) {
        // A deterministic pseudo-random pattern.
        let g = BitGrid::from_fn(t, |c| {
            (c.x as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add((c.y as u64).wrapping_mul(1442695040888963407))
                .wrapping_add(seed)
                .is_multiple_of(3)
        });
        let wpr = g.words_per_row();
        let mut west = vec![0u64; wpr];
        let mut east = vec![0u64; wpr];
        for y in 0..t.height() {
            g.gather_west(y, &mut west);
            g.gather_east(y, &mut east);
            let north = g.row_above(y);
            let south = g.row_below(y);
            for x in 0..t.width() {
                let bit = |words: &[u64]| words[x as usize / 64] >> (x % 64) & 1 == 1;
                assert_eq!(
                    bit(&west),
                    neighbor_bit(&g, x as i32, y as i32, -1, 0),
                    "west ({x},{y}) on {t:?}"
                );
                assert_eq!(
                    bit(&east),
                    neighbor_bit(&g, x as i32, y as i32, 1, 0),
                    "east ({x},{y}) on {t:?}"
                );
                assert_eq!(
                    north.map(bit).unwrap_or(false),
                    neighbor_bit(&g, x as i32, y as i32, 0, 1),
                    "north ({x},{y}) on {t:?}"
                );
                assert_eq!(
                    south.map(bit).unwrap_or(false),
                    neighbor_bit(&g, x as i32, y as i32, 0, -1),
                    "south ({x},{y}) on {t:?}"
                );
            }
        }
    }

    #[test]
    fn get_set_roundtrip_and_count() {
        let t = Topology::mesh(70, 3);
        let mut g = BitGrid::empty(t);
        assert_eq!(g.count_ones(), 0);
        g.set(c(0, 0), true);
        g.set(c(63, 1), true);
        g.set(c(64, 1), true);
        g.set(c(69, 2), true);
        assert_eq!(g.count_ones(), 4);
        assert!(g.get(c(64, 1)));
        g.set(c(64, 1), false);
        assert!(!g.get(c(64, 1)));
        assert_eq!(g.count_ones(), 3);
    }

    #[test]
    fn gathers_match_brute_force_across_widths_and_kinds() {
        for &w in &[1u32, 2, 5, 63, 64, 65, 130] {
            for &h in &[1u32, 2, 7] {
                check_gathers(Topology::mesh(w, h), 11);
                check_gathers(Topology::torus(w, h), 23);
            }
        }
    }

    #[test]
    fn padding_bits_stay_zero() {
        let t = Topology::torus(65, 4);
        let g = BitGrid::from_fn(t, |_| true);
        assert_eq!(g.count_ones(), t.len());
        // Row word 1 must carry exactly one live bit (cell 64).
        for y in 0..4 {
            assert_eq!(g.row(y)[1], 1);
        }
    }

    #[test]
    fn from_cells_and_unpack_are_inverse() {
        let t = Topology::mesh(67, 5);
        let dense = Grid::from_fn(t, |c| (c.x + 2 * c.y) % 5 == 0);
        let bits = BitGrid::from_cells(t, dense.as_slice(), |&b| b);
        assert_eq!(bits, BitGrid::from_fn(t, |c| *dense.get(c)));
        let back = bits.unpack(|b| b);
        assert_eq!(back, dense);
    }

    #[test]
    fn width_one_torus_wraps_onto_itself() {
        let t = Topology::torus(1, 3);
        let g = BitGrid::from_fn(t, |c| c.y == 1);
        let mut out = vec![0u64; 1];
        g.gather_west(1, &mut out);
        assert_eq!(out[0] & 1, 1, "west of the only column is itself");
        g.gather_east(1, &mut out);
        assert_eq!(out[0] & 1, 1);
    }
}
