//! Node addresses, link directions and dimensions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Address of a node in a 2-D mesh or torus.
///
/// Coordinates are signed so that the paper's *ghost* nodes — the extra
/// boundary lines at `x = -1`, `x = width`, `y = -1` and `y = height` — are
/// representable. All interior node addresses are non-negative.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column (first dimension in the paper's `(u_x, u_y)` notation).
    pub x: i32,
    /// Row (second dimension).
    pub y: i32,
}

impl Coord {
    /// Creates a coordinate from its two components.
    #[inline]
    pub const fn new(x: i32, y: i32) -> Self {
        Self { x, y }
    }

    /// Manhattan distance `|u_x - v_x| + |u_y - v_y|` — the distance metric
    /// used throughout the paper (Section 3) for meshes.
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Chebyshev (king-move) distance; used when reasoning about fault rings,
    /// which include diagonal contact.
    #[inline]
    pub fn chebyshev(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x).max(self.y.abs_diff(other.y))
    }

    /// The coordinate one step in `dir`, ignoring topology bounds.
    #[inline]
    pub fn step(self, dir: Direction) -> Coord {
        let (dx, dy) = dir.offset();
        Coord::new(self.x + dx, self.y + dy)
    }

    /// The four axis-neighbors, ignoring topology bounds.
    #[inline]
    pub fn raw_neighbors(self) -> [Coord; 4] {
        [
            self.step(Direction::West),
            self.step(Direction::East),
            self.step(Direction::South),
            self.step(Direction::North),
        ]
    }

    /// True if `other` is an axis neighbor (adjacent in exactly one
    /// dimension, by exactly one).
    #[inline]
    pub fn is_adjacent(self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Coord {
    fn from((x, y): (i32, i32)) -> Self {
        Coord::new(x, y)
    }
}

/// One of the two dimensions of the mesh.
///
/// The safe/unsafe rule of Definition 2b is phrased per dimension: a
/// nonfaulty node is unsafe iff it has an unsafe neighbor *in both
/// dimensions*.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Dimension {
    /// Horizontal (x) dimension.
    X,
    /// Vertical (y) dimension.
    Y,
}

/// The four link directions of a node.
///
/// The numeric discriminants are used to index per-direction arrays such as
/// neighbor-state vectors in the lock-step protocol engine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(usize)]
pub enum Direction {
    /// Negative x.
    West = 0,
    /// Positive x.
    East = 1,
    /// Negative y.
    South = 2,
    /// Positive y.
    North = 3,
}

/// All four directions in index order (`West`, `East`, `South`, `North`).
pub const DIRECTIONS: [Direction; 4] = [
    Direction::West,
    Direction::East,
    Direction::South,
    Direction::North,
];

impl Direction {
    /// `(dx, dy)` offset of one hop in this direction.
    #[inline]
    pub const fn offset(self) -> (i32, i32) {
        match self {
            Direction::West => (-1, 0),
            Direction::East => (1, 0),
            Direction::South => (0, -1),
            Direction::North => (0, 1),
        }
    }

    /// The opposite direction (the direction a received message came *from*).
    #[inline]
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::West => Direction::East,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::North => Direction::South,
        }
    }

    /// Dimension this direction moves along.
    #[inline]
    pub const fn dimension(self) -> Dimension {
        match self {
            Direction::West | Direction::East => Dimension::X,
            Direction::South | Direction::North => Dimension::Y,
        }
    }

    /// Array index (stable, `0..4`).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Direction::index`].
    ///
    /// # Panics
    /// Panics if `i >= 4`.
    #[inline]
    pub fn from_index(i: usize) -> Direction {
        DIRECTIONS[i]
    }

    /// Turn 90 degrees counter-clockwise (W→S→E→N→W).
    #[inline]
    pub const fn ccw(self) -> Direction {
        match self {
            Direction::West => Direction::South,
            Direction::South => Direction::East,
            Direction::East => Direction::North,
            Direction::North => Direction::West,
        }
    }

    /// Turn 90 degrees clockwise.
    #[inline]
    pub const fn cw(self) -> Direction {
        self.ccw().opposite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_matches_paper_definition() {
        let u = Coord::new(2, 5);
        let v = Coord::new(7, 1);
        assert_eq!(u.manhattan(v), 5 + 4);
        assert_eq!(v.manhattan(u), 9);
        assert_eq!(u.manhattan(u), 0);
    }

    #[test]
    fn chebyshev_distance() {
        assert_eq!(Coord::new(0, 0).chebyshev(Coord::new(1, 1)), 1);
        assert_eq!(Coord::new(0, 0).chebyshev(Coord::new(3, 1)), 3);
    }

    #[test]
    fn adjacency_is_single_dimension_offset_one() {
        let u = Coord::new(3, 3);
        assert!(u.is_adjacent(Coord::new(2, 3)));
        assert!(u.is_adjacent(Coord::new(3, 4)));
        assert!(!u.is_adjacent(Coord::new(2, 2))); // diagonal
        assert!(!u.is_adjacent(u));
        assert!(!u.is_adjacent(Coord::new(5, 3)));
    }

    #[test]
    fn direction_roundtrips() {
        for d in DIRECTIONS {
            assert_eq!(Direction::from_index(d.index()), d);
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.ccw().cw(), d);
            assert_eq!(d.cw().ccw(), d);
            // stepping there and back returns to start
            let c = Coord::new(10, 10);
            assert_eq!(c.step(d).step(d.opposite()), c);
        }
    }

    #[test]
    fn opposite_changes_sign_same_dimension() {
        for d in DIRECTIONS {
            assert_eq!(d.dimension(), d.opposite().dimension());
            let (dx, dy) = d.offset();
            let (ox, oy) = d.opposite().offset();
            assert_eq!((dx + ox, dy + oy), (0, 0));
        }
    }

    #[test]
    fn ccw_cycles_through_all_directions() {
        let mut seen = vec![Direction::West];
        let mut d = Direction::West;
        for _ in 0..3 {
            d = d.ccw();
            seen.push(d);
        }
        seen.sort_by_key(|d| d.index());
        assert_eq!(seen, DIRECTIONS.to_vec());
    }

    #[test]
    fn raw_neighbors_are_all_adjacent() {
        let c = Coord::new(4, 7);
        for n in c.raw_neighbors() {
            assert!(c.is_adjacent(n));
        }
    }
}
