//! Mesh and torus topologies.

use crate::{Coord, Direction};
use serde::{Deserialize, Serialize};

/// Which interconnect variant a [`Topology`] models.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TopologyKind {
    /// 2-D mesh: border nodes have ghost neighbors (paper, Section 3: four
    /// additional boundary lines of permanently-safe ghost nodes).
    Mesh,
    /// 2-D torus: wraparound links, no boundary and no ghost nodes.
    Torus,
}

/// Result of asking for a node's neighbor in some direction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Neighbor {
    /// A real node of the machine.
    Node(Coord),
    /// A ghost node on the artificial boundary lines of a mesh. Ghost nodes
    /// are permanently safe and enabled but take part in no activity.
    Ghost(Coord),
}

impl Neighbor {
    /// The real node coordinate, if any.
    #[inline]
    pub fn coord(self) -> Option<Coord> {
        match self {
            Neighbor::Node(c) => Some(c),
            Neighbor::Ghost(_) => None,
        }
    }

    /// Coordinate including ghost positions.
    #[inline]
    pub fn raw_coord(self) -> Coord {
        match self {
            Neighbor::Node(c) | Neighbor::Ghost(c) => c,
        }
    }

    /// True for [`Neighbor::Ghost`].
    #[inline]
    pub fn is_ghost(self) -> bool {
        matches!(self, Neighbor::Ghost(_))
    }
}

/// A `width × height` 2-D mesh or torus.
///
/// Interior nodes have addresses `(x, y)` with `0 <= x < width` and
/// `0 <= y < height`. The paper uses square `n × n` machines but nothing in
/// the algorithms requires that, so the implementation is rectangular.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Topology {
    kind: TopologyKind,
    width: u32,
    height: u32,
}

impl Topology {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn mesh(width: u32, height: u32) -> Self {
        Self::new(TopologyKind::Mesh, width, height)
    }

    /// Creates a `width × height` torus.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn torus(width: u32, height: u32) -> Self {
        Self::new(TopologyKind::Torus, width, height)
    }

    /// Creates a topology of the given kind.
    pub fn new(kind: TopologyKind, width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "topology dimensions must be positive"
        );
        Self {
            kind,
            width,
            height,
        }
    }

    /// The interconnect variant.
    #[inline]
    pub fn kind(self) -> TopologyKind {
        self.kind
    }

    /// Number of columns.
    #[inline]
    pub fn width(self) -> u32 {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub fn height(self) -> u32 {
        self.height
    }

    /// Total number of (real) nodes.
    #[inline]
    pub fn len(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Always false (dimensions are positive).
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Network diameter: `2(n-1)`-style for meshes, wraparound-halved for tori.
    pub fn diameter(self) -> u32 {
        match self.kind {
            TopologyKind::Mesh => (self.width - 1) + (self.height - 1),
            TopologyKind::Torus => self.width / 2 + self.height / 2,
        }
    }

    /// True if `c` addresses a real node.
    #[inline]
    pub fn contains(self, c: Coord) -> bool {
        c.x >= 0 && c.y >= 0 && (c.x as u32) < self.width && (c.y as u32) < self.height
    }

    /// True if `c` lies on one of the four ghost lines adjacent to a mesh's
    /// boundary. Always false for tori.
    pub fn is_ghost(self, c: Coord) -> bool {
        if self.kind != TopologyKind::Mesh {
            return false;
        }
        let on_x_line = c.x == -1 || c.x == self.width as i32;
        let on_y_line = c.y == -1 || c.y == self.height as i32;
        let x_in = c.x >= -1 && c.x <= self.width as i32;
        let y_in = c.y >= -1 && c.y <= self.height as i32;
        (on_x_line && y_in) || (on_y_line && x_in)
    }

    /// Number of real (non-ghost) neighbor links of `c`, with multiplicity
    /// — exactly what `Neighborhood::of(self, c).nodes().count()` yields,
    /// without constructing the neighborhood. On a torus every direction
    /// wraps to a real node (possibly the same node twice at degenerate
    /// sizes), so the count is always 4; on a mesh each machine border the
    /// node sits on costs one link.
    ///
    /// # Panics
    /// Panics (in debug builds) if `c` is not a real node.
    #[inline]
    pub fn real_degree(self, c: Coord) -> u32 {
        debug_assert!(self.contains(c), "real_degree() of non-node {c:?}");
        match self.kind {
            TopologyKind::Torus => 4,
            TopologyKind::Mesh => {
                4 - u32::from(c.x == 0)
                    - u32::from(c.x as u32 == self.width - 1)
                    - u32::from(c.y == 0)
                    - u32::from(c.y as u32 == self.height - 1)
            }
        }
    }

    /// The neighbor of `c` in direction `dir`.
    ///
    /// For a torus the address wraps; for a mesh, stepping off the machine
    /// lands on a ghost node.
    ///
    /// # Panics
    /// Panics (in debug builds) if `c` is not a real node.
    #[inline]
    pub fn neighbor(self, c: Coord, dir: Direction) -> Neighbor {
        debug_assert!(self.contains(c), "neighbor() of non-node {c:?}");
        let raw = c.step(dir);
        match self.kind {
            TopologyKind::Mesh => {
                if self.contains(raw) {
                    Neighbor::Node(raw)
                } else {
                    Neighbor::Ghost(raw)
                }
            }
            TopologyKind::Torus => Neighbor::Node(self.wrap(raw)),
        }
    }

    /// Wraps a raw coordinate into torus range (identity for in-range).
    pub fn wrap(self, c: Coord) -> Coord {
        let w = self.width as i32;
        let h = self.height as i32;
        Coord::new(c.x.rem_euclid(w), c.y.rem_euclid(h))
    }

    /// Distance between two nodes: Manhattan for meshes, wraparound-aware for
    /// tori (Section 3's `d(u, v)` generalized).
    pub fn distance(self, u: Coord, v: Coord) -> u32 {
        match self.kind {
            TopologyKind::Mesh => u.manhattan(v),
            TopologyKind::Torus => {
                let dx = u.x.abs_diff(v.x);
                let dy = u.y.abs_diff(v.y);
                dx.min(self.width - dx) + dy.min(self.height - dy)
            }
        }
    }

    /// Iterates all real node coordinates in row-major order.
    pub fn coords(self) -> impl Iterator<Item = Coord> {
        let w = self.width as i32;
        let h = self.height as i32;
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
    }

    /// Dense row-major index of a node (inverse of [`Topology::coord_of`]).
    ///
    /// # Panics
    /// Panics (in debug builds) if `c` is not a real node.
    #[inline]
    pub fn index_of(self, c: Coord) -> usize {
        debug_assert!(self.contains(c), "index_of() of non-node {c:?}");
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Node coordinate for a dense row-major index.
    #[inline]
    pub fn coord_of(self, index: usize) -> Coord {
        let w = self.width as usize;
        Coord::new((index % w) as i32, (index / w) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DIRECTIONS;

    #[test]
    fn mesh_interior_neighbors_are_nodes() {
        let t = Topology::mesh(5, 5);
        let c = Coord::new(2, 2);
        for d in DIRECTIONS {
            let n = t.neighbor(c, d);
            assert!(!n.is_ghost());
            assert!(c.is_adjacent(n.coord().unwrap()));
        }
    }

    #[test]
    fn real_degree_matches_neighborhood_count() {
        for kind in [TopologyKind::Mesh, TopologyKind::Torus] {
            for (w, h) in [(1u32, 1u32), (1, 5), (2, 2), (3, 7), (6, 6)] {
                let t = Topology::new(kind, w, h);
                for c in t.coords() {
                    assert_eq!(
                        t.real_degree(c),
                        crate::Neighborhood::of(t, c).nodes().count() as u32,
                        "{kind:?} {w}x{h} at {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn mesh_border_has_ghosts() {
        let t = Topology::mesh(5, 5);
        assert!(t.neighbor(Coord::new(0, 2), Direction::West).is_ghost());
        assert!(t.neighbor(Coord::new(4, 2), Direction::East).is_ghost());
        assert!(t.neighbor(Coord::new(2, 0), Direction::South).is_ghost());
        assert!(t.neighbor(Coord::new(2, 4), Direction::North).is_ghost());
        // ghost coordinates sit on the added boundary lines
        let g = t.neighbor(Coord::new(0, 2), Direction::West).raw_coord();
        assert_eq!(g, Coord::new(-1, 2));
        assert!(t.is_ghost(g));
        assert!(!t.contains(g));
    }

    #[test]
    fn ghost_predicate_covers_all_four_lines_and_corners() {
        let t = Topology::mesh(3, 3);
        assert!(t.is_ghost(Coord::new(-1, -1)));
        assert!(t.is_ghost(Coord::new(3, 3)));
        assert!(t.is_ghost(Coord::new(-1, 1)));
        assert!(t.is_ghost(Coord::new(1, 3)));
        assert!(!t.is_ghost(Coord::new(0, 0)));
        assert!(!t.is_ghost(Coord::new(-2, 0)));
        assert!(!t.is_ghost(Coord::new(4, 0)));
    }

    #[test]
    fn torus_wraps_all_edges() {
        let t = Topology::torus(4, 3);
        assert_eq!(
            t.neighbor(Coord::new(0, 0), Direction::West),
            Neighbor::Node(Coord::new(3, 0))
        );
        assert_eq!(
            t.neighbor(Coord::new(3, 2), Direction::East),
            Neighbor::Node(Coord::new(0, 2))
        );
        assert_eq!(
            t.neighbor(Coord::new(1, 0), Direction::South),
            Neighbor::Node(Coord::new(1, 2))
        );
        assert_eq!(
            t.neighbor(Coord::new(1, 2), Direction::North),
            Neighbor::Node(Coord::new(1, 0))
        );
    }

    #[test]
    fn torus_has_no_ghosts() {
        let t = Topology::torus(4, 4);
        for c in t.coords() {
            for d in DIRECTIONS {
                assert!(!t.neighbor(c, d).is_ghost());
            }
        }
    }

    #[test]
    fn torus_distance_uses_wraparound() {
        let t = Topology::torus(10, 10);
        assert_eq!(t.distance(Coord::new(0, 0), Coord::new(9, 0)), 1);
        assert_eq!(t.distance(Coord::new(0, 0), Coord::new(5, 5)), 10);
        assert_eq!(t.distance(Coord::new(1, 1), Coord::new(8, 9)), 3 + 2);
        let m = Topology::mesh(10, 10);
        assert_eq!(m.distance(Coord::new(0, 0), Coord::new(9, 0)), 9);
    }

    #[test]
    fn diameter() {
        assert_eq!(Topology::mesh(100, 100).diameter(), 198);
        assert_eq!(Topology::torus(100, 100).diameter(), 100);
    }

    #[test]
    fn index_roundtrip() {
        let t = Topology::mesh(7, 3);
        for (i, c) in t.coords().enumerate() {
            assert_eq!(t.index_of(c), i);
            assert_eq!(t.coord_of(i), c);
        }
        assert_eq!(t.coords().count(), t.len());
    }

    #[test]
    fn wrap_handles_negatives() {
        let t = Topology::torus(5, 5);
        assert_eq!(t.wrap(Coord::new(-1, -1)), Coord::new(4, 4));
        assert_eq!(t.wrap(Coord::new(5, 7)), Coord::new(0, 2));
        assert_eq!(t.wrap(Coord::new(2, 3)), Coord::new(2, 3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = Topology::mesh(0, 3);
    }
}
