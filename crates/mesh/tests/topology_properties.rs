//! Property-based tests for the topology substrate.

use ocp_mesh::{Coord, Neighborhood, Topology, TopologyKind, DIRECTIONS};
use proptest::prelude::*;

fn topo_strategy() -> impl Strategy<Value = Topology> {
    (
        prop_oneof![Just(TopologyKind::Mesh), Just(TopologyKind::Torus)],
        1u32..=24,
        1u32..=24,
    )
        .prop_map(|(kind, w, h)| Topology::new(kind, w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn index_roundtrip(t in topo_strategy()) {
        for (i, c) in t.coords().enumerate() {
            prop_assert_eq!(t.index_of(c), i);
            prop_assert_eq!(t.coord_of(i), c);
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric(t in topo_strategy()) {
        let (u, v) = {
            let mut it = t.coords();
            (it.next().unwrap(), it.last().unwrap_or(Coord::new(0, 0)))
        };
        let _ = (u, v);
        for c in t.coords().take(64) {
            for d in DIRECTIONS {
                if let Some(n) = t.neighbor(c, d).coord() {
                    // The neighbor sees us back in the opposite direction.
                    prop_assert_eq!(t.neighbor(n, d.opposite()).coord(), Some(c));
                }
            }
        }
    }

    #[test]
    fn distance_is_a_metric(t in topo_strategy()) {
        let nodes: Vec<Coord> = t.coords().step_by(7).take(8).collect();
        for &a in &nodes {
            prop_assert_eq!(t.distance(a, a), 0);
            for &b in &nodes {
                prop_assert_eq!(t.distance(a, b), t.distance(b, a));
                prop_assert_eq!(t.distance(a, b) == 0, a == b);
                for &c in &nodes {
                    prop_assert!(
                        t.distance(a, c) <= t.distance(a, b) + t.distance(b, c),
                        "triangle inequality violated"
                    );
                }
            }
        }
    }

    #[test]
    fn distance_one_iff_linked((t, seed) in topo_strategy().prop_flat_map(|t| (Just(t), any::<u64>()))) {
        let nodes: Vec<Coord> = t.coords().collect();
        let a = nodes[(seed % nodes.len() as u64) as usize];
        let linked: Vec<Coord> = Neighborhood::of(t, a).nodes().collect();
        for b in nodes.iter().take(50) {
            if *b == a {
                // Degenerate 1-wide tori give nodes self-loop links.
                continue;
            }
            let is_neighbor = linked.contains(b);
            if is_neighbor {
                prop_assert_eq!(t.distance(a, *b), 1);
            }
            // (distance 1 => neighbor only holds when w,h > 2; degenerate
            // 1- and 2-wide tori identify directions, so skip the converse
            // there.)
            if t.width() > 2 && t.height() > 2 && t.distance(a, *b) == 1 {
                prop_assert!(is_neighbor, "{a} at distance 1 from {b} but not linked");
            }
        }
    }

    #[test]
    fn distance_bounded_by_diameter(t in topo_strategy()) {
        for a in t.coords().step_by(11).take(6) {
            for b in t.coords().step_by(5).take(6) {
                prop_assert!(t.distance(a, b) <= t.diameter());
            }
        }
    }

    #[test]
    fn mesh_ghosts_exactly_border_adjacent(w in 1u32..=12, h in 1u32..=12) {
        let t = Topology::mesh(w, h);
        let mut ghost_contacts = 0usize;
        for c in t.coords() {
            for d in DIRECTIONS {
                if t.neighbor(c, d).is_ghost() {
                    ghost_contacts += 1;
                    prop_assert!(t.is_ghost(t.neighbor(c, d).raw_coord()));
                }
            }
        }
        // Each border cell contributes one ghost contact per exposed side:
        // total = 2w + 2h.
        prop_assert_eq!(ghost_contacts as u32, 2 * w + 2 * h);
    }
}
