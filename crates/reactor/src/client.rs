//! A small blocking client for framing v2.
//!
//! [`PipelinedClient`] performs the magic handshake at connect time, then
//! lets the caller keep many requests in flight: `send` assigns and returns a
//! correlation id; `recv` returns the next `(corr_id, payload)` the server
//! produced, in whatever order it chose. For the high-connection-count load
//! harness, drive nonblocking sockets with [`crate::poll::Poll`] directly —
//! this type is for tests and simple tools.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::frame::{encode_v2, DecodedFrame, FrameDecoder, MAGIC};

/// A blocking v2 client over one TCP connection.
pub struct PipelinedClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_id: u64,
}

impl PipelinedClient {
    /// Connects, sends the v2 magic, and verifies the server's echo.
    pub fn connect(addr: SocketAddr) -> io::Result<PipelinedClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&MAGIC)?;
        stream.flush()?;
        let mut echo = [0u8; 4];
        stream.read_exact(&mut echo)?;
        if echo != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "server did not echo the v2 magic",
            ));
        }
        Ok(PipelinedClient {
            stream,
            decoder: FrameDecoder::new_v2(),
            next_id: 1,
        })
    }

    /// Bounds how long [`recv`](Self::recv) blocks. `None` blocks forever.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request, returning its correlation id.
    pub fn send(&mut self, payload: &[u8]) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_with_id(id, payload)?;
        Ok(id)
    }

    /// Sends one request under a caller-chosen correlation id.
    pub fn send_with_id(&mut self, corr_id: u64, payload: &[u8]) -> io::Result<()> {
        self.stream.write_all(&encode_v2(corr_id, payload))
    }

    /// Receives the next response in server completion order.
    pub fn recv(&mut self) -> io::Result<(u64, Vec<u8>)> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.decoder.next_frame() {
                Ok(Some(DecodedFrame::V2 { corr_id, payload })) => return Ok((corr_id, payload)),
                Ok(Some(_)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected non-v2 frame from server",
                    ))
                }
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-stream",
                ));
            }
            self.decoder.extend(&buf[..n]);
        }
    }

    /// Half-closes the write side so the server drains and closes cleanly.
    pub fn finish_writes(&self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}
