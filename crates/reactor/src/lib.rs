//! `ocp-reactor`: a dependency-free epoll event loop for the mesh service.
//!
//! The blocking transport in `ocp-serve` spends one OS thread per connection;
//! this crate replaces that with one reactor thread multiplexing thousands of
//! nonblocking sockets plus a fixed worker pool executing requests. It is
//! built in the repository's vendoring style: no external crates, with the
//! few required syscalls (`epoll_*`, `accept4`, `pipe2`, ...) dialed directly
//! through the C library's `syscall` trampoline in [`sys`].
//!
//! Layers, bottom to top:
//!
//! - [`sys`] — raw syscall wrappers (the only unsafe code);
//! - [`poll`] — mio-style [`Poll`]/[`Token`]/[`Interest`]/[`Waker`] shim;
//! - [`frame`] — wire framing v1 (legacy in-order) and v2 (pipelined with
//!   correlation ids, negotiated by the `"OCP2"` magic);
//! - [`server`] — the accept loop, connection state machine, worker pool,
//!   and graceful drain;
//! - [`client`] — a small blocking v2 client for tests and tools.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod poll;
pub mod server;
pub mod sys;

pub use client::PipelinedClient;
pub use frame::{
    encode_v1, encode_v1_into, encode_v2, encode_v2_into, DecodedFrame, FrameDecoder, FrameError,
    Protocol, MAGIC, MAX_FRAME_BYTES,
};
pub use poll::{Event, Events, Interest, Poll, Token, WakeRx, Waker};
pub use server::{loopback, Handler, ReactorConfig, ReactorServer, ReactorStats, StatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn echo_upper_server() -> ReactorServer {
        ReactorServer::start(loopback(), ReactorConfig::default(), || {
            |req: &[u8]| req.to_ascii_uppercase()
        })
        .expect("server starts")
    }

    #[test]
    fn v2_pipelined_round_trip_out_of_order_ids() {
        let server = echo_upper_server();
        let mut client = PipelinedClient::connect(server.local_addr()).unwrap();
        let mut ids = Vec::new();
        for i in 0..32 {
            ids.push(client.send(format!("req-{i}").as_bytes()).unwrap());
        }
        let mut got = std::collections::BTreeMap::new();
        for _ in 0..32 {
            let (id, payload) = client.recv().unwrap();
            got.insert(id, payload);
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(got[id], format!("REQ-{i}").into_bytes());
        }
        let stats = server.stats();
        assert_eq!(stats.requests, 32);
        assert_eq!(stats.v2_conns, 1);
    }

    #[test]
    fn v1_legacy_framing_still_served_in_order() {
        let server = echo_upper_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Two pipelined v1 frames; replies must come back in request order.
        let mut wire = Vec::new();
        encode_v1_into(&mut wire, b"alpha");
        encode_v1_into(&mut wire, b"beta");
        stream.write_all(&wire).unwrap();
        let read_reply = |stream: &mut TcpStream| {
            let mut len = [0u8; 4];
            stream.read_exact(&mut len).unwrap();
            let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
            stream.read_exact(&mut payload).unwrap();
            payload
        };
        assert_eq!(read_reply(&mut stream), b"ALPHA");
        assert_eq!(read_reply(&mut stream), b"BETA");
    }

    #[test]
    fn shutdown_delivers_queued_replies() {
        let mut server = echo_upper_server();
        let addr = server.local_addr();
        let mut client = PipelinedClient::connect(addr).unwrap();
        let id = client.send(b"last words").unwrap();
        // Give the request a moment to reach the worker, then drain.
        std::thread::sleep(std::time::Duration::from_millis(50));
        server.shutdown();
        let (got_id, payload) = client.recv().unwrap();
        assert_eq!(got_id, id);
        assert_eq!(payload, b"LAST WORDS");
        assert!(client.recv().is_err(), "connection closed after drain");
    }

    #[test]
    fn many_connections_multiplex_on_one_loop() {
        let server = echo_upper_server();
        let addr = server.local_addr();
        let mut clients: Vec<PipelinedClient> = (0..64)
            .map(|_| PipelinedClient::connect(addr).unwrap())
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            c.send(format!("c{i}").as_bytes()).unwrap();
        }
        for (i, c) in clients.iter_mut().enumerate() {
            let (_, payload) = c.recv().unwrap();
            assert_eq!(payload, format!("C{i}").into_bytes());
        }
        assert_eq!(server.stats().accepted, 64);
    }

    #[test]
    fn inflight_cap_still_serves_every_buffered_frame() {
        // One write delivers far more pipelined frames than the per-conn
        // in-flight cap. The server must decode at most `cap` of them per
        // pass and resume from its *decoder buffer* as completions drain —
        // the bytes are already off the socket, so epoll alone would never
        // re-deliver them and the tail would hang forever.
        let config = ReactorConfig {
            max_inflight_per_conn: 4,
            workers: 2,
            ..ReactorConfig::default()
        };
        let server =
            ReactorServer::start(loopback(), config, || |req: &[u8]| req.to_ascii_uppercase())
                .expect("server starts");
        let mut client = PipelinedClient::connect(server.local_addr()).unwrap();
        const N: usize = 500;
        let mut ids = Vec::new();
        for i in 0..N {
            ids.push(client.send(format!("burst-{i}").as_bytes()).unwrap());
        }
        let mut got = std::collections::BTreeMap::new();
        for _ in 0..N {
            let (id, payload) = client.recv().unwrap();
            got.insert(id, payload);
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(got[id], format!("BURST-{i}").into_bytes());
        }
        assert_eq!(server.stats().requests, N as u64);
    }

    #[test]
    fn oversized_frame_drops_the_connection() {
        let server = echo_upper_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(&(MAX_FRAME_BYTES + 1).to_be_bytes())
            .unwrap();
        stream.write_all(&[0u8; 8]).unwrap();
        let mut buf = [0u8; 1];
        // Server closes without replying.
        assert_eq!(stream.read(&mut buf).unwrap_or(0), 0);
    }
}
