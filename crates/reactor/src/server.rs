//! The reactor TCP server: one event-loop thread, a fixed worker pool, and a
//! wake pipe carrying completions back to the loop.
//!
//! ```text
//!  clients ──► accept ──► per-conn decoder ──► job batch ──► worker pool
//!                 ▲                                              │
//!                 │        outbuf flush ◄── completions ◄── wake pipe
//! ```
//!
//! The loop owns every socket. Workers never touch fds: they receive decoded
//! request payloads tagged `(slot, generation, tag)`, run the handler, and
//! push the response bytes onto a completion queue, waking the loop. The
//! generation counter makes completions for a since-closed (and possibly
//! reused) slot harmless.
//!
//! Backpressure is interest management, not errors: a connection whose
//! in-flight count or output buffer crosses its cap simply loses read
//! interest until the backlog clears, so TCP flow control pushes back on the
//! client. Both handoff directions are batched — one lock acquisition and at
//! most one wake per poll iteration — which matters on small machines where
//! every context switch is paid for.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::frame::{encode_v1_into, encode_v2_into, DecodedFrame, FrameDecoder, Protocol, MAGIC};
use crate::poll::{Events, Interest, Poll, Token, Waker};
use crate::sys;

/// Executes one decoded request payload, returning the response payload.
///
/// Implemented for any `FnMut(&[u8]) -> Vec<u8>`; each worker owns its own
/// handler instance (built by the factory passed to [`ReactorServer::start`]),
/// so handlers may keep per-worker caches without locking.
pub trait Handler: Send + 'static {
    /// Processes `request` bytes into response bytes.
    fn handle(&mut self, request: &[u8]) -> Vec<u8>;
}

impl<F> Handler for F
where
    F: FnMut(&[u8]) -> Vec<u8> + Send + 'static,
{
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// Tuning knobs for [`ReactorServer::start`].
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Worker threads executing handlers (min 1).
    pub workers: usize,
    /// Accepted connections beyond this are closed immediately.
    pub max_connections: usize,
    /// Per-connection requests decoded but not yet answered before read
    /// interest is withdrawn.
    pub max_inflight_per_conn: usize,
    /// Per-connection buffered response bytes before read interest is
    /// withdrawn.
    pub max_outbuf_bytes: usize,
    /// How long `shutdown` waits for in-flight work to finish and buffers to
    /// flush before closing connections anyway.
    pub drain_timeout: Duration,
    /// Listen backlog.
    pub backlog: i32,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 2,
            max_connections: 16 * 1024,
            max_inflight_per_conn: 128,
            max_outbuf_bytes: 1024 * 1024,
            drain_timeout: Duration::from_secs(5),
            backlog: 4096,
        }
    }
}

/// Monotonic counters exported by a running reactor.
#[derive(Default)]
pub struct ReactorStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections closed (any reason).
    pub closed: AtomicU64,
    /// Connections refused because `max_connections` was reached.
    pub refused: AtomicU64,
    /// Requests handed to the worker pool.
    pub requests: AtomicU64,
    /// Responses flushed into output buffers.
    pub responses: AtomicU64,
    /// Connections that negotiated framing v2.
    pub v2_conns: AtomicU64,
    /// Bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_out: AtomicU64,
}

/// A point-in-time copy of [`ReactorStats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections closed.
    pub closed: u64,
    /// Connections refused at the cap.
    pub refused: u64,
    /// Requests dispatched to workers.
    pub requests: u64,
    /// Responses produced.
    pub responses: u64,
    /// Connections speaking framing v2.
    pub v2_conns: u64,
    /// Bytes read.
    pub bytes_in: u64,
    /// Bytes written.
    pub bytes_out: u64,
}

impl ReactorStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            v2_conns: self.v2_conns.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// A decoded request on its way to a worker.
struct Job {
    slot: usize,
    generation: u32,
    /// Correlation id (v2) or arrival sequence number (v1).
    tag: u64,
    payload: Vec<u8>,
}

/// A handler result on its way back to the loop.
struct Completion {
    slot: usize,
    generation: u32,
    tag: u64,
    response: Vec<u8>,
}

struct JobQueue {
    inner: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push_batch(&self, jobs: &mut Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        let mut guard = self.inner.lock().unwrap();
        guard.0.extend(jobs.drain(..));
        drop(guard);
        self.ready.notify_all();
    }

    /// Blocks for work; returns an empty batch only after `close`.
    fn pop_batch(&self, out: &mut Vec<Job>, max: usize) {
        let mut guard = self.inner.lock().unwrap();
        loop {
            if !guard.0.is_empty() {
                let take = guard.0.len().min(max);
                out.extend(guard.0.drain(..take));
                return;
            }
            if guard.1 {
                return;
            }
            guard = self.ready.wait(guard).unwrap();
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap().1 = true;
        self.ready.notify_all();
    }
}

struct CompletionQueue {
    inner: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl CompletionQueue {
    fn push_batch(&self, batch: &mut Vec<Completion>) {
        if batch.is_empty() {
            return;
        }
        let mut guard = self.inner.lock().unwrap();
        let was_empty = guard.is_empty();
        guard.append(batch);
        drop(guard);
        if was_empty {
            self.waker.wake();
        }
    }

    fn drain_into(&self, out: &mut Vec<Completion>) {
        let mut guard = self.inner.lock().unwrap();
        std::mem::swap(&mut *guard, out);
    }
}

/// Per-connection state owned by the loop thread.
struct Conn {
    fd: sys::Fd,
    generation: u32,
    decoder: FrameDecoder,
    outbuf: Vec<u8>,
    outpos: usize,
    /// Requests dispatched but not yet flushed into `outbuf`.
    inflight: usize,
    /// v1 only: next sequence number to assign to an arriving request.
    next_seq: u64,
    /// v1 only: next sequence number the wire is waiting for.
    next_emit: u64,
    /// v1 only: completions that arrived out of order.
    reorder: BTreeMap<u64, Vec<u8>>,
    /// Peer sent EOF; close once the pipeline empties.
    peer_closed: bool,
    /// Interest currently installed in the poll set.
    interest: Interest,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.outpos
    }

    fn idle(&self) -> bool {
        self.inflight == 0 && self.pending_out() == 0 && self.reorder.is_empty()
    }
}

const TOKEN_LISTENER: Token = Token(0);
const TOKEN_WAKER: Token = Token(1);
const TOKEN_BASE: usize = 2;
/// Per-event read budget; level-triggered epoll re-notifies leftovers.
const READS_PER_EVENT: usize = 4;
const WORKER_BATCH: usize = 64;

/// A running reactor server; dropping it shuts it down.
pub struct ReactorServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Waker,
    stats: Arc<ReactorStats>,
    loop_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ReactorServer {
    /// Binds `addr` (port 0 picks an ephemeral port), spawns the loop thread
    /// and `config.workers` handler threads, and starts serving.
    ///
    /// `factory` is invoked once per worker so each worker owns a private
    /// handler instance.
    pub fn start<H, F>(
        addr: SocketAddrV4,
        config: ReactorConfig,
        factory: F,
    ) -> io::Result<ReactorServer>
    where
        H: Handler,
        F: Fn() -> H,
    {
        let config = ReactorConfig {
            workers: config.workers.max(1),
            ..config
        };
        let (listener, local_addr) = sys::tcp_listen(addr, config.backlog)?;
        let poll = Poll::new()?;
        poll.register(listener.raw(), TOKEN_LISTENER, Interest::READABLE)?;
        let (waker, wake_rx) = Waker::new(&poll, TOKEN_WAKER)?;

        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ReactorStats::default());
        let jobs = Arc::new(JobQueue::new());
        let completions = Arc::new(CompletionQueue {
            inner: Mutex::new(Vec::new()),
            waker: waker.clone(),
        });

        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let mut handler = factory();
            let jobs = Arc::clone(&jobs);
            let completions = Arc::clone(&completions);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("reactor-worker-{i}"))
                    .spawn(move || worker_loop(&mut handler, &jobs, &completions))?,
            );
        }

        let loop_thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let jobs = Arc::clone(&jobs);
            let completions = Arc::clone(&completions);
            let config = config.clone();
            std::thread::Builder::new()
                .name("reactor-loop".into())
                .spawn(move || {
                    let mut state = LoopState {
                        poll,
                        listener: Some(listener),
                        wake_rx,
                        conns: Vec::new(),
                        gens: Vec::new(),
                        free: Vec::new(),
                        active: 0,
                        config,
                        stats,
                        jobs,
                        completions,
                        stop,
                        scratch: vec![0u8; 64 * 1024],
                        job_batch: Vec::new(),
                        completion_batch: Vec::new(),
                    };
                    state.run();
                    state.jobs.close();
                })?
        };

        Ok(ReactorServer {
            local_addr,
            stop,
            waker,
            stats,
            loop_thread: Some(loop_thread),
            workers,
        })
    }

    /// The bound address (ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Graceful drain: stop accepting, stop reading, finish in-flight
    /// requests, flush buffered replies (up to `drain_timeout`), then tear
    /// everything down. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(handler: &mut dyn Handler, jobs: &JobQueue, completions: &CompletionQueue) {
    let mut batch = Vec::with_capacity(WORKER_BATCH);
    let mut done = Vec::with_capacity(WORKER_BATCH);
    loop {
        jobs.pop_batch(&mut batch, WORKER_BATCH);
        if batch.is_empty() {
            return; // queue closed and drained
        }
        for job in batch.drain(..) {
            let response = handler.handle(&job.payload);
            done.push(Completion {
                slot: job.slot,
                generation: job.generation,
                tag: job.tag,
                response,
            });
        }
        completions.push_batch(&mut done);
    }
}

struct LoopState {
    poll: Poll,
    listener: Option<sys::Fd>,
    wake_rx: crate::poll::WakeRx,
    conns: Vec<Option<Conn>>,
    /// Per-slot reuse counter; completions carrying a stale generation are
    /// discarded instead of reaching a different connection.
    gens: Vec<u32>,
    free: Vec<usize>,
    active: usize,
    config: ReactorConfig,
    stats: Arc<ReactorStats>,
    jobs: Arc<JobQueue>,
    completions: Arc<CompletionQueue>,
    stop: Arc<AtomicBool>,
    scratch: Vec<u8>,
    job_batch: Vec<Job>,
    completion_batch: Vec<Completion>,
}

impl LoopState {
    fn run(&mut self) {
        let mut events = Events::with_capacity(1024);
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let timeout = if drain_deadline.is_some() {
                Some(50)
            } else {
                None
            };
            if self.poll.poll(&mut events, timeout).is_err() {
                break;
            }
            for event in events.iter() {
                match event.token() {
                    TOKEN_LISTENER => self.on_accept(),
                    TOKEN_WAKER => self.wake_rx.drain(),
                    Token(t) => {
                        let slot = t - TOKEN_BASE;
                        if event.is_error() {
                            self.close_conn(slot);
                            continue;
                        }
                        if event.is_readable() {
                            self.on_readable(slot);
                        }
                        if event.is_writable() {
                            self.on_writable(slot);
                        }
                    }
                }
            }
            self.apply_completions();
            let draining = self.stop.load(Ordering::SeqCst);
            if draining && drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + self.config.drain_timeout);
                self.begin_drain();
            }
            if let Some(deadline) = drain_deadline {
                let all_idle = self.active == 0 || self.conns.iter().flatten().all(|c| c.idle());
                if all_idle || Instant::now() >= deadline {
                    break;
                }
            }
        }
        // Tear down whatever remains.
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close_conn(slot);
            }
        }
        self.listener = None;
    }

    /// Drain mode: close the accept path and stop reading new requests;
    /// in-flight work and buffered replies still complete.
    fn begin_drain(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poll.deregister(listener.raw());
        }
        for slot in 0..self.conns.len() {
            if let Some(conn) = &mut self.conns[slot] {
                conn.peer_closed = true;
                if conn.idle() {
                    self.close_conn(slot);
                } else {
                    self.update_interest(slot);
                }
            }
        }
    }

    fn on_accept(&mut self) {
        let Some(listener) = &self.listener else {
            return;
        };
        let listener_fd = listener.raw();
        loop {
            match sys::accept(listener_fd) {
                Ok(Some(fd)) => {
                    if self.active >= self.config.max_connections {
                        self.stats.refused.fetch_add(1, Ordering::Relaxed);
                        drop(fd);
                        continue;
                    }
                    let _ = sys::set_nodelay(fd.raw());
                    let slot = match self.free.pop() {
                        Some(slot) => slot,
                        None => {
                            self.conns.push(None);
                            self.gens.push(0);
                            self.conns.len() - 1
                        }
                    };
                    let generation = self.gens[slot];
                    let token = Token(slot + TOKEN_BASE);
                    if self
                        .poll
                        .register(fd.raw(), token, Interest::READABLE)
                        .is_err()
                    {
                        // The slot was never used: return it to the free
                        // list (no generation bump needed).
                        self.free.push(slot);
                        continue;
                    }
                    self.conns[slot] = Some(Conn {
                        fd,
                        generation,
                        decoder: FrameDecoder::new(),
                        outbuf: Vec::new(),
                        outpos: 0,
                        inflight: 0,
                        next_seq: 0,
                        next_emit: 0,
                        reorder: BTreeMap::new(),
                        peer_closed: false,
                        interest: Interest::READABLE,
                    });
                    self.active += 1;
                    self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    fn on_readable(&mut self, slot: usize) {
        let mut eof = false;
        let mut failed = false;
        let mut total = 0u64;
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            for _ in 0..READS_PER_EVENT {
                match sys::read(conn.fd.raw(), &mut self.scratch) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        total += n as u64;
                        conn.decoder.extend(&self.scratch[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if eof {
                conn.peer_closed = true;
            }
        }
        if total > 0 {
            self.stats.bytes_in.fetch_add(total, Ordering::Relaxed);
        }
        if !failed {
            failed = !self.decode_pending(slot);
        }
        // Hand off any decoded jobs even if the connection just died — stale
        // generations make their completions harmless.
        let mut jobs = std::mem::take(&mut self.job_batch);
        self.jobs.push_batch(&mut jobs);
        self.job_batch = jobs;
        if failed {
            self.close_conn(slot);
            return;
        }
        if eof {
            let idle = self.conns[slot].as_ref().is_some_and(Conn::idle);
            if idle {
                self.close_conn(slot);
                return;
            }
        }
        self.flush_conn(slot);
        self.update_interest(slot);
    }

    fn on_writable(&mut self, slot: usize) {
        self.flush_conn(slot);
        self.update_interest(slot);
    }

    /// Decodes buffered frames into `job_batch`, stopping once the
    /// connection reaches `max_inflight_per_conn` so one read burst of
    /// tiny pipelined frames cannot flood the job queue. The remainder
    /// stays in the decoder — those bytes are already off the socket, so
    /// epoll will *not* re-deliver them; [`Self::apply_completions`]
    /// resumes decoding as in-flight requests drain. Returns `false` on
    /// a framing error (the caller closes the connection).
    fn decode_pending(&mut self, slot: usize) -> bool {
        let max_inflight = self.config.max_inflight_per_conn;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return true;
        };
        let generation = conn.generation;
        let mut dispatched = 0u64;
        let mut ok = true;
        while conn.inflight < max_inflight {
            match conn.decoder.next_frame() {
                Ok(Some(DecodedFrame::Hello)) => {
                    conn.outbuf.extend_from_slice(&MAGIC);
                    self.stats.v2_conns.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Some(DecodedFrame::V1 { payload })) => {
                    let tag = conn.next_seq;
                    conn.next_seq += 1;
                    conn.inflight += 1;
                    dispatched += 1;
                    self.job_batch.push(Job {
                        slot,
                        generation,
                        tag,
                        payload,
                    });
                }
                Ok(Some(DecodedFrame::V2 { corr_id, payload })) => {
                    conn.inflight += 1;
                    dispatched += 1;
                    self.job_batch.push(Job {
                        slot,
                        generation,
                        tag: corr_id,
                        payload,
                    });
                }
                Ok(None) => break,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if dispatched > 0 {
            self.stats.requests.fetch_add(dispatched, Ordering::Relaxed);
        }
        ok
    }

    fn apply_completions(&mut self) {
        let mut batch = std::mem::take(&mut self.completion_batch);
        self.completions.drain_into(&mut batch);
        if batch.is_empty() {
            self.completion_batch = batch;
            return;
        }
        let mut touched: Vec<usize> = Vec::new();
        for completion in batch.drain(..) {
            let slot = completion.slot;
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            if conn.generation != completion.generation {
                continue; // slot reused since this request was dispatched
            }
            conn.inflight -= 1;
            match conn.decoder.protocol() {
                Protocol::V2 => {
                    encode_v2_into(&mut conn.outbuf, completion.tag, &completion.response);
                }
                _ => {
                    // v1 promises in-order responses; reorder by sequence.
                    conn.reorder.insert(completion.tag, completion.response);
                    while let Some(response) = conn.reorder.remove(&conn.next_emit) {
                        encode_v1_into(&mut conn.outbuf, &response);
                        conn.next_emit += 1;
                    }
                }
            }
            self.stats.responses.fetch_add(1, Ordering::Relaxed);
            if !touched.contains(&slot) {
                touched.push(slot);
            }
        }
        self.completion_batch = batch;
        for slot in touched {
            // In-flight capacity just freed up: resume decoding frames
            // still buffered from an earlier capped read pass.
            if !self.decode_pending(slot) {
                self.close_conn(slot);
                continue;
            }
            self.flush_conn(slot);
            if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                if conn.peer_closed && conn.idle() {
                    self.close_conn(slot);
                } else {
                    self.update_interest(slot);
                }
            }
        }
        let mut jobs = std::mem::take(&mut self.job_batch);
        self.jobs.push_batch(&mut jobs);
        self.job_batch = jobs;
    }

    /// Writes as much buffered output as the socket accepts.
    fn flush_conn(&mut self, slot: usize) {
        let mut failed = false;
        let mut wrote = 0u64;
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            while conn.outpos < conn.outbuf.len() {
                match sys::write(conn.fd.raw(), &conn.outbuf[conn.outpos..]) {
                    Ok(n) => {
                        conn.outpos += n;
                        wrote += n as u64;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if conn.outpos == conn.outbuf.len() {
                conn.outbuf.clear();
                conn.outpos = 0;
            } else if conn.outpos >= 256 * 1024 {
                conn.outbuf.drain(..conn.outpos);
                conn.outpos = 0;
            }
        }
        if wrote > 0 {
            self.stats.bytes_out.fetch_add(wrote, Ordering::Relaxed);
        }
        if failed {
            self.close_conn(slot);
        }
    }

    /// Installs the interest the connection's state calls for, if changed.
    fn update_interest(&mut self, slot: usize) {
        let config_inflight = self.config.max_inflight_per_conn;
        let config_outbuf = self.config.max_outbuf_bytes;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let mut want = Interest::NONE;
        let backpressured = conn.inflight >= config_inflight || conn.pending_out() >= config_outbuf;
        if !conn.peer_closed && !backpressured {
            want = want.with(Interest::READABLE);
        }
        if conn.pending_out() > 0 {
            want = want.with(Interest::WRITABLE);
        }
        if want == conn.interest {
            return;
        }
        let fd = conn.fd.raw();
        conn.interest = want;
        let token = Token(slot + TOKEN_BASE);
        if self.poll.reregister(fd, token, want).is_err() {
            self.close_conn(slot);
        }
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) {
            let _ = self.poll.deregister(conn.fd.raw());
            drop(conn);
            self.active -= 1;
            self.free.push(slot);
            self.stats.closed.fetch_add(1, Ordering::Relaxed);
            self.gens[slot] = self.gens[slot].wrapping_add(1);
        }
    }
}

/// Convenience: a loopback `SocketAddrV4` with an ephemeral port.
pub fn loopback() -> SocketAddrV4 {
    SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)
}
