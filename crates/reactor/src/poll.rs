//! Minimal mio-style polling surface: [`Poll`], [`Token`], [`Interest`],
//! [`Events`], and a cross-thread [`Waker`].
//!
//! The shapes follow mio deliberately so the event loop in `server.rs` reads
//! like any other reactor, but the implementation is the raw-syscall layer in
//! [`crate::sys`] — no external crates.

use std::io;

use crate::sys;

/// Identifies a registered event source; returned verbatim with each event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness kinds a registration asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Readable readiness.
    pub const READABLE: Interest = Interest(sys::EPOLLIN);
    /// Writable readiness.
    pub const WRITABLE: Interest = Interest(sys::EPOLLOUT);
    /// No readiness — parks a source (hangup/error are still reported), used
    /// to stop reading from a connection under backpressure.
    pub const NONE: Interest = Interest(0);

    /// Combines two interests.
    #[must_use]
    pub fn with(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// True if the readable bit is set.
    pub fn is_readable(self) -> bool {
        self.0 & sys::EPOLLIN != 0
    }

    /// True if the writable bit is set.
    pub fn is_writable(self) -> bool {
        self.0 & sys::EPOLLOUT != 0
    }

    fn bits(self) -> u32 {
        // Always watch for peer half-close so dead connections are reaped
        // even while read interest is withdrawn for backpressure.
        self.0 | sys::EPOLLRDHUP
    }
}

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    bits: u32,
}

impl Event {
    /// The token supplied at registration.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Data can be read (or the peer half-closed, which reads as EOF).
    pub fn is_readable(&self) -> bool {
        self.bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0
    }

    /// Data can be written.
    pub fn is_writable(&self) -> bool {
        self.bits & sys::EPOLLOUT != 0
    }

    /// The source is in an error or hangup state and should be torn down
    /// after draining.
    pub fn is_error(&self) -> bool {
        self.bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0
    }
}

/// A reusable buffer of readiness notifications.
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer that can carry up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterates the events from the most recent [`Poll::poll`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|e| Event {
            token: Token(e.data as usize),
            bits: e.events,
        })
    }

    /// Number of events delivered by the most recent poll.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the most recent poll delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A level-triggered epoll instance.
pub struct Poll {
    ep: sys::Fd,
}

impl Poll {
    /// Creates the epoll instance.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            ep: sys::epoll_create()?,
        })
    }

    /// Registers `fd` with the given token and interest.
    pub fn register(&self, fd: sys::RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_add(self.ep.raw(), fd, interest.bits(), token.0 as u64)
    }

    /// Replaces the interest set of an already-registered `fd`.
    pub fn reregister(&self, fd: sys::RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_mod(self.ep.raw(), fd, interest.bits(), token.0 as u64)
    }

    /// Removes `fd` from the poll set.
    pub fn deregister(&self, fd: sys::RawFd) -> io::Result<()> {
        sys::epoll_del(self.ep.raw(), fd)
    }

    /// Blocks until readiness or timeout. `None` blocks indefinitely.
    pub fn poll(&self, events: &mut Events, timeout_ms: Option<i32>) -> io::Result<()> {
        events.len = sys::epoll_wait(self.ep.raw(), &mut events.raw, timeout_ms.unwrap_or(-1))?;
        Ok(())
    }
}

/// Wakes a [`Poll`] from another thread via a self-pipe.
///
/// Clone freely; wakes coalesce (N wakes may read as one).
#[derive(Clone)]
pub struct Waker {
    tx: std::sync::Arc<sys::Fd>,
}

impl Waker {
    /// Creates the pipe pair and registers the read end under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<(Waker, WakeRx)> {
        let (rx, tx) = sys::pipe()?;
        poll.register(rx.raw(), token, Interest::READABLE)?;
        Ok((
            Waker {
                tx: std::sync::Arc::new(tx),
            },
            WakeRx { rx },
        ))
    }

    /// Signals the poll loop. A full pipe means a wake is already pending,
    /// which is exactly the coalescing we want, so `WouldBlock` is success.
    pub fn wake(&self) {
        match sys::write(self.tx.raw(), &[1u8]) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {}
            Err(_) => {}
        }
    }
}

/// The read end of the wake pipe, owned by the poll loop.
pub struct WakeRx {
    rx: sys::Fd,
}

impl WakeRx {
    /// Drains all pending wake bytes so the level-triggered fd goes quiet.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = sys::read(self.rx.raw(), &mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waker_rouses_a_blocked_poll() {
        let poll = Poll::new().unwrap();
        let (waker, wake_rx) = Waker::new(&poll, Token(7)).unwrap();
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(0)).unwrap();
        assert!(events.is_empty());
        waker.wake();
        waker.wake(); // coalesces
        poll.poll(&mut events, Some(1000)).unwrap();
        assert_eq!(events.len(), 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());
        wake_rx.drain();
        poll.poll(&mut events, Some(0)).unwrap();
        assert!(events.is_empty(), "drained pipe is quiet");
    }

    #[test]
    fn interest_combinators() {
        let both = Interest::READABLE.with(Interest::WRITABLE);
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
    }
}
