//! Raw Linux syscalls — the only unsafe code in the crate.
//!
//! The workspace builds offline with no external crates, so instead of the
//! `libc` crate this module declares the C library's `syscall(2)` trampoline
//! and dials kernel entry points by number (per-architecture tables below).
//! Only the handful of calls the reactor needs are wrapped, each behind a
//! safe, `io::Result`-returning function; everything above this module is
//! `#![deny(unsafe_code)]`.

#![allow(unsafe_code)]

use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

/// A raw file descriptor.
pub type RawFd = i32;

// Syscall numbers. Linux guarantees these are stable per architecture.
#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: i64 = 0;
    pub const WRITE: i64 = 1;
    pub const CLOSE: i64 = 3;
    pub const SOCKET: i64 = 41;
    pub const BIND: i64 = 49;
    pub const LISTEN: i64 = 50;
    pub const GETSOCKNAME: i64 = 51;
    pub const SETSOCKOPT: i64 = 54;
    pub const EPOLL_CTL: i64 = 233;
    pub const EPOLL_PWAIT: i64 = 281;
    pub const ACCEPT4: i64 = 288;
    pub const EPOLL_CREATE1: i64 = 291;
    pub const PIPE2: i64 = 293;
    pub const PRLIMIT64: i64 = 302;
}
#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: i64 = 63;
    pub const WRITE: i64 = 64;
    pub const CLOSE: i64 = 57;
    pub const SOCKET: i64 = 198;
    pub const BIND: i64 = 200;
    pub const LISTEN: i64 = 201;
    pub const GETSOCKNAME: i64 = 204;
    pub const SETSOCKOPT: i64 = 208;
    pub const EPOLL_CTL: i64 = 21;
    pub const EPOLL_PWAIT: i64 = 22;
    pub const ACCEPT4: i64 = 242;
    pub const EPOLL_CREATE1: i64 = 20;
    pub const PIPE2: i64 = 59;
    pub const PRLIMIT64: i64 = 261;
}

extern "C" {
    // The C library's generic syscall trampoline (std already links the C
    // library on Linux, so no new link-time dependency is introduced) and
    // its thread-local errno cell.
    fn syscall(num: i64, ...) -> i64;
    fn __errno_location() -> *mut i32;
}

fn errno() -> i32 {
    // SAFETY: __errno_location always returns a valid thread-local pointer.
    unsafe { *__errno_location() }
}

fn cvt(ret: i64) -> io::Result<i64> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(errno()))
    } else {
        Ok(ret)
    }
}

/// `epoll_event`: packed on x86_64, naturally aligned elsewhere — this must
/// match the kernel ABI exactly or event data is misread.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// The caller's token, returned verbatim.
    pub data: u64,
}

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i64 = 1;
const EPOLL_CTL_DEL: i64 = 2;
const EPOLL_CTL_MOD: i64 = 3;

const AF_INET: i64 = 2;
const SOCK_STREAM: i64 = 1;
const SOCK_NONBLOCK: i64 = 0o4000;
const SOCK_CLOEXEC: i64 = 0o2000000;
const SOL_SOCKET: i64 = 1;
const SO_REUSEADDR: i64 = 2;
const IPPROTO_TCP: i64 = 6;
const TCP_NODELAY: i64 = 1;
const O_NONBLOCK: i64 = 0o4000;
const O_CLOEXEC: i64 = 0o2000000;
const RLIMIT_NOFILE: i64 = 7;

/// An owned file descriptor, closed on drop.
#[derive(Debug)]
pub struct Fd(RawFd);

impl Fd {
    /// The raw descriptor number.
    pub fn raw(&self) -> RawFd {
        self.0
    }
}

impl Drop for Fd {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this value and closed exactly once.
        unsafe {
            let _ = syscall(nr::CLOSE, self.0 as i64);
        }
    }
}

/// Creates an epoll instance (`EPOLL_CLOEXEC`).
pub fn epoll_create() -> io::Result<Fd> {
    // SAFETY: no pointers involved.
    let fd = cvt(unsafe { syscall(nr::EPOLL_CREATE1, O_CLOEXEC) })?;
    Ok(Fd(fd as RawFd))
}

fn epoll_ctl(epfd: RawFd, op: i64, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    let ptr = if op == EPOLL_CTL_DEL {
        std::ptr::null_mut()
    } else {
        &mut ev as *mut EpollEvent
    };
    // SAFETY: `ev` outlives the call; the kernel copies it synchronously.
    cvt(unsafe { syscall(nr::EPOLL_CTL, epfd as i64, op, fd as i64, ptr as i64) })?;
    Ok(())
}

/// Adds `fd` to the epoll set with the caller's token.
pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    epoll_ctl(epfd, EPOLL_CTL_ADD, fd, events, token)
}

/// Changes the interest set of an already-registered `fd`.
pub fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    epoll_ctl(epfd, EPOLL_CTL_MOD, fd, events, token)
}

/// Removes `fd` from the epoll set.
pub fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    epoll_ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0)
}

/// Waits for events; `timeout_ms < 0` blocks indefinitely. A signal
/// interruption reads as zero events.
pub fn epoll_wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: the buffer pointer/len pair is valid for the call's duration;
    // a null sigmask makes epoll_pwait behave exactly like epoll_wait.
    let ret = unsafe {
        syscall(
            nr::EPOLL_PWAIT,
            epfd as i64,
            events.as_mut_ptr() as i64,
            events.len() as i64,
            timeout_ms as i64,
            0i64, // sigmask: null
            8i64, // sigsetsize
        )
    };
    match cvt(ret) {
        Ok(n) => Ok(n as usize),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
        Err(e) => Err(e),
    }
}

/// Creates a nonblocking close-on-exec pipe; returns `(read, write)` ends.
pub fn pipe() -> io::Result<(Fd, Fd)> {
    let mut fds = [0 as RawFd; 2];
    // SAFETY: `fds` is a valid two-slot output buffer.
    cvt(unsafe { syscall(nr::PIPE2, fds.as_mut_ptr() as i64, O_NONBLOCK | O_CLOEXEC) })?;
    Ok((Fd(fds[0]), Fd(fds[1])))
}

/// Reads into `buf`; `Ok(0)` is end-of-stream. `WouldBlock` surfaces as an
/// error of that kind; `EINTR` is retried internally.
pub fn read(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    loop {
        // SAFETY: the buffer pointer/len pair is valid for the call.
        let ret = unsafe {
            syscall(
                nr::READ,
                fd as i64,
                buf.as_mut_ptr() as i64,
                buf.len() as i64,
            )
        };
        match cvt(ret) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Writes from `buf`, returning the number of bytes accepted; `EINTR` is
/// retried internally.
pub fn write(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    loop {
        // SAFETY: the buffer pointer/len pair is valid for the call.
        let ret = unsafe { syscall(nr::WRITE, fd as i64, buf.as_ptr() as i64, buf.len() as i64) };
        match cvt(ret) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// `sockaddr_in`, byte-for-byte.
#[repr(C)]
struct SockAddrIn {
    family: u16,
    port_be: u16,
    addr_be: u32,
    zero: [u8; 8],
}

impl SockAddrIn {
    fn new(addr: SocketAddrV4) -> Self {
        Self {
            family: AF_INET as u16,
            port_be: addr.port().to_be(),
            addr_be: u32::from(*addr.ip()).to_be(),
            zero: [0; 8],
        }
    }

    fn to_socket_addr(&self) -> SocketAddrV4 {
        SocketAddrV4::new(
            Ipv4Addr::from(u32::from_be(self.addr_be)),
            u16::from_be(self.port_be),
        )
    }
}

/// Creates a nonblocking IPv4 listener with `SO_REUSEADDR` and a large
/// backlog; returns the fd and the bound address (the ephemeral port
/// resolved).
pub fn tcp_listen(addr: SocketAddrV4, backlog: i32) -> io::Result<(Fd, SocketAddr)> {
    // SAFETY: plain flag arguments.
    let fd = cvt(unsafe {
        syscall(
            nr::SOCKET,
            AF_INET,
            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
            0i64,
        )
    })? as RawFd;
    let fd = Fd(fd);
    let one: i32 = 1;
    // SAFETY: `one` outlives the synchronous call.
    cvt(unsafe {
        syscall(
            nr::SETSOCKOPT,
            fd.raw() as i64,
            SOL_SOCKET,
            SO_REUSEADDR,
            &one as *const i32 as i64,
            std::mem::size_of::<i32>() as i64,
        )
    })?;
    let sin = SockAddrIn::new(addr);
    // SAFETY: `sin` is a valid sockaddr_in for the call's duration.
    cvt(unsafe {
        syscall(
            nr::BIND,
            fd.raw() as i64,
            &sin as *const SockAddrIn as i64,
            std::mem::size_of::<SockAddrIn>() as i64,
        )
    })?;
    // SAFETY: plain arguments.
    cvt(unsafe { syscall(nr::LISTEN, fd.raw() as i64, backlog as i64) })?;
    let mut out = SockAddrIn::new(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0));
    let mut len: u32 = std::mem::size_of::<SockAddrIn>() as u32;
    // SAFETY: `out`/`len` are valid output buffers for the call's duration.
    cvt(unsafe {
        syscall(
            nr::GETSOCKNAME,
            fd.raw() as i64,
            &mut out as *mut SockAddrIn as i64,
            &mut len as *mut u32 as i64,
        )
    })?;
    Ok((fd, SocketAddr::V4(out.to_socket_addr())))
}

/// Accepts one pending connection as a nonblocking close-on-exec socket;
/// `Ok(None)` when the accept queue is empty.
pub fn accept(listen_fd: RawFd) -> io::Result<Option<Fd>> {
    // SAFETY: null addr/addrlen are permitted; flags are plain integers.
    let ret = unsafe {
        syscall(
            nr::ACCEPT4,
            listen_fd as i64,
            0i64,
            0i64,
            SOCK_NONBLOCK | SOCK_CLOEXEC,
        )
    };
    match cvt(ret) {
        Ok(fd) => Ok(Some(Fd(fd as RawFd))),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(None),
        // A connection that was reset between arrival and accept is not a
        // listener failure.
        Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => Ok(None),
        Err(e) => Err(e),
    }
}

/// Disables Nagle on a connected TCP socket.
pub fn set_nodelay(fd: RawFd) -> io::Result<()> {
    let one: i32 = 1;
    // SAFETY: `one` outlives the synchronous call.
    cvt(unsafe {
        syscall(
            nr::SETSOCKOPT,
            fd as i64,
            IPPROTO_TCP,
            TCP_NODELAY,
            &one as *const i32 as i64,
            std::mem::size_of::<i32>() as i64,
        )
    })?;
    Ok(())
}

#[repr(C)]
struct Rlimit64 {
    cur: u64,
    max: u64,
}

/// Raises the process's open-file limit to at least `want` descriptors
/// (bounded by the hard limit for unprivileged processes; root can raise
/// the hard limit too). Returns the resulting soft limit.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut current = Rlimit64 { cur: 0, max: 0 };
    // SAFETY: `current` is a valid output buffer.
    cvt(unsafe {
        syscall(
            nr::PRLIMIT64,
            0i64,
            RLIMIT_NOFILE,
            0i64,
            &mut current as *mut Rlimit64 as i64,
        )
    })?;
    if current.cur >= want {
        return Ok(current.cur);
    }
    let target = Rlimit64 {
        cur: want,
        max: want.max(current.max),
    };
    // SAFETY: `target` is a valid input buffer.
    let raised = unsafe {
        syscall(
            nr::PRLIMIT64,
            0i64,
            RLIMIT_NOFILE,
            &target as *const Rlimit64 as i64,
            0i64,
        )
    };
    if raised >= 0 {
        return Ok(want);
    }
    // Unprivileged: settle for the hard limit.
    let fallback = Rlimit64 {
        cur: current.max,
        max: current.max,
    };
    // SAFETY: `fallback` is a valid input buffer.
    cvt(unsafe {
        syscall(
            nr::PRLIMIT64,
            0i64,
            RLIMIT_NOFILE,
            &fallback as *const Rlimit64 as i64,
            0i64,
        )
    })?;
    Ok(current.max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_round_trips_bytes_and_reports_would_block() {
        let (rx, tx) = pipe().unwrap();
        let mut buf = [0u8; 8];
        let err = read(rx.raw(), &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(write(tx.raw(), b"ping").unwrap(), 4);
        assert_eq!(read(rx.raw(), &mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
    }

    #[test]
    fn epoll_sees_pipe_readability() {
        let ep = epoll_create().unwrap();
        let (rx, tx) = pipe().unwrap();
        epoll_add(ep.raw(), rx.raw(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll_wait(ep.raw(), &mut events, 0).unwrap(), 0);
        write(tx.raw(), b"x").unwrap();
        let n = epoll_wait(ep.raw(), &mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 42);
        epoll_del(ep.raw(), rx.raw()).unwrap();
    }

    #[test]
    fn listener_binds_an_ephemeral_port_and_accepts() {
        let (listener, addr) = tcp_listen(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0), 128).unwrap();
        assert_ne!(addr.port(), 0);
        assert!(
            accept(listener.raw()).unwrap().is_none(),
            "no one connected"
        );
        let client = std::net::TcpStream::connect(addr).unwrap();
        // The connection may take a scheduler tick to reach the queue.
        let mut accepted = None;
        for _ in 0..100 {
            if let Some(fd) = accept(listener.raw()).unwrap() {
                accepted = Some(fd);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let conn = accepted.expect("connection accepted");
        set_nodelay(conn.raw()).unwrap();
        drop(client);
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        let now = raise_nofile_limit(64).unwrap();
        assert!(now >= 64);
    }
}
