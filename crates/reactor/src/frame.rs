//! Wire framing, versions 1 and 2.
//!
//! **v1** is the existing blocking-transport format: `[len: u32 BE][payload]`,
//! one JSON document per frame, strictly request→response in order.
//!
//! **v2** adds pipelining. A connection opts in by sending the 4-byte magic
//! `"OCP2"` before its first frame; the server echoes the magic back and both
//! sides then exchange `[len: u32 BE][corr_id: u64 BE][payload]` frames, where
//! `len` counts only the payload. Responses may arrive in any order and are
//! matched by `corr_id`. The magic read as a v1 length is `0x4F43_5032`
//! (≈ 1.3 GiB), far above [`MAX_FRAME_BYTES`], so a v1-only peer rejects a v2
//! hello loudly instead of hanging.

/// Largest accepted payload, shared with the v1 blocking transport.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// The v2 hello: ASCII `"OCP2"`.
pub const MAGIC: [u8; 4] = *b"OCP2";

/// v2 frame header length: 4-byte payload length + 8-byte correlation id.
const V2_HEADER: usize = 12;

/// Which framing the peer speaks, decided by its first four bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// First bytes not seen yet.
    Unknown,
    /// Legacy in-order framing.
    V1,
    /// Pipelined framing with correlation ids.
    V2,
}

/// A decoding failure; the connection should be dropped.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The declared length.
        len: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds cap {MAX_FRAME_BYTES}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded item from the stream.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodedFrame {
    /// The peer sent the v2 magic; the server should echo [`MAGIC`].
    Hello,
    /// A legacy frame (implicit ordering).
    V1 {
        /// The JSON payload.
        payload: Vec<u8>,
    },
    /// A pipelined frame.
    V2 {
        /// Client-assigned correlation id, echoed on the response.
        corr_id: u64,
        /// The JSON payload.
        payload: Vec<u8>,
    },
}

/// Incremental decoder for one connection's inbound byte stream.
///
/// Feed arbitrary chunks with [`extend`](Self::extend), then pull complete
/// frames with [`next_frame`](Self::next_frame) until it returns `Ok(None)`.
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    proto: Protocol,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// An empty decoder in the [`Protocol::Unknown`] state.
    pub fn new() -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            proto: Protocol::Unknown,
        }
    }

    /// A decoder pinned to v2 — for clients that already consumed the
    /// server's magic echo during the handshake.
    pub fn new_v2() -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            proto: Protocol::V2,
        }
    }

    /// The negotiated protocol so far.
    pub fn protocol(&self) -> Protocol {
        self.proto
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, chunk: &[u8]) {
        // Compact before growing so the buffer doesn't creep upward across
        // a long-lived connection.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    fn available(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Pulls the next complete frame, `Ok(None)` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<DecodedFrame>, FrameError> {
        if self.proto == Protocol::Unknown {
            let avail = self.available();
            if avail.len() < 4 {
                return Ok(None);
            }
            if avail[..4] == MAGIC {
                self.proto = Protocol::V2;
                self.pos += 4;
                return Ok(Some(DecodedFrame::Hello));
            }
            self.proto = Protocol::V1;
        }
        let avail = self.available();
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len > MAX_FRAME_BYTES {
            return Err(FrameError::Oversized { len });
        }
        match self.proto {
            Protocol::V1 => {
                let total = 4 + len as usize;
                if avail.len() < total {
                    return Ok(None);
                }
                let payload = avail[4..total].to_vec();
                self.pos += total;
                Ok(Some(DecodedFrame::V1 { payload }))
            }
            Protocol::V2 => {
                let total = V2_HEADER + len as usize;
                if avail.len() < total {
                    return Ok(None);
                }
                let corr_id = u64::from_be_bytes([
                    avail[4], avail[5], avail[6], avail[7], avail[8], avail[9], avail[10],
                    avail[11],
                ]);
                let payload = avail[V2_HEADER..total].to_vec();
                self.pos += total;
                Ok(Some(DecodedFrame::V2 { corr_id, payload }))
            }
            Protocol::Unknown => unreachable!("protocol decided above"),
        }
    }
}

/// Appends a v1 frame to `out`.
pub fn encode_v1_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Appends a v2 frame to `out`.
pub fn encode_v2_into(out: &mut Vec<u8>, corr_id: u64, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&corr_id.to_be_bytes());
    out.extend_from_slice(payload);
}

/// A standalone v1 frame.
pub fn encode_v1(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    encode_v1_into(&mut out, payload);
    out
}

/// A standalone v2 frame.
pub fn encode_v2(corr_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(V2_HEADER + payload.len());
    encode_v2_into(&mut out, corr_id, payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_frames_decode_without_magic() {
        let mut dec = FrameDecoder::new();
        dec.extend(&encode_v1(b"{\"a\":1}"));
        dec.extend(&encode_v1(b"{\"b\":2}"));
        assert_eq!(
            dec.next_frame().unwrap(),
            Some(DecodedFrame::V1 {
                payload: b"{\"a\":1}".to_vec()
            })
        );
        assert_eq!(dec.protocol(), Protocol::V1);
        assert_eq!(
            dec.next_frame().unwrap(),
            Some(DecodedFrame::V1 {
                payload: b"{\"b\":2}".to_vec()
            })
        );
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn v2_hello_then_frames_byte_by_byte() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&MAGIC);
        encode_v2_into(&mut stream, 99, b"first");
        encode_v2_into(&mut stream, u64::MAX, b"");
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for byte in stream {
            dec.extend(&[byte]);
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(
            got,
            vec![
                DecodedFrame::Hello,
                DecodedFrame::V2 {
                    corr_id: 99,
                    payload: b"first".to_vec()
                },
                DecodedFrame::V2 {
                    corr_id: u64::MAX,
                    payload: Vec::new()
                },
            ]
        );
        assert_eq!(dec.protocol(), Protocol::V2);
    }

    #[test]
    fn magic_read_as_v1_length_is_oversized() {
        // A v1-only peer that receives the magic must reject, not hang: the
        // magic interpreted as a length is far above the cap.
        let len = u32::from_be_bytes(MAGIC);
        assert!(len > MAX_FRAME_BYTES);
    }

    #[test]
    fn oversized_frame_is_an_error() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::Oversized {
                len: MAX_FRAME_BYTES + 1
            })
        );
    }

    #[test]
    fn buffer_compacts_after_consumption() {
        let mut dec = FrameDecoder::new();
        for i in 0..200u32 {
            dec.extend(&encode_v1(format!("{{\"i\":{i}}}").as_bytes()));
            assert!(dec.next_frame().unwrap().is_some());
        }
        assert_eq!(dec.pending_bytes(), 0);
        dec.extend(b"\x00");
        // Internal buffer was compacted, not grown 200 frames deep.
        assert!(dec.buf.len() <= 16);
    }
}
