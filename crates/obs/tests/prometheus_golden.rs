//! Golden test for the Prometheus text exposition rendering, plus a
//! property fuzz over the label-escaping pair.
//!
//! The golden file pins the byte-exact page for a fixed registry: family
//! ordering, HELP/TYPE lines, label ordering and escaping, cumulative
//! bucket bounds, `_sum`/`_count`. Regenerate after an intentional format
//! change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p ocp-obs --test prometheus_golden
//! ```

use ocp_obs::{escape_label_value, unescape_label_value, Registry};
use proptest::prelude::*;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");

/// A registry covering every rendering feature: all three metric kinds,
/// labeled and label-free series, multi-series families, characters that
/// need escaping, and histogram buckets with gaps.
fn golden_registry() -> Registry {
    let r = Registry::new();
    r.counter(
        "ocp_demo_requests_total",
        "Requests served, by endpoint.",
        &[("endpoint", "route")],
    )
    .add(42);
    r.counter(
        "ocp_demo_requests_total",
        "Requests served, by endpoint.",
        &[("endpoint", "status")],
    )
    .add(7);
    r.counter(
        "ocp_demo_escapes_total",
        "Label values with every escapable character.",
        &[("path", "a\\b\"c\nd")],
    )
    .inc();
    r.gauge("ocp_demo_queue_depth", "Current queue depth.", &[])
        .set(12);
    r.gauge(
        "ocp_demo_balance",
        "A gauge that can go negative.",
        &[("shard", "0")],
    )
    .set(-5);
    let h = r.histogram("ocp_demo_latency_ns", "Demo latency histogram.", &[]);
    h.record(1); // bucket 0, le="2"
    h.record(1);
    h.record(3); // bucket 1, le="4"
    h.record(100); // bucket 6, le="128" (gap: buckets 2-5 render as flat)
                   // Tenant-scoped series: bounded cardinality via shard-id labels.
    r.tenant_counter(
        "ocp_demo_tenant_requests_total",
        "Per-tenant requests, labeled by shard id.",
        0,
    )
    .add(11);
    r.tenant_counter(
        "ocp_demo_tenant_requests_total",
        "Per-tenant requests, labeled by shard id.",
        3,
    )
    .add(2);
    r.tenant_gauge(
        "ocp_demo_tenant_connections",
        "Per-tenant open connections, labeled by shard id.",
        3,
    )
    .set(9);
    r
}

#[test]
fn rendering_matches_the_committed_golden_file() {
    let rendered = golden_registry().render_prometheus();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "Prometheus rendering drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_page_parses_as_well_formed_exposition_text() {
    // Independent of the byte-exact pin: every non-comment line must split
    // into `name{labels} value` with unescapable label values.
    let page = golden_registry().render_prometheus();
    let mut samples = 0;
    for line in page.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "unknown comment line: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("line has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in: {line}"
        );
        if let Some((name, rest)) = series.split_once('{') {
            assert!(
                !name.is_empty() && rest.ends_with('}'),
                "bad series: {series}"
            );
            let body = &rest[..rest.len() - 1];
            // Label values may contain escaped quotes; split on `","`
            // boundaries is enough for this page's shape.
            for pair in split_label_pairs(body) {
                let (key, quoted) = pair.split_once('=').expect("k=v pair");
                assert!(!key.is_empty());
                let inner = quoted
                    .strip_prefix('"')
                    .and_then(|q| q.strip_suffix('"'))
                    .expect("quoted value");
                assert!(
                    unescape_label_value(inner).is_some(),
                    "invalid escaping in {pair:?}"
                );
            }
        }
        samples += 1;
    }
    assert!(samples > 10, "suspiciously short page:\n{page}");
}

/// Splits `k1="v1",k2="v2"` into pairs, respecting escaped quotes.
fn split_label_pairs(body: &str) -> Vec<&str> {
    let mut pairs = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, ch) in body.char_indices() {
        match ch {
            _ if escaped => escaped = false,
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                pairs.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pairs.push(&body[start..]);
    pairs
}

/// Characters weighted toward the ones the escaper must handle.
fn label_char() -> impl Strategy<Value = char> {
    prop_oneof![Just('\\'), Just('"'), Just('\n'), Just('n'), any::<char>(),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn escaping_round_trips_arbitrary_label_values(
        chars in proptest::collection::vec(label_char(), 0..64)
    ) {
        let raw: String = chars.into_iter().collect();
        let escaped = escape_label_value(&raw);
        // The escaped form must be safe to embed in a quoted label value:
        // no raw newline, no unescaped quote or backslash.
        prop_assert!(!escaped.contains('\n'));
        let mut iter = escaped.chars();
        while let Some(ch) = iter.next() {
            if ch == '\\' {
                let next = iter.next();
                prop_assert!(
                    matches!(next, Some('\\' | '"' | 'n')),
                    "dangling or unknown escape in {escaped:?}"
                );
            } else {
                prop_assert!(ch != '"', "unescaped quote in {escaped:?}");
            }
        }
        prop_assert_eq!(unescape_label_value(&escaped), Some(raw));
    }

    #[test]
    fn unescape_never_panics_on_arbitrary_input(
        chars in proptest::collection::vec(label_char(), 0..64)
    ) {
        let input: String = chars.into_iter().collect();
        // Any input either unescapes cleanly or is rejected with None —
        // and accepted inputs re-escape to themselves only when they were
        // a canonical escaping.
        if let Some(decoded) = unescape_label_value(&input) {
            let reencoded = escape_label_value(&decoded);
            let redecoded = unescape_label_value(&reencoded);
            prop_assert_eq!(redecoded.as_deref(), Some(decoded.as_str()));
        }
    }
}
