//! Concurrency suite for the metrics registry: writers hammer counters and
//! histograms from scoped threads while a reader snapshots continuously.
//! Every snapshot must be internally consistent (tear-free) and the
//! sequence of snapshots monotone — a reader can never watch a counter go
//! backwards, and a histogram's count always equals the sum of its buckets.

use ocp_obs::{MetricValue, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

const WRITERS: usize = 8;
const OPS_PER_WRITER: u64 = 20_000;

#[test]
fn counters_are_monotone_under_contention_and_exact_after_join() {
    let registry = Registry::new();
    let stop = AtomicBool::new(false);
    thread::scope(|scope| {
        for w in 0..WRITERS {
            let registry = &registry;
            scope.spawn(move || {
                // Each writer does its own get-or-create: the lookup races
                // are part of what this test exercises.
                let shared = registry.counter("ocp_test_ops_total", "Shared series.", &[]);
                let own_label = format!("w{w}");
                let own = registry.counter(
                    "ocp_test_ops_total",
                    "Shared series.",
                    &[("writer", &own_label)],
                );
                for _ in 0..OPS_PER_WRITER {
                    shared.inc();
                    own.add(2);
                }
            });
        }
        let reader = scope.spawn(|| {
            let mut last_shared = 0u64;
            let mut last_grand = 0u64;
            let mut observations = 0u64;
            while !stop.load(Ordering::Acquire) {
                let snap = registry.snapshot();
                let shared = snap.counter("ocp_test_ops_total", &[]);
                assert!(shared >= last_shared, "shared counter went backwards");
                last_shared = shared;
                // The whole family is monotone too, summed across series.
                let grand: u64 = snap
                    .family("ocp_test_ops_total")
                    .map(|f| {
                        f.series
                            .iter()
                            .map(|s| match s.value {
                                MetricValue::Counter(v) => v,
                                _ => panic!("counter family holds non-counters"),
                            })
                            .sum()
                    })
                    .unwrap_or(0);
                assert!(grand >= last_grand, "family total went backwards");
                last_grand = grand;
                observations += 1;
            }
            observations
        });
        // Stop the reader once every writer increment is visible.
        while registry.snapshot().counter("ocp_test_ops_total", &[])
            < WRITERS as u64 * OPS_PER_WRITER
        {
            std::hint::spin_loop();
        }
        stop.store(true, Ordering::Release);
        assert!(reader.join().unwrap() > 0, "reader never snapshotted");
    });

    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("ocp_test_ops_total", &[]),
        WRITERS as u64 * OPS_PER_WRITER
    );
    for w in 0..WRITERS {
        let label = format!("w{w}");
        assert_eq!(
            snap.counter("ocp_test_ops_total", &[("writer", &label)]),
            2 * OPS_PER_WRITER,
            "writer {w} series"
        );
    }
}

#[test]
fn histogram_snapshots_are_tear_free_and_monotone() {
    let registry = Registry::new();
    let stop = AtomicBool::new(false);
    thread::scope(|scope| {
        for w in 0..WRITERS {
            let registry = &registry;
            scope.spawn(move || {
                let histogram =
                    registry.histogram("ocp_test_latency_ns", "Hammered histogram.", &[]);
                for i in 0..OPS_PER_WRITER {
                    // Spread samples across many buckets.
                    histogram.record((i % 20) + (w as u64) * 1000 + 1);
                }
            });
        }
        let reader = scope.spawn(|| {
            let mut last_count = 0u64;
            let mut last_sum = 0u64;
            while !stop.load(Ordering::Acquire) {
                let snap = registry.snapshot();
                if let Some(h) = snap.histogram("ocp_test_latency_ns", &[]) {
                    // Tear-free by construction: the snapshot's count is
                    // derived from one bucket-array read.
                    let bucket_total: u64 = h.buckets.iter().sum();
                    assert_eq!(h.count, bucket_total, "count != Σ buckets (torn read)");
                    assert!(h.count >= last_count, "histogram count went backwards");
                    assert!(h.sum >= last_sum, "histogram sum went backwards");
                    last_count = h.count;
                    last_sum = h.sum;
                }
            }
        });
        while registry
            .snapshot()
            .histogram("ocp_test_latency_ns", &[])
            .map(|h| h.count)
            .unwrap_or(0)
            < WRITERS as u64 * OPS_PER_WRITER
        {
            std::hint::spin_loop();
        }
        stop.store(true, Ordering::Release);
        reader.join().unwrap();
    });

    let snap = registry.snapshot();
    let h = snap.histogram("ocp_test_latency_ns", &[]).unwrap();
    assert_eq!(h.count, WRITERS as u64 * OPS_PER_WRITER);
    let expected_sum: u64 = (0..WRITERS as u64)
        .map(|w| {
            (0..OPS_PER_WRITER)
                .map(|i| (i % 20) + w * 1000 + 1)
                .sum::<u64>()
        })
        .sum();
    assert_eq!(h.sum, expected_sum, "no recorded value was lost");
}

#[test]
fn get_or_create_races_converge_on_one_series() {
    let registry = Registry::new();
    thread::scope(|scope| {
        for _ in 0..WRITERS {
            let registry = &registry;
            scope.spawn(move || {
                for _ in 0..1000 {
                    registry
                        .counter("ocp_test_race_total", "Raced get-or-create.", &[("k", "v")])
                        .inc();
                }
            });
        }
    });
    let snap = registry.snapshot();
    let family = snap.family("ocp_test_race_total").unwrap();
    assert_eq!(family.series.len(), 1, "races must not duplicate series");
    assert_eq!(
        snap.counter("ocp_test_race_total", &[("k", "v")]),
        WRITERS as u64 * 1000
    );
}

#[test]
fn gauges_land_on_the_final_value_after_racing_adds() {
    let registry = Registry::new();
    thread::scope(|scope| {
        for _ in 0..WRITERS {
            let registry = &registry;
            scope.spawn(move || {
                let gauge = registry.gauge("ocp_test_depth", "Racing gauge.", &[]);
                for _ in 0..OPS_PER_WRITER {
                    gauge.add(1);
                    gauge.add(-1);
                }
                gauge.add(3);
            });
        }
    });
    let snap = registry.snapshot();
    match snap
        .family("ocp_test_depth")
        .and_then(|f| f.series.first())
        .map(|s| &s.value)
    {
        Some(MetricValue::Gauge(v)) => assert_eq!(*v, 3 * WRITERS as i64),
        other => panic!("expected gauge, got {other:?}"),
    }
}
