//! Metric primitives and the labeled-series registry.
//!
//! Recording paths are a handful of relaxed atomic operations — hot paths
//! never take a lock to bump a counter or record a latency. The registry
//! itself is locked only on handle lookup (`counter`/`gauge`/`histogram`),
//! so instrumentation sites that run per-round or per-request should fetch
//! their [`Arc`] handle once and record through it.

use ocp_analysis::Percentiles;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two histogram buckets; bucket `i` holds observations
/// in `[2^i, 2^(i+1))`, so 64 buckets cover every `u64` value.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing `u64` counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge (relaxed atomics).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A concurrent histogram with power-of-two buckets (promoted out of
/// `ocp-serve`, where it bucketed request latencies in nanoseconds).
///
/// Recording is two relaxed `fetch_add`s; reading produces nearest-rank
/// percentiles at bucket resolution, each bucket represented by its
/// geometric midpoint.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }
}

/// Representative value of bucket `i`: the geometric midpoint of
/// `[2^i, 2^(i+1))`.
fn bucket_mid(i: usize) -> f64 {
    (1u64 << i) as f64 * 1.5
}

impl Histogram {
    /// Records one observation (lock-free). Zero is clamped into the
    /// lowest bucket.
    pub fn record(&self, value: u64) {
        let idx = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket observation counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Nearest-rank percentiles over the bucketed sample, with each bucket
    /// represented by its geometric midpoint (all-zero when empty).
    pub fn percentiles(&self) -> Percentiles {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Percentiles::of(&[]);
        }
        let value_at_rank = |rank: u64| -> f64 {
            let mut cumulative = 0u64;
            for (i, &n) in counts.iter().enumerate() {
                cumulative += n;
                if cumulative >= rank {
                    return bucket_mid(i);
                }
            }
            bucket_mid(HISTOGRAM_BUCKETS - 1)
        };
        let rank = |p: f64| -> u64 { ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total) };
        let max_bucket = counts.iter().rposition(|&n| n > 0).unwrap_or(0);
        Percentiles {
            n: total as usize,
            p50: value_at_rank(rank(50.0)),
            p90: value_at_rank(rank(90.0)),
            p95: value_at_rank(rank(95.0)),
            p99: value_at_rank(rank(99.0)),
            max: bucket_mid(max_bucket),
        }
    }

    /// Consistent point-in-time view: counts are read once, so
    /// `count == buckets.sum()` holds by construction in every snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.bucket_counts();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// What kind of metric a family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Settable signed gauge.
    Gauge,
    /// Power-of-two bucketed histogram.
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` keyword.
    pub fn prometheus_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<Vec<(String, String)>, Metric>,
}

/// A registry of labeled metric families.
///
/// Lookup (`counter`/`gauge`/`histogram`) is get-or-create under one mutex
/// and hands back an [`Arc`] handle; all recording then happens lock-free
/// through the handle. Families and label sets are ordered (`BTreeMap`),
/// so snapshots and renderings are deterministic.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn metric(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
        kind: MetricKind,
    ) -> Metric {
        let key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric `{name}` registered as {:?}, requested as {kind:?}",
            family.kind
        );
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// Get-or-create the counter `name{labels}`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.metric(
            name,
            help,
            labels,
            || Metric::Counter(Arc::new(Counter::default())),
            MetricKind::Counter,
        ) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get-or-create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.metric(
            name,
            help,
            labels,
            || Metric::Gauge(Arc::new(Gauge::default())),
            MetricKind::Gauge,
        ) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get-or-create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.metric(
            name,
            help,
            labels,
            || Metric::Histogram(Arc::new(Histogram::default())),
            MetricKind::Histogram,
        ) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Get-or-create the counter `name{tenant="shard<N>"}`.
    ///
    /// Tenant-scoped series are labeled by **shard id**, never by the raw
    /// tenant string: tenants hash onto a fixed shard ring, so the page's
    /// cardinality is bounded by the shard count no matter how many
    /// tenants are created and dropped over the process's lifetime.
    pub fn tenant_counter(&self, name: &str, help: &str, shard: usize) -> Arc<Counter> {
        self.counter(name, help, &[("tenant", &tenant_label(shard))])
    }

    /// Get-or-create the gauge `name{tenant="shard<N>"}` (see
    /// [`tenant_counter`](Self::tenant_counter) for the cardinality rule).
    pub fn tenant_gauge(&self, name: &str, help: &str, shard: usize) -> Arc<Gauge> {
        self.gauge(name, help, &[("tenant", &tenant_label(shard))])
    }

    /// Get-or-create the histogram `name{tenant="shard<N>"}` (see
    /// [`tenant_counter`](Self::tenant_counter) for the cardinality rule).
    pub fn tenant_histogram(&self, name: &str, help: &str, shard: usize) -> Arc<Histogram> {
        self.histogram(name, help, &[("tenant", &tenant_label(shard))])
    }

    /// A consistent, serializable point-in-time view of every family.
    ///
    /// Values observed by successive snapshots are monotone for counters
    /// and histogram buckets (writers only add), and each histogram's
    /// `count` equals the sum of its snapshot buckets by construction.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let families = self.families.lock().expect("registry poisoned");
        RegistrySnapshot {
            families: families
                .iter()
                .map(|(name, family)| FamilySnapshot {
                    name: name.clone(),
                    help: family.help.clone(),
                    kind: family.kind,
                    series: family
                        .series
                        .iter()
                        .map(|(labels, metric)| SeriesSnapshot {
                            labels: labels.clone(),
                            value: match metric {
                                Metric::Counter(c) => MetricValue::Counter(c.get()),
                                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                                Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Renders every family in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        crate::prom::render(&self.snapshot())
    }
}

/// The bounded-cardinality `tenant` label value for a shard: `shard<N>`.
pub fn tenant_label(shard: usize) -> String {
    format!("shard{shard}")
}

/// Serializable view of a whole [`Registry`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Every family, ordered by name.
    pub families: Vec<FamilySnapshot>,
}

impl RegistrySnapshot {
    /// Looks a family up by name.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Value of the counter `name{labels}`, or 0 when the series does not
    /// exist (which is what a counter that never fired reads as).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.series_value(name, labels) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot of `name{labels}`, if that series exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.series_value(name, labels) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    fn series_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let family = self.family(name)?;
        family
            .series
            .iter()
            .find(|s| {
                s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|s| &s.value)
    }
}

/// Serializable view of one metric family.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FamilySnapshot {
    /// Family name (e.g. `ocp_labeling_rounds_total`).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Every labeled series, ordered by label set.
    pub series: Vec<SeriesSnapshot>,
}

/// Serializable view of one labeled series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Label key/value pairs, sorted.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: MetricValue,
}

/// A snapshotted metric value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram reading.
    Histogram(HistogramSnapshot),
}

/// Point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations (always equals the sum of `buckets`).
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket counts (`HISTOGRAM_BUCKETS` entries, bucket `i` covers
    /// `[2^i, 2^(i+1))`).
    pub buckets: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("c_total", "a counter", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("g", "a gauge", &[]);
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn handles_are_shared_per_label_set() {
        let r = Registry::new();
        let a = r.counter("x_total", "x", &[("k", "1")]);
        let b = r.counter("x_total", "x", &[("k", "1")]);
        let other = r.counter("x_total", "x", &[("k", "2")]);
        a.inc();
        b.inc();
        other.add(10);
        assert_eq!(a.get(), 2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x_total", &[("k", "1")]), 2);
        assert_eq!(snap.counter("x_total", &[("k", "2")]), 10);
        assert_eq!(snap.counter("x_total", &[("k", "3")]), 0);
    }

    #[test]
    #[should_panic(expected = "registered as Counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("dual", "first as counter", &[]);
        let _ = r.gauge("dual", "then as gauge", &[]);
    }

    #[test]
    fn histogram_tracks_count_sum_and_percentiles() {
        let h = Histogram::default();
        assert_eq!(h.percentiles().n, 0);
        // 1000 lands in bucket 9 ([512, 1024)); mid = 768.
        h.record(1000);
        assert_eq!((h.count(), h.sum()), (1, 1000));
        assert_eq!(h.percentiles().p50, 768.0);
        // Zero is clamped into the lowest bucket instead of panicking.
        h.record(0);
        assert_eq!(h.count(), 2);
        let snap = h.snapshot();
        assert_eq!(snap.count, snap.buckets.iter().sum::<u64>());
    }

    #[test]
    fn tenant_series_use_shard_scoped_labels() {
        let r = Registry::new();
        // Many tenants, few shards: the series count is bounded by shards.
        for shard in [0usize, 1, 0, 1, 0] {
            r.tenant_counter("fleet_requests_total", "per-tenant requests", shard)
                .inc();
        }
        r.tenant_gauge("fleet_conns", "per-tenant connections", 1)
            .set(4);
        r.tenant_histogram("fleet_lat_ns", "per-tenant latency", 0)
            .record(128);
        let snap = r.snapshot();
        assert_eq!(
            snap.counter("fleet_requests_total", &[("tenant", "shard0")]),
            3
        );
        assert_eq!(
            snap.counter("fleet_requests_total", &[("tenant", "shard1")]),
            2
        );
        let family = snap.family("fleet_requests_total").unwrap();
        assert_eq!(family.series.len(), 2, "cardinality bounded by shards");
        let page = r.render_prometheus();
        assert!(page.contains("fleet_requests_total{tenant=\"shard0\"} 3"));
        assert!(page.contains("fleet_conns{tenant=\"shard1\"} 4"));
    }

    #[test]
    fn snapshot_round_trips_json() {
        let r = Registry::new();
        r.counter("runs_total", "runs", &[("engine", "bitboard-1")])
            .add(3);
        r.gauge("depth", "queue depth", &[]).set(-2);
        r.histogram("lat_ns", "latency", &[("endpoint", "route")])
            .record(4096);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.counter("runs_total", &[("engine", "bitboard-1")]), 3);
        assert_eq!(
            back.histogram("lat_ns", &[("endpoint", "route")])
                .unwrap()
                .count,
            1
        );
    }
}
