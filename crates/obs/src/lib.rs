//! Workspace-wide observability: structured metrics, Prometheus text
//! exposition, and a span trace ring.
//!
//! Design goals, in order:
//!
//! 1. **Near-zero cost when disabled.** Observability is off by default;
//!    the process-global gate is one relaxed atomic load
//!    ([`enabled`]), which every instrumentation site checks before doing
//!    any work. Hot loops hoist the check out and pre-fetch their metric
//!    handles, so a disabled build pays a branch per *run*, not per round.
//! 2. **Lock-free hot paths when enabled.** Recording into a [`Counter`],
//!    [`Gauge`], or [`Histogram`] is a handful of relaxed atomic adds —
//!    the same discipline `ocp-serve`'s request metrics already used (its
//!    latency histogram now lives here).
//! 3. **No external dependencies.** Like the rest of the workspace this
//!    builds offline; rendering implements the Prometheus text exposition
//!    format directly ([`prom`]).
//!
//! Three consumption surfaces, mirroring the service endpoints:
//! the process-global [`Registry`] ([`global`]) snapshots into typed,
//! serializable [`RegistrySnapshot`]s; [`Registry::render_prometheus`]
//! produces a `/metrics`-style text page; and the global [`TraceRing`]
//! ([`tracer`]) keeps the most recent completed spans for JSON dumps.

#![warn(missing_docs)]

pub mod metrics;
pub mod prom;
pub mod trace;

pub use metrics::{
    tenant_label, Counter, FamilySnapshot, Gauge, Histogram, HistogramSnapshot, MetricKind,
    MetricValue, Registry, RegistrySnapshot, SeriesSnapshot, HISTOGRAM_BUCKETS,
};
pub use prom::{escape_help, escape_label_value, unescape_label_value};
pub use trace::{Span, SpanRecord, TraceRing};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Spans the global [`tracer`] retains before evicting the oldest.
pub const GLOBAL_TRACE_CAPACITY: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns instrumentation on or off process-wide. Off by default; metrics
/// already recorded stay readable either way.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation sites should record. One relaxed load — this is
/// the whole cost of the disabled path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-global metrics registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// The process-global span trace ring.
pub fn tracer() -> &'static TraceRing {
    static TRACER: OnceLock<TraceRing> = OnceLock::new();
    TRACER.get_or_init(|| TraceRing::new(GLOBAL_TRACE_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_defaults_off_and_toggles() {
        // Another test in this binary may have flipped it; just exercise
        // the toggle round trip.
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }

    #[test]
    fn global_registry_and_tracer_are_singletons() {
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
        let t1 = tracer() as *const TraceRing;
        let t2 = tracer() as *const TraceRing;
        assert_eq!(t1, t2);
    }
}
