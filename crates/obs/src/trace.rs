//! A bounded span trace ring: the "what just happened" complement to the
//! cumulative metrics registry.
//!
//! Instrumented phases push one [`SpanRecord`] per completed unit of work
//! (a labeling phase, a pipeline run, an epoch publication). The ring keeps
//! the most recent `capacity` records and counts what it had to drop, so a
//! long-running service can always dump the recent history as JSON without
//! unbounded memory.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Monotone sequence number (never reused, survives ring eviction).
    pub seq: u64,
    /// Span name (e.g. `labeling/safety`).
    pub name: String,
    /// Start time in microseconds since the ring was created.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub elapsed_us: u64,
    /// Free-form key/value annotations.
    pub fields: Vec<(String, String)>,
}

struct RingInner {
    next_seq: u64,
    records: VecDeque<SpanRecord>,
}

/// A fixed-capacity concurrent ring of completed spans.
pub struct TraceRing {
    epoch: Instant,
    capacity: usize,
    dropped: AtomicU64,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// An empty ring holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            inner: Mutex::new(RingInner {
                next_seq: 0,
                records: VecDeque::new(),
            }),
        }
    }

    /// Starts a span; finishing it records the elapsed time.
    pub fn span(&self, name: &str) -> Span<'_> {
        self.span_at(name, Instant::now())
    }

    /// A span that began at `start` — for callers that timed the work
    /// themselves and only decide afterwards to record it.
    pub fn span_at(&self, name: &str, start: Instant) -> Span<'_> {
        Span {
            ring: self,
            name: name.to_string(),
            start,
            fields: Vec::new(),
        }
    }

    fn push(&self, name: String, start: Instant, fields: Vec<(String, String)>) {
        let start_us = start
            .saturating_duration_since(self.epoch)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let elapsed_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.records.len() == self.capacity {
            inner.records.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.records.push_back(SpanRecord {
            seq,
            name,
            start_us,
            elapsed_us,
            fields,
        });
    }

    /// The retained records, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let inner = self.inner.lock().expect("trace ring poisoned");
        inner.records.iter().cloned().collect()
    }

    /// Records evicted to make room (total since creation).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Forgets every retained record (sequence numbers keep advancing).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("trace ring poisoned")
            .records
            .clear();
    }

    /// The retained records as a JSON array, for `repro` experiment dumps.
    pub fn dump_json(&self) -> String {
        serde_json::to_string(&self.snapshot()).expect("span records serialize")
    }
}

/// An in-flight span; [`Span::finish`] pushes it into the ring.
#[must_use = "a span records nothing until finished"]
pub struct Span<'a> {
    ring: &'a TraceRing,
    name: String,
    start: Instant,
    fields: Vec<(String, String)>,
}

impl Span<'_> {
    /// Attaches a key/value annotation.
    pub fn field(mut self, key: &str, value: impl ToString) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Completes the span and records it.
    pub fn finish(self) {
        self.ring.push(self.name, self.start, self.fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_order_with_fields() {
        let ring = TraceRing::new(8);
        ring.span("first").field("k", 1).finish();
        ring.span("second").finish();
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "first");
        assert_eq!(spans[0].fields, vec![("k".to_string(), "1".to_string())]);
        assert_eq!(spans[1].seq, spans[0].seq + 1);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            ring.span(&format!("s{i}")).finish();
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "s2");
        assert_eq!(ring.dropped(), 2);
        ring.clear();
        assert!(ring.snapshot().is_empty());
        ring.span("after").finish();
        assert_eq!(ring.snapshot()[0].seq, 5);
    }

    #[test]
    fn dump_json_round_trips() {
        let ring = TraceRing::new(4);
        ring.span("phase").field("engine", "bitboard-1").finish();
        let json = ring.dump_json();
        let back: Vec<SpanRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ring.snapshot());
    }
}
