//! Prometheus text exposition format (version 0.0.4) rendering.
//!
//! Renders a [`RegistrySnapshot`] deterministically: families in name
//! order, series in label order, histograms as cumulative `_bucket` lines
//! with `le` upper bounds plus `_sum`/`_count`. Only buckets up to the
//! highest non-empty one are emitted (a 64-bucket histogram would
//! otherwise produce 64 lines of zeros per series).

use crate::metrics::{FamilySnapshot, MetricValue, RegistrySnapshot, SeriesSnapshot};
use std::fmt::Write;

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline become `\\`, `\"`, and `\n`.
pub fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape_label_value`]. Returns `None` if `escaped` is not a
/// valid escaping (a dangling backslash or an unknown escape), which a
/// well-formed rendering never produces.
pub fn unescape_label_value(escaped: &str) -> Option<String> {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            '"' => out.push('"'),
            'n' => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

/// Escapes `# HELP` text: backslash and newline become `\\` and `\n`.
pub fn escape_help(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders `{k="v",...}` (empty string when there are no labels), with an
/// optional extra pre-escaped pair appended (used for histogram `le`).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn render_series(out: &mut String, family: &FamilySnapshot, series: &SeriesSnapshot) {
    let name = &family.name;
    match &series.value {
        MetricValue::Counter(v) => {
            let _ = writeln!(out, "{name}{} {v}", label_block(&series.labels, None));
        }
        MetricValue::Gauge(v) => {
            let _ = writeln!(out, "{name}{} {v}", label_block(&series.labels, None));
        }
        MetricValue::Histogram(h) => {
            let top = h.buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().take(top).enumerate() {
                cumulative += n;
                // Bucket `i` holds values in [2^i, 2^(i+1)), all of which
                // are <= 2^(i+1) - 1 < 2^(i+1); the bound is exact for the
                // integer observations this workspace records.
                let le = format!("{}", 1u128 << (i + 1));
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    label_block(&series.labels, Some(("le", &le)))
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {}",
                label_block(&series.labels, Some(("le", "+Inf"))),
                h.count
            );
            let _ = writeln!(
                out,
                "{name}_sum{} {}",
                label_block(&series.labels, None),
                h.sum
            );
            let _ = writeln!(
                out,
                "{name}_count{} {}",
                label_block(&series.labels, None),
                h.count
            );
        }
    }
}

/// Renders a whole snapshot in the text exposition format.
pub fn render(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for family in &snapshot.families {
        let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
        let _ = writeln!(
            out,
            "# TYPE {} {}",
            family.name,
            family.kind.prometheus_type()
        );
        for series in &family.series {
            render_series(&mut out, family, series);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let r = Registry::new();
        r.counter("req_total", "requests", &[("ep", "route")])
            .add(9);
        r.gauge("depth", "queue depth", &[]).set(3);
        let h = r.histogram("lat", "latency", &[]);
        h.record(1); // bucket 0 -> le="2"
        h.record(3); // bucket 1 -> le="4"
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE req_total counter"), "{text}");
        assert!(text.contains("req_total{ep=\"route\"} 9"), "{text}");
        assert!(text.contains("depth 3"), "{text}");
        assert!(text.contains("lat_bucket{le=\"2\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"4\"} 2"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_sum 4"), "{text}");
        assert!(text.contains("lat_count 2"), "{text}");
    }

    #[test]
    fn escaping_round_trips_the_troublesome_characters() {
        for raw in ["plain", "a\"b", "back\\slash", "line\nbreak", "\\n", ""] {
            let escaped = escape_label_value(raw);
            assert!(!escaped.contains('\n'), "{escaped:?} leaks a newline");
            assert_eq!(unescape_label_value(&escaped).as_deref(), Some(raw));
        }
    }

    #[test]
    fn invalid_escapes_are_rejected() {
        assert_eq!(unescape_label_value("dangling\\"), None);
        assert_eq!(unescape_label_value("bad\\q"), None);
    }
}
