//! Inclusive axis-aligned rectangles — the classical faulty-block shape.

use ocp_mesh::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An inclusive axis-aligned rectangle of grid cells.
///
/// `min` and `max` are both *inside* the rectangle; a single cell is the
/// rectangle with `min == max`. Rectangles are the shape of faulty blocks:
/// the paper (Section 3) notes that connected unsafe nodes always form
/// disjoint rectangles.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Smallest contained coordinate (south-west corner).
    pub min: Coord,
    /// Largest contained coordinate (north-east corner).
    pub max: Coord,
}

impl Rect {
    /// Rectangle spanning the two corners (in any order).
    pub fn new(a: Coord, b: Coord) -> Self {
        Self {
            min: Coord::new(a.x.min(b.x), a.y.min(b.y)),
            max: Coord::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The single-cell rectangle `{c}`.
    pub fn cell(c: Coord) -> Self {
        Self { min: c, max: c }
    }

    /// Smallest rectangle containing every coordinate of `iter` (the
    /// bounding box). Returns `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Coord>>(iter: I) -> Option<Self> {
        let mut it = iter.into_iter();
        let first = it.next()?;
        let mut r = Rect::cell(first);
        for c in it {
            r.min.x = r.min.x.min(c.x);
            r.min.y = r.min.y.min(c.y);
            r.max.x = r.max.x.max(c.x);
            r.max.y = r.max.y.max(c.y);
        }
        Some(r)
    }

    /// Number of columns.
    #[inline]
    pub fn width(self) -> u32 {
        (self.max.x - self.min.x) as u32 + 1
    }

    /// Number of rows.
    #[inline]
    pub fn height(self) -> u32 {
        (self.max.y - self.min.y) as u32 + 1
    }

    /// Number of cells.
    #[inline]
    pub fn area(self) -> usize {
        self.width() as usize * self.height() as usize
    }

    /// Diameter `d(B)` of a block: the largest Manhattan distance between
    /// two of its cells, `(width - 1) + (height - 1)`. The paper bounds both
    /// phases of the protocol by `max d(B)` rounds.
    #[inline]
    pub fn diameter(self) -> u32 {
        (self.width() - 1) + (self.height() - 1)
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, c: Coord) -> bool {
        c.x >= self.min.x && c.x <= self.max.x && c.y >= self.min.y && c.y <= self.max.y
    }

    /// True if the rectangles share at least one cell.
    pub fn intersects(self, other: Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Minimum Manhattan distance between a cell of `self` and a cell of
    /// `other` — the block distance `d(A, B)` of Section 3 (0 if they
    /// intersect). Under Definition 2a, distinct faulty blocks satisfy
    /// `d(A, B) >= 3`; under Definition 2b, `d(A, B) >= 2`.
    pub fn distance(self, other: Rect) -> u32 {
        let dx = gap(self.min.x, self.max.x, other.min.x, other.max.x);
        let dy = gap(self.min.y, self.max.y, other.min.y, other.max.y);
        dx + dy
    }

    /// Iterates every cell, row-major.
    pub fn cells(self) -> impl Iterator<Item = Coord> {
        let (x0, x1, y0, y1) = (self.min.x, self.max.x, self.min.y, self.max.y);
        (y0..=y1).flat_map(move |y| (x0..=x1).map(move |x| Coord::new(x, y)))
    }

    /// Grows the rectangle by `margin` cells on every side.
    pub fn inflate(self, margin: i32) -> Rect {
        Rect {
            min: Coord::new(self.min.x - margin, self.min.y - margin),
            max: Coord::new(self.max.x + margin, self.max.y + margin),
        }
    }
}

/// 1-D gap between inclusive intervals `[a0, a1]` and `[b0, b1]`.
fn gap(a0: i32, a1: i32, b0: i32, b1: i32) -> u32 {
    if b0 > a1 {
        (b0 - a1) as u32
    } else if a0 > b1 {
        (a0 - b1) as u32
    } else {
        0
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rect[{:?}..{:?}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn new_normalizes_corner_order() {
        let r = Rect::new(c(3, 1), c(1, 4));
        assert_eq!(r.min, c(1, 1));
        assert_eq!(r.max, c(3, 4));
        assert_eq!(r.width(), 3);
        assert_eq!(r.height(), 4);
        assert_eq!(r.area(), 12);
    }

    #[test]
    fn single_cell_geometry() {
        let r = Rect::cell(c(5, 5));
        assert_eq!(r.area(), 1);
        assert_eq!(r.diameter(), 0);
        assert!(r.contains(c(5, 5)));
        assert!(!r.contains(c(5, 6)));
    }

    #[test]
    fn diameter_is_max_internal_manhattan_distance() {
        let r = Rect::new(c(0, 0), c(3, 2));
        assert_eq!(r.diameter(), 5);
        let max = r
            .cells()
            .flat_map(|a| r.cells().map(move |b| a.manhattan(b)))
            .max()
            .unwrap();
        assert_eq!(max, r.diameter());
    }

    #[test]
    fn bounding_box() {
        let r = Rect::bounding([c(2, 7), c(5, 1), c(3, 3)]).unwrap();
        assert_eq!(r, Rect::new(c(2, 1), c(5, 7)));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn intersection_detection() {
        let a = Rect::new(c(0, 0), c(2, 2));
        assert!(a.intersects(Rect::new(c(2, 2), c(4, 4))));
        assert!(!a.intersects(Rect::new(c(3, 0), c(4, 2))));
        assert!(a.intersects(a));
    }

    #[test]
    fn distance_matches_pairwise_min() {
        let a = Rect::new(c(0, 0), c(1, 1));
        let b = Rect::new(c(4, 3), c(5, 5));
        let brute = a
            .cells()
            .flat_map(|u| b.cells().map(move |v| u.manhattan(v)))
            .min()
            .unwrap();
        assert_eq!(a.distance(b), brute);
        assert_eq!(b.distance(a), brute);
        assert_eq!(a.distance(a), 0);
        // axis-aligned neighbors at distance 1
        assert_eq!(a.distance(Rect::new(c(2, 0), c(3, 1))), 1);
    }

    #[test]
    fn cells_enumeration_row_major() {
        let r = Rect::new(c(1, 1), c(2, 2));
        let got: Vec<_> = r.cells().collect();
        assert_eq!(got, vec![c(1, 1), c(2, 1), c(1, 2), c(2, 2)]);
        assert_eq!(got.len(), r.area());
    }

    #[test]
    fn inflate_adds_margin() {
        let r = Rect::cell(c(3, 3)).inflate(1);
        assert_eq!(r, Rect::new(c(2, 2), c(4, 4)));
        assert_eq!(r.area(), 9);
    }
}
