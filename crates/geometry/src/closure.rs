//! Orthogonal convex closure — the minimality oracle for Theorem 2.

use crate::{convex::is_orthogonally_convex, Region};
use ocp_mesh::Coord;

/// The smallest orthogonally convex superset of `region`.
///
/// Computed as the fixpoint of alternating *row fill* (add every cell between
/// the leftmost and rightmost occupied cell of each row) and *column fill*.
/// Each fill step only adds cells forced by Definition 1, so the fixpoint is
/// contained in every orthogonally convex superset — i.e. it is *the* minimum
/// one (the family of orthogonally convex supersets is closed under
/// intersection).
///
/// Theorem 2 of the paper states that every disabled region equals the
/// closure of the faults it covers; `ocp-core`'s verifier checks exactly
/// `dr == orthogonal_convex_closure(faults(dr))`.
///
/// ```
/// use ocp_geometry::{orthogonal_convex_closure, Region, Coord};
///
/// // Two faults on the same row: the cell between them is forced in.
/// let faults = Region::from_cells([Coord::new(0, 0), Coord::new(2, 0)]);
/// let polygon = orthogonal_convex_closure(&faults);
/// assert_eq!(polygon.len(), 3);
/// assert!(polygon.contains(Coord::new(1, 0)));
/// ```
pub fn orthogonal_convex_closure(region: &Region) -> Region {
    let spans = closure_spans(region);
    let mut cells = Vec::with_capacity(spans.len());
    for &(y, lo, hi) in &spans.rows {
        for x in lo..=hi {
            cells.push(Coord::new(x, y));
        }
    }
    let closure = Region::from_cells(cells);
    debug_assert!(is_orthogonally_convex(&closure));
    closure
}

/// The orthogonal convex closure as one inclusive x-interval per occupied
/// row — the compact form of a region that is both row- and
/// column-contiguous (which the closure fixpoint always is).
///
/// This is the publish-path representation: [`closure_spans`] computes it
/// with flat per-row/per-column interval arrays (no per-cell set inserts),
/// and [`ClosureSpans::matches`] compares it against a candidate region
/// without materializing the closure's cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClosureSpans {
    /// `(y, x_min, x_max)` per occupied row, ascending in `y`.
    pub rows: Vec<(i32, i32, i32)>,
}

impl ClosureSpans {
    /// Number of cells in the closure.
    pub fn len(&self) -> usize {
        self.rows
            .iter()
            .map(|&(_, lo, hi)| (hi - lo + 1) as usize)
            .sum()
    }

    /// True when the closure is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True iff `region` is exactly this closure (Theorem 2's
    /// `dr == closure(faults(dr))` test, without building the closure).
    pub fn matches(&self, region: &Region) -> bool {
        if region.len() != self.len() {
            return false;
        }
        let rows = region.rows();
        if rows.len() != self.rows.len() {
            return false;
        }
        rows.iter()
            .zip(&self.rows)
            .all(|((&y, xs), &(sy, lo, hi))| {
                // Cell count already matched globally, so a full-span row
                // with the right endpoints is necessarily gap-free too —
                // but check contiguity anyway so a gapped row cannot trade
                // cells with another row and still pass.
                y == sy
                    && xs[0] == lo
                    && *xs.last().expect("non-empty row") == hi
                    && xs.len() == (hi - lo + 1) as usize
            })
    }
}

/// Computes the orthogonal convex closure of `region` as row spans.
///
/// Same fixpoint as [`orthogonal_convex_closure`] — alternating row fill
/// and column fill — but on interval tables indexed by the bounding box,
/// so each iteration is `O(area)` array arithmetic instead of tree
/// inserts.
pub fn closure_spans(region: &Region) -> ClosureSpans {
    let Some(bbox) = region.bbox() else {
        return ClosureSpans { rows: Vec::new() };
    };
    let (x0, y0) = (bbox.min.x, bbox.min.y);
    let width = (bbox.max.x - x0 + 1) as usize;
    let height = (bbox.max.y - y0 + 1) as usize;
    const EMPTY: (i32, i32) = (i32::MAX, i32::MIN);

    // Row fill of the input: per-row [min x, max x].
    let mut rows: Vec<(i32, i32)> = vec![EMPTY; height];
    for c in region.iter() {
        let r = &mut rows[(c.y - y0) as usize];
        r.0 = r.0.min(c.x);
        r.1 = r.1.max(c.x);
    }

    loop {
        // Column fill of the row-filled set: col x occupied for y where
        // some row span covers x; its span is [min such y, max such y].
        let mut cols: Vec<(i32, i32)> = vec![EMPTY; width];
        for (i, &(lo, hi)) in rows.iter().enumerate() {
            if lo > hi {
                continue;
            }
            let y = y0 + i as i32;
            for col in &mut cols[(lo - x0) as usize..=(hi - x0) as usize] {
                col.0 = col.0.min(y);
                col.1 = col.1.max(y);
            }
        }
        // Row fill of the column-filled set.
        let mut next: Vec<(i32, i32)> = vec![EMPTY; height];
        for (i, &(lo, hi)) in cols.iter().enumerate() {
            if lo > hi {
                continue;
            }
            let x = x0 + i as i32;
            for row in &mut next[(lo - y0) as usize..=(hi - y0) as usize] {
                row.0 = row.0.min(x);
                row.1 = row.1.max(x);
            }
        }
        if next == rows {
            let rows = rows
                .iter()
                .enumerate()
                .filter(|(_, &(lo, hi))| lo <= hi)
                .map(|(i, &(lo, hi))| (y0 + i as i32, lo, hi))
                .collect();
            return ClosureSpans { rows };
        }
        rows = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shapes, Rect};

    fn region(raw: &[(i32, i32)]) -> Region {
        Region::from_cells(raw.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn closure_of_convex_region_is_identity() {
        for cells in [
            shapes::l_shape(4, 3),
            shapes::t_shape(5, 3),
            shapes::plus_shape(3),
        ] {
            let r = Region::from_cells(cells);
            assert_eq!(orthogonal_convex_closure(&r), r);
        }
        let rect = Region::from_rect(Rect::new(Coord::new(0, 0), Coord::new(3, 3)));
        assert_eq!(orthogonal_convex_closure(&rect), rect);
    }

    #[test]
    fn closure_is_convex_and_contains_input() {
        let r = region(&[(0, 0), (3, 0), (1, 2), (4, 4)]);
        let c = orthogonal_convex_closure(&r);
        assert!(is_orthogonally_convex(&c));
        assert!(c.is_superset(&r));
    }

    #[test]
    fn closure_fills_u_shape_pocket() {
        let u = Region::from_cells(shapes::u_shape(4, 3));
        let c = orthogonal_convex_closure(&u);
        // Closing a U fills the pocket, yielding the full bounding rectangle.
        assert_eq!(c, Region::from_rect(u.bbox().unwrap()));
    }

    #[test]
    fn closure_of_diagonal_pair_is_itself() {
        // Diagonal cells share no line, so they are already (vacuously)
        // orthogonally convex — the closure does not connect them.
        let r = region(&[(0, 0), (1, 1)]);
        assert_eq!(orthogonal_convex_closure(&r), r);
    }

    #[test]
    fn closure_requires_iteration_to_converge() {
        // Row fill creates a new column gap, which the column fill must then
        // close: a staircase of separated cells.
        let r = region(&[(0, 0), (2, 0), (2, 2), (4, 2)]);
        let c = orthogonal_convex_closure(&r);
        assert!(is_orthogonally_convex(&c));
        // Row 0 filled: (0..=2, 0). Row 2 filled: (2..=4, 2).
        // Column 2 then fills (2, 1).
        assert!(c.contains(Coord::new(1, 0)));
        assert!(c.contains(Coord::new(3, 2)));
        assert!(c.contains(Coord::new(2, 1)));
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn closure_is_idempotent() {
        let r = region(&[(0, 0), (5, 1), (2, 4), (3, 3), (0, 4)]);
        let once = orthogonal_convex_closure(&r);
        let twice = orthogonal_convex_closure(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn closure_is_monotone() {
        let small = region(&[(0, 0), (2, 2)]);
        let mut big = small.clone();
        big.insert(Coord::new(2, 0));
        let cs = orthogonal_convex_closure(&small);
        let cb = orthogonal_convex_closure(&big);
        assert!(cb.is_superset(&cs));
    }

    #[test]
    fn closure_empty() {
        assert_eq!(orthogonal_convex_closure(&Region::new()), Region::new());
    }
}
