//! Orthogonal convex closure — the minimality oracle for Theorem 2.

use crate::{convex::is_orthogonally_convex, Region};
use ocp_mesh::Coord;

/// The smallest orthogonally convex superset of `region`.
///
/// Computed as the fixpoint of alternating *row fill* (add every cell between
/// the leftmost and rightmost occupied cell of each row) and *column fill*.
/// Each fill step only adds cells forced by Definition 1, so the fixpoint is
/// contained in every orthogonally convex superset — i.e. it is *the* minimum
/// one (the family of orthogonally convex supersets is closed under
/// intersection).
///
/// Theorem 2 of the paper states that every disabled region equals the
/// closure of the faults it covers; `ocp-core`'s verifier checks exactly
/// `dr == orthogonal_convex_closure(faults(dr))`.
///
/// ```
/// use ocp_geometry::{orthogonal_convex_closure, Region, Coord};
///
/// // Two faults on the same row: the cell between them is forced in.
/// let faults = Region::from_cells([Coord::new(0, 0), Coord::new(2, 0)]);
/// let polygon = orthogonal_convex_closure(&faults);
/// assert_eq!(polygon.len(), 3);
/// assert!(polygon.contains(Coord::new(1, 0)));
/// ```
pub fn orthogonal_convex_closure(region: &Region) -> Region {
    let mut current: Region = region.clone();
    loop {
        let mut next = Region::new();
        let mut changed = false;

        // Row fill.
        for (y, xs) in current.rows() {
            let (lo, hi) = (xs[0], *xs.last().expect("non-empty row"));
            if (hi - lo + 1) as usize != xs.len() {
                changed = true;
            }
            for x in lo..=hi {
                next.insert(Coord::new(x, y));
            }
        }

        // Column fill on the row-filled set.
        let mut filled = Region::new();
        for (x, ys) in next.cols() {
            let (lo, hi) = (ys[0], *ys.last().expect("non-empty column"));
            if (hi - lo + 1) as usize != ys.len() {
                changed = true;
            }
            for y in lo..=hi {
                filled.insert(Coord::new(x, y));
            }
        }

        if !changed {
            debug_assert!(is_orthogonally_convex(&filled));
            return filled;
        }
        current = filled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shapes, Rect};

    fn region(raw: &[(i32, i32)]) -> Region {
        Region::from_cells(raw.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn closure_of_convex_region_is_identity() {
        for cells in [
            shapes::l_shape(4, 3),
            shapes::t_shape(5, 3),
            shapes::plus_shape(3),
        ] {
            let r = Region::from_cells(cells);
            assert_eq!(orthogonal_convex_closure(&r), r);
        }
        let rect = Region::from_rect(Rect::new(Coord::new(0, 0), Coord::new(3, 3)));
        assert_eq!(orthogonal_convex_closure(&rect), rect);
    }

    #[test]
    fn closure_is_convex_and_contains_input() {
        let r = region(&[(0, 0), (3, 0), (1, 2), (4, 4)]);
        let c = orthogonal_convex_closure(&r);
        assert!(is_orthogonally_convex(&c));
        assert!(c.is_superset(&r));
    }

    #[test]
    fn closure_fills_u_shape_pocket() {
        let u = Region::from_cells(shapes::u_shape(4, 3));
        let c = orthogonal_convex_closure(&u);
        // Closing a U fills the pocket, yielding the full bounding rectangle.
        assert_eq!(c, Region::from_rect(u.bbox().unwrap()));
    }

    #[test]
    fn closure_of_diagonal_pair_is_itself() {
        // Diagonal cells share no line, so they are already (vacuously)
        // orthogonally convex — the closure does not connect them.
        let r = region(&[(0, 0), (1, 1)]);
        assert_eq!(orthogonal_convex_closure(&r), r);
    }

    #[test]
    fn closure_requires_iteration_to_converge() {
        // Row fill creates a new column gap, which the column fill must then
        // close: a staircase of separated cells.
        let r = region(&[(0, 0), (2, 0), (2, 2), (4, 2)]);
        let c = orthogonal_convex_closure(&r);
        assert!(is_orthogonally_convex(&c));
        // Row 0 filled: (0..=2, 0). Row 2 filled: (2..=4, 2).
        // Column 2 then fills (2, 1).
        assert!(c.contains(Coord::new(1, 0)));
        assert!(c.contains(Coord::new(3, 2)));
        assert!(c.contains(Coord::new(2, 1)));
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn closure_is_idempotent() {
        let r = region(&[(0, 0), (5, 1), (2, 4), (3, 3), (0, 4)]);
        let once = orthogonal_convex_closure(&r);
        let twice = orthogonal_convex_closure(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn closure_is_monotone() {
        let small = region(&[(0, 0), (2, 2)]);
        let mut big = small.clone();
        big.insert(Coord::new(2, 0));
        let cs = orthogonal_convex_closure(&small);
        let cb = orthogonal_convex_closure(&big);
        assert!(cb.is_superset(&cs));
    }

    #[test]
    fn closure_empty() {
        assert_eq!(orthogonal_convex_closure(&Region::new()), Region::new());
    }
}
