//! Orthogonal convexity (Definition 1).

use crate::Region;

/// Tests Definition 1: for any horizontal or vertical line, if two cells on
/// the line are in the region, every cell between them is too.
///
/// Equivalently: the occupied cells of every row form one contiguous run of
/// x-coordinates, and of every column one contiguous run of y-coordinates.
/// Note the definition does *not* require the region to be connected — two
/// cells that share no row or column (e.g. a diagonal pair) vacuously
/// satisfy it.
pub fn is_orthogonally_convex(region: &Region) -> bool {
    convexity_defect(region) == 0
}

/// Number of cells that would have to be added to make every row and column
/// run contiguous. Zero iff the region is orthogonally convex; useful as a
/// graded "how far from convex" measure in tests and diagnostics.
pub fn convexity_defect(region: &Region) -> usize {
    let mut missing = 0;
    for xs in region.rows().values() {
        missing += span_gap(xs);
    }
    for ys in region.cols().values() {
        missing += span_gap(ys);
    }
    missing
}

/// Number of integers missing from the inclusive span of a sorted list.
fn span_gap(sorted: &[i32]) -> usize {
    match (sorted.first(), sorted.last()) {
        (Some(&lo), Some(&hi)) => (hi - lo + 1) as usize - sorted.len(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;
    use crate::Rect;
    use ocp_mesh::Coord;

    fn region(raw: &[(i32, i32)]) -> Region {
        Region::from_cells(raw.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn rectangles_are_orthogonally_convex() {
        let r = Region::from_rect(Rect::new(Coord::new(0, 0), Coord::new(4, 2)));
        assert!(is_orthogonally_convex(&r));
    }

    #[test]
    fn empty_and_singletons_are_convex() {
        assert!(is_orthogonally_convex(&Region::new()));
        assert!(is_orthogonally_convex(&region(&[(7, 7)])));
    }

    #[test]
    fn paper_shape_classification() {
        // Section 2: "T-shape, L-shape, and +-shape fault regions are
        // orthogonal convex polygons, whereas U-shape and H-shape fault
        // regions are non-orthogonal convex polygons."
        assert!(is_orthogonally_convex(&Region::from_cells(
            shapes::l_shape(4, 3)
        )));
        assert!(is_orthogonally_convex(&Region::from_cells(
            shapes::t_shape(5, 3)
        )));
        assert!(is_orthogonally_convex(&Region::from_cells(
            shapes::plus_shape(3)
        )));
        assert!(!is_orthogonally_convex(&Region::from_cells(
            shapes::u_shape(4, 3)
        )));
        assert!(!is_orthogonally_convex(&Region::from_cells(
            shapes::h_shape(4, 3)
        )));
    }

    #[test]
    fn row_gap_detected() {
        let r = region(&[(0, 0), (2, 0)]);
        assert!(!is_orthogonally_convex(&r));
        assert_eq!(convexity_defect(&r), 1);
    }

    #[test]
    fn column_gap_detected() {
        let r = region(&[(0, 0), (0, 3)]);
        assert_eq!(convexity_defect(&r), 2);
    }

    #[test]
    fn diagonal_pair_is_vacuously_convex() {
        // No two cells share a row or column, so Definition 1 holds even
        // though the region is disconnected.
        let r = region(&[(0, 0), (1, 1)]);
        assert!(is_orthogonally_convex(&r));
        assert!(!r.is_connected());
    }

    #[test]
    fn staircase_is_convex() {
        let r = region(&[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]);
        assert!(is_orthogonally_convex(&r));
    }

    #[test]
    fn defect_counts_all_missing_cells() {
        // U-shape: rows fine except the top row split in two.
        let r = region(&[(0, 0), (1, 0), (2, 0), (0, 1), (2, 1)]);
        assert_eq!(convexity_defect(&r), 1);
    }
}
