//! Boundary cells and Definition 4 corner nodes.

use crate::Region;
use ocp_mesh::{Coord, Dimension, Direction, DIRECTIONS};

/// Cells of the region with at least one axis-neighbor outside the region.
pub fn boundary_cells(region: &Region) -> Vec<Coord> {
    region
        .iter()
        .filter(|&c| c.raw_neighbors().iter().any(|n| !region.contains(*n)))
        .collect()
}

/// Definition 4: a **corner node** of a region is a node that has, *along
/// each dimension*, at least one neighbor outside the region.
///
/// Lemma 1 of the paper: in a disabled region, every corner node is faulty
/// (otherwise the enabled/disabled rule would have enabled it).
pub fn is_corner(region: &Region, c: Coord) -> bool {
    if !region.contains(c) {
        return false;
    }
    let mut outside = [false, false];
    for dir in DIRECTIONS {
        if !region.contains(c.step(dir)) {
            let dim = match dir.dimension() {
                Dimension::X => 0,
                Dimension::Y => 1,
            };
            outside[dim] = true;
        }
    }
    outside[0] && outside[1]
}

/// All corner nodes (Definition 4) of the region.
///
/// Equivalent to filtering every cell through [`is_corner`], but runs as a
/// merge-scan over the sorted row table — one pass over each row plus its
/// two neighbor rows — instead of four set probes per cell.
pub fn corner_nodes(region: &Region) -> Vec<Coord> {
    let rows = region.rows();
    let mut out = Vec::new();
    for (&y, xs) in rows.iter() {
        let above = rows.get(&(y + 1)).map(Vec::as_slice).unwrap_or(&[]);
        let below = rows.get(&(y - 1)).map(Vec::as_slice).unwrap_or(&[]);
        let (mut ai, mut bi) = (0usize, 0usize);
        for (i, &x) in xs.iter().enumerate() {
            // x-dimension exposure: a missing left or right neighbor shows
            // up as a gap between consecutive sorted entries of this row.
            let x_exposed =
                (i == 0 || xs[i - 1] != x - 1) || (i + 1 == xs.len() || xs[i + 1] != x + 1);
            // Advance the neighbor-row cursors even for interior cells so
            // they stay O(1) amortized across the row.
            while ai < above.len() && above[ai] < x {
                ai += 1;
            }
            while bi < below.len() && below[bi] < x {
                bi += 1;
            }
            if !x_exposed {
                continue;
            }
            let up_inside = ai < above.len() && above[ai] == x;
            let down_inside = bi < below.len() && below[bi] == x;
            if !up_inside || !down_inside {
                out.push(Coord::new(x, y));
            }
        }
    }
    // The sweep emits (y, x) order; callers expect Coord order (x, y).
    out.sort_unstable();
    out
}

/// Cells *outside* the region that touch it (axis-adjacency): the immediate
/// surrounding halo. For fault regions this is where routing's fault rings
/// live (with diagonal contact handled separately by `ocp-routing`).
pub fn halo(region: &Region) -> Vec<Coord> {
    let mut out: Vec<Coord> = region
        .iter()
        .flat_map(|c| c.raw_neighbors())
        .filter(|n| !region.contains(*n))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// One step of the quadrant argument of Lemma 2: among region cells in the
/// quadrant anchored at `origin` and pointing in directions `(sx, sy)`
/// (each `+1` or `-1`), finds the cell that is extremal first in `y`, then in
/// `x` — the paper's `(x_max, y_max)` construction, which is always a corner
/// node of the region.
pub fn quadrant_extremal(region: &Region, origin: Coord, sx: i32, sy: i32) -> Option<Coord> {
    debug_assert!(sx == 1 || sx == -1);
    debug_assert!(sy == 1 || sy == -1);
    let in_quadrant = |c: Coord| (c.x - origin.x) * sx >= 0 && (c.y - origin.y) * sy >= 0;
    let cells: Vec<Coord> = region.iter().filter(|&c| in_quadrant(c)).collect();
    let best_y = cells.iter().map(|c| c.y * sy).max()?;
    cells
        .into_iter()
        .filter(|c| c.y * sy == best_y)
        .max_by_key(|c| c.x * sx)
}

/// Directions pointing out of the region at `c` (empty for interior cells).
pub fn exposed_directions(region: &Region, c: Coord) -> Vec<Direction> {
    DIRECTIONS
        .into_iter()
        .filter(|&d| !region.contains(c.step(d)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn rect_region(a: (i32, i32), b: (i32, i32)) -> Region {
        Region::from_rect(Rect::new(c(a.0, a.1), c(b.0, b.1)))
    }

    #[test]
    fn rectangle_corners_are_exactly_four() {
        let r = rect_region((0, 0), (3, 2));
        let corners = corner_nodes(&r);
        // Sorted by (x, y): coordinates order lexicographically on x first.
        assert_eq!(corners, vec![c(0, 0), c(0, 2), c(3, 0), c(3, 2)]);
    }

    #[test]
    fn single_cell_is_its_own_corner() {
        let r = Region::from_cells([c(5, 5)]);
        assert_eq!(corner_nodes(&r), vec![c(5, 5)]);
        assert_eq!(boundary_cells(&r), vec![c(5, 5)]);
    }

    #[test]
    fn interior_cells_are_not_boundary() {
        let r = rect_region((0, 0), (4, 4));
        let b = boundary_cells(&r);
        assert!(!b.contains(&c(2, 2)));
        assert_eq!(b.len(), 16); // perimeter of 5x5
    }

    #[test]
    fn l_shape_corners() {
        // L: vertical arm x=0 y=0..2, horizontal arm y=0 x=0..2.
        let r = Region::from_cells([c(0, 0), c(0, 1), c(0, 2), c(1, 0), c(2, 0)]);
        let corners = corner_nodes(&r);
        // Tips and outer corner are corners; the inner elbow (0,0) has all
        // its outside exposure... check explicitly:
        assert!(corners.contains(&c(0, 2))); // top tip
        assert!(corners.contains(&c(2, 0))); // right tip
                                             // (0,0): west outside (x-dim), south outside (y-dim) -> corner.
        assert!(corners.contains(&c(0, 0)));
        // (1,0): west/east neighbors inside, so no x-dim exposure.
        assert!(!corners.contains(&c(1, 0)));
        // (0,1): north/south inside, no y-dim exposure.
        assert!(!corners.contains(&c(0, 1)));
    }

    #[test]
    fn is_corner_false_for_outside_cells() {
        let r = rect_region((0, 0), (1, 1));
        assert!(!is_corner(&r, c(5, 5)));
    }

    #[test]
    fn halo_surrounds_region() {
        let r = Region::from_cells([c(1, 1)]);
        assert_eq!(halo(&r), vec![c(0, 1), c(1, 0), c(1, 2), c(2, 1)]);
    }

    #[test]
    fn quadrant_extremal_is_a_corner() {
        // Lemma 2's constructed extremal node must be a corner node.
        let r = Region::from_cells([c(0, 0), c(0, 1), c(0, 2), c(1, 0), c(2, 0), c(1, 1)]);
        for &cell in &[c(0, 0), c(1, 1)] {
            for (sx, sy) in [(1, 1), (1, -1), (-1, 1), (-1, -1)] {
                if let Some(e) = quadrant_extremal(&r, cell, sx, sy) {
                    assert!(is_corner(&r, e), "extremal {e:?} not a corner");
                }
            }
        }
    }

    #[test]
    fn quadrant_extremal_empty_quadrant() {
        let r = Region::from_cells([c(0, 0)]);
        assert_eq!(quadrant_extremal(&r, c(5, 5), 1, 1), None);
        assert_eq!(quadrant_extremal(&r, c(0, 0), 1, 1), Some(c(0, 0)));
    }

    #[test]
    fn exposed_directions_of_rect_edge_cell() {
        let r = rect_region((0, 0), (2, 2));
        assert_eq!(exposed_directions(&r, c(1, 0)), vec![Direction::South]);
        assert_eq!(
            exposed_directions(&r, c(0, 0)),
            vec![Direction::West, Direction::South]
        );
        assert!(exposed_directions(&r, c(1, 1)).is_empty());
    }
}
