//! # ocp-geometry
//!
//! Rectilinear geometry substrate for the orthogonal-convex-polygon
//! fault-model reproduction.
//!
//! The paper's central geometric object is the **orthogonal convex region**
//! (Definition 1): a region such that for any horizontal or vertical line,
//! if two nodes on the line are inside the region, every node between them
//! is too. On the integer grid of a 2-D mesh this specializes the classical
//! notion from Preparata & Shamos to axis-parallel lines only — T-, L- and
//! +-shapes qualify; U- and H-shapes do not.
//!
//! Provided here:
//!
//! * [`Rect`] — inclusive axis-aligned rectangles (the classical faulty-block
//!   shape), with the diameter and distance notions of Section 2.
//! * [`Region`] — arbitrary finite cell sets with connectivity, row/column
//!   interval views and membership queries.
//! * [`is_orthogonally_convex`] / [`convexity_defect`] — Definition 1 checks.
//! * [`orthogonal_convex_closure`] — the *smallest* orthogonally convex
//!   superset of a cell set; Theorem 2 says every disabled region equals the
//!   closure of the faults it covers, which makes this function the
//!   verification oracle for minimality.
//! * [`boundary`] — boundary cells, and the paper's Definition 4 **corner
//!   nodes** (a node with at least one outside neighbor in each dimension);
//!   Lemma 1 says corner nodes of a disabled region are always faulty.
//! * [`shapes`] — generators for the named fault shapes of the literature
//!   (L, T, U, H, +) used in tests and the fault atlas example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod closure;
pub mod convex;
pub mod rect;
pub mod region;
pub mod shapes;

pub use boundary::{boundary_cells, corner_nodes, is_corner};
pub use closure::{closure_spans, orthogonal_convex_closure, ClosureSpans};
pub use convex::{convexity_defect, is_orthogonally_convex};
pub use rect::Rect;
pub use region::Region;

/// Convenience re-export: regions are sets of mesh coordinates.
pub use ocp_mesh::Coord;
