//! Arbitrary finite cell sets.

use crate::Rect;
use ocp_mesh::{Coord, Neighborhood, Topology};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

/// A finite set of grid cells.
///
/// This is the working representation for faulty blocks, disabled regions and
/// fault sets. Cells are kept in a sorted set, so iteration order — and
/// therefore everything derived from it — is deterministic.
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Region {
    cells: BTreeSet<Coord>,
}

impl Region {
    /// The empty region.
    pub fn new() -> Self {
        Self::default()
    }

    /// Region over the given cells (duplicates collapse).
    pub fn from_cells<I: IntoIterator<Item = Coord>>(cells: I) -> Self {
        Self {
            cells: cells.into_iter().collect(),
        }
    }

    /// Region of an entire rectangle.
    pub fn from_rect(rect: Rect) -> Self {
        Self::from_cells(rect.cells())
    }

    /// Unwraps a *connected* cell set living on `topology` into planar
    /// coordinates, so that planar geometry (convexity, closure) applies.
    ///
    /// On a mesh this is the identity. On a torus, a connected component may
    /// straddle the wraparound seam; this walks the component from its first
    /// cell, assigning each cell the planar offset of the path that reached
    /// it. Returns `None` if the component wraps all the way around the
    /// torus (no consistent planar embedding exists — such a region can
    /// never be a finite orthogonal convex polygon).
    pub fn unwrapped(topology: Topology, cells: &[Coord]) -> Option<Self> {
        Self::unwrap_mapping(topology, cells).map(|mapping| Self::from_cells(mapping.into_values()))
    }

    /// Like [`Region::unwrapped`], but returns the full machine-coordinate →
    /// planar-coordinate mapping, so callers can translate *subsets* (e.g.
    /// the faults of a region) consistently with the embedding.
    pub fn unwrap_mapping(topology: Topology, cells: &[Coord]) -> Option<HashMap<Coord, Coord>> {
        let member: BTreeSet<Coord> = cells.iter().copied().collect();
        let Some(&start) = member.first() else {
            return Some(HashMap::new());
        };
        let mut planar: HashMap<Coord, Coord> = HashMap::with_capacity(member.len());
        planar.insert(start, start);
        let mut queue = VecDeque::from([start]);
        while let Some(c) = queue.pop_front() {
            let base = planar[&c];
            for (dir, n) in Neighborhood::of(topology, c).iter() {
                let Some(nc) = n.coord() else { continue };
                if !member.contains(&nc) {
                    continue;
                }
                let candidate = base.step(dir);
                match planar.get(&nc) {
                    Some(&existing) if existing != candidate => return None, // wraps around
                    Some(_) => {}
                    None => {
                        planar.insert(nc, candidate);
                        queue.push_back(nc);
                    }
                }
            }
        }
        if planar.len() != member.len() {
            // `cells` was not connected; unreached cells have no defined offset.
            return None;
        }
        Some(planar)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the region has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, c: Coord) -> bool {
        self.cells.contains(&c)
    }

    /// Inserts a cell; returns true if it was new.
    pub fn insert(&mut self, c: Coord) -> bool {
        self.cells.insert(c)
    }

    /// Removes a cell; returns true if it was present.
    pub fn remove(&mut self, c: Coord) -> bool {
        self.cells.remove(&c)
    }

    /// Iterates cells in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        self.cells.iter().copied()
    }

    /// True if every cell of `other` is in `self`.
    pub fn is_superset(&self, other: &Region) -> bool {
        other.cells.is_subset(&self.cells)
    }

    /// Cells of `self` not in `other`.
    pub fn difference(&self, other: &Region) -> Region {
        Region {
            cells: self.cells.difference(&other.cells).copied().collect(),
        }
    }

    /// Bounding box; `None` when empty.
    pub fn bbox(&self) -> Option<Rect> {
        Rect::bounding(self.iter())
    }

    /// True if the cells form one 4-connected component (planar adjacency).
    /// The empty region counts as connected.
    pub fn is_connected(&self) -> bool {
        let Some(&start) = self.cells.first() else {
            return true;
        };
        let mut seen = BTreeSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some(c) = queue.pop_front() {
            for n in c.raw_neighbors() {
                if self.cells.contains(&n) && seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        seen.len() == self.cells.len()
    }

    /// True if the region is exactly a full rectangle.
    pub fn is_rectangle(&self) -> bool {
        match self.bbox() {
            None => true, // vacuously (empty region)
            Some(r) => r.area() == self.len(),
        }
    }

    /// For every occupied row `y`: the sorted x-coordinates present.
    pub fn rows(&self) -> BTreeMap<i32, Vec<i32>> {
        let mut rows: BTreeMap<i32, Vec<i32>> = BTreeMap::new();
        for c in self.iter() {
            rows.entry(c.y).or_default().push(c.x);
        }
        for xs in rows.values_mut() {
            xs.sort_unstable();
        }
        rows
    }

    /// For every occupied column `x`: the sorted y-coordinates present.
    pub fn cols(&self) -> BTreeMap<i32, Vec<i32>> {
        let mut cols: BTreeMap<i32, Vec<i32>> = BTreeMap::new();
        for c in self.iter() {
            cols.entry(c.x).or_default().push(c.y);
        }
        for ys in cols.values_mut() {
            ys.sort_unstable();
        }
        cols
    }

    /// Minimum Manhattan distance between a cell of `self` and one of
    /// `other`; `None` if either is empty. This is the region-distance
    /// `d(A, B)` of Section 3.
    pub fn distance(&self, other: &Region) -> Option<u32> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        let mut best = u32::MAX;
        for a in self.iter() {
            for b in other.iter() {
                best = best.min(a.manhattan(b));
                if best == 0 {
                    return Some(0);
                }
            }
        }
        Some(best)
    }
}

impl FromIterator<Coord> for Region {
    fn from_iter<I: IntoIterator<Item = Coord>>(iter: I) -> Self {
        Self::from_cells(iter)
    }
}

impl<'a> IntoIterator for &'a Region {
    type Item = Coord;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, Coord>>;

    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter().copied()
    }
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Region{:?}", self.cells.iter().collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn region(raw: &[(i32, i32)]) -> Region {
        Region::from_cells(raw.iter().map(|&(x, y)| c(x, y)))
    }

    #[test]
    fn basic_set_operations() {
        let mut r = region(&[(0, 0), (1, 0)]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(c(1, 0)));
        assert!(r.insert(c(2, 0)));
        assert!(!r.insert(c(2, 0)));
        assert!(r.remove(c(0, 0)));
        assert!(!r.remove(c(0, 0)));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn connectivity() {
        assert!(Region::new().is_connected());
        assert!(region(&[(0, 0)]).is_connected());
        assert!(region(&[(0, 0), (0, 1), (1, 1)]).is_connected());
        assert!(!region(&[(0, 0), (1, 1)]).is_connected()); // diagonal only
        assert!(!region(&[(0, 0), (2, 0)]).is_connected());
    }

    #[test]
    fn rectangle_detection() {
        assert!(Region::from_rect(Rect::new(c(1, 1), c(3, 2))).is_rectangle());
        let mut r = Region::from_rect(Rect::new(c(0, 0), c(2, 2)));
        r.remove(c(1, 1));
        assert!(!r.is_rectangle());
        assert!(Region::new().is_rectangle());
        assert!(region(&[(4, 4)]).is_rectangle());
    }

    #[test]
    fn rows_and_cols_views() {
        let r = region(&[(0, 0), (2, 0), (1, 1)]);
        let rows = r.rows();
        assert_eq!(rows[&0], vec![0, 2]);
        assert_eq!(rows[&1], vec![1]);
        let cols = r.cols();
        assert_eq!(cols[&0], vec![0]);
        assert_eq!(cols[&1], vec![1]);
        assert_eq!(cols[&2], vec![0]);
    }

    #[test]
    fn region_distance() {
        let a = region(&[(0, 0), (0, 1)]);
        let b = region(&[(3, 0)]);
        assert_eq!(a.distance(&b), Some(3));
        assert_eq!(a.distance(&a), Some(0));
        assert_eq!(a.distance(&Region::new()), None);
    }

    #[test]
    fn superset_and_difference() {
        let big = region(&[(0, 0), (1, 0), (2, 0)]);
        let small = region(&[(1, 0)]);
        assert!(big.is_superset(&small));
        assert!(!small.is_superset(&big));
        assert_eq!(big.difference(&small), region(&[(0, 0), (2, 0)]));
    }

    #[test]
    fn unwrapped_identity_on_mesh() {
        let t = Topology::mesh(6, 6);
        let cells = vec![c(0, 0), c(0, 1), c(1, 1)];
        let r = Region::unwrapped(t, &cells).unwrap();
        assert_eq!(r, region(&[(0, 0), (0, 1), (1, 1)]));
    }

    #[test]
    fn unwrapped_translates_torus_seam_component() {
        // Cells straddling the x seam of a 6-wide torus: (5, 2) and (0, 2).
        let t = Topology::torus(6, 6);
        let r = Region::unwrapped(t, &[c(5, 2), c(0, 2)]).unwrap();
        // Planar embedding keeps them adjacent.
        let cells: Vec<_> = r.iter().collect();
        assert_eq!(cells.len(), 2);
        assert!(cells[0].is_adjacent(cells[1]));
    }

    #[test]
    fn unwrapped_rejects_full_wrap() {
        // A full ring around the torus has no planar embedding.
        let t = Topology::torus(5, 3);
        let ring: Vec<_> = (0..5).map(|x| c(x, 1)).collect();
        assert!(Region::unwrapped(t, &ring).is_none());
    }

    #[test]
    fn unwrapped_rejects_disconnected_input() {
        let t = Topology::mesh(8, 8);
        assert!(Region::unwrapped(t, &[c(0, 0), c(4, 4)]).is_none());
    }

    #[test]
    fn bbox() {
        assert_eq!(Region::new().bbox(), None);
        assert_eq!(
            region(&[(1, 5), (3, 2)]).bbox(),
            Some(Rect::new(c(1, 2), c(3, 5)))
        );
    }
}
