//! Generators for the named fault-region shapes of the fault-tolerant
//! routing literature (Section 1 cites H-, L-, T-, U- and +-shaped fault
//! regions). All shapes are anchored with their bounding box at the origin
//! and can be translated with [`translate`].

use ocp_mesh::Coord;

/// Translates a cell set by `(dx, dy)`.
pub fn translate(cells: impl IntoIterator<Item = Coord>, dx: i32, dy: i32) -> Vec<Coord> {
    cells
        .into_iter()
        .map(|c| Coord::new(c.x + dx, c.y + dy))
        .collect()
}

/// L-shape: a vertical arm of height `arm` on the left column joined to a
/// horizontal arm of width `arm` on the bottom row, both `thick` cells thick.
/// Orthogonally convex.
///
/// # Panics
/// Panics if `arm <= thick` or `thick == 0`.
pub fn l_shape(arm: u32, thick: u32) -> Vec<Coord> {
    assert!(thick > 0 && arm > thick, "need arm > thick > 0");
    let mut cells = Vec::new();
    for y in 0..arm as i32 {
        for x in 0..thick as i32 {
            cells.push(Coord::new(x, y));
        }
    }
    for x in thick as i32..arm as i32 {
        for y in 0..thick as i32 {
            cells.push(Coord::new(x, y));
        }
    }
    cells.sort();
    cells
}

/// T-shape: a horizontal bar of width `width` on top, with a vertical stem
/// of height `stem` descending from its middle, all 1 cell thick scaled by
/// `stem`... more precisely the bar is `stem` rows tall and the stem is
/// centered. Orthogonally convex.
///
/// # Panics
/// Panics if `width < 3` or `stem == 0`.
pub fn t_shape(width: u32, stem: u32) -> Vec<Coord> {
    assert!(width >= 3 && stem > 0, "need width >= 3 and stem > 0");
    let mut cells = Vec::new();
    let top = (stem + stem) as i32 - 1;
    // Bar occupies the top `stem` rows.
    for y in stem as i32..=top {
        for x in 0..width as i32 {
            cells.push(Coord::new(x, y));
        }
    }
    // Stem: middle column(s), bottom `stem` rows.
    let mid = (width / 2) as i32;
    for y in 0..stem as i32 {
        cells.push(Coord::new(mid, y));
    }
    cells.sort();
    cells
}

/// +-shape: a horizontal and a vertical bar of length `2 * arm + 1` crossing
/// at the center. Orthogonally convex.
pub fn plus_shape(arm: u32) -> Vec<Coord> {
    let a = arm as i32;
    let mut cells = Vec::new();
    for d in -a..=a {
        cells.push(Coord::new(a + d, a));
        if d != 0 {
            cells.push(Coord::new(a, a + d));
        }
    }
    cells.sort();
    cells
}

/// U-shape: two vertical arms of height `arm` joined by a bottom bar, with a
/// pocket of width `gap` between the arms. **Not** orthogonally convex: a
/// horizontal line through the arms crosses the pocket.
///
/// # Panics
/// Panics if `arm < 2` or `gap == 0`.
pub fn u_shape(arm: u32, gap: u32) -> Vec<Coord> {
    assert!(arm >= 2 && gap > 0, "need arm >= 2 and gap > 0");
    let right = gap as i32 + 1;
    let mut cells = Vec::new();
    for y in 0..arm as i32 {
        cells.push(Coord::new(0, y));
        cells.push(Coord::new(right, y));
    }
    for x in 1..right {
        cells.push(Coord::new(x, 0));
    }
    cells.sort();
    cells
}

/// H-shape: two vertical arms joined by a middle bar. **Not** orthogonally
/// convex (vertical lines through the crossbar gap).
///
/// # Panics
/// Panics if `arm < 3` or `gap == 0`.
pub fn h_shape(arm: u32, gap: u32) -> Vec<Coord> {
    assert!(arm >= 3 && gap > 0, "need arm >= 3 and gap > 0");
    let right = gap as i32 + 1;
    let mid = (arm / 2) as i32;
    let mut cells = Vec::new();
    for y in 0..arm as i32 {
        cells.push(Coord::new(0, y));
        cells.push(Coord::new(right, y));
    }
    for x in 1..right {
        cells.push(Coord::new(x, mid));
    }
    cells.sort();
    cells
}

/// Solid `w × h` rectangle at the origin.
pub fn rectangle(w: u32, h: u32) -> Vec<Coord> {
    assert!(w > 0 && h > 0);
    let mut cells = Vec::new();
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            cells.push(Coord::new(x, y));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_orthogonally_convex, Region};

    fn as_region(cells: Vec<Coord>) -> Region {
        Region::from_cells(cells)
    }

    #[test]
    fn shapes_are_connected() {
        for cells in [
            l_shape(5, 2),
            t_shape(7, 2),
            plus_shape(3),
            u_shape(4, 2),
            h_shape(5, 2),
            rectangle(4, 3),
        ] {
            assert!(as_region(cells).is_connected());
        }
    }

    #[test]
    fn convexity_classification_matches_paper() {
        assert!(is_orthogonally_convex(&as_region(l_shape(5, 2))));
        assert!(is_orthogonally_convex(&as_region(t_shape(7, 2))));
        assert!(is_orthogonally_convex(&as_region(plus_shape(3))));
        assert!(!is_orthogonally_convex(&as_region(u_shape(4, 2))));
        assert!(!is_orthogonally_convex(&as_region(h_shape(5, 2))));
    }

    #[test]
    fn no_duplicate_cells() {
        for cells in [
            l_shape(5, 2),
            t_shape(7, 3),
            plus_shape(2),
            u_shape(3, 1),
            h_shape(4, 1),
        ] {
            let r = as_region(cells.clone());
            assert_eq!(r.len(), cells.len(), "duplicates in {cells:?}");
        }
    }

    #[test]
    fn translate_shifts_bbox() {
        let cells = translate(plus_shape(1), 10, 20);
        let r = as_region(cells);
        assert_eq!(r.bbox().unwrap().min, Coord::new(10, 20));
    }

    #[test]
    fn plus_shape_size() {
        // arm=2: two bars of 5 crossing, sharing the center.
        assert_eq!(plus_shape(2).len(), 9);
        assert_eq!(plus_shape(0).len(), 1);
    }

    #[test]
    fn u_shape_has_pocket() {
        let r = as_region(u_shape(3, 2));
        // The pocket cells (1..=2, 1..=2) are outside the region.
        assert!(!r.contains(Coord::new(1, 1)));
        assert!(!r.contains(Coord::new(2, 2)));
        assert!(r.contains(Coord::new(0, 2)));
        assert!(r.contains(Coord::new(3, 2)));
    }
}
