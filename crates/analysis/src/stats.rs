//! Summary statistics over repeated trials.

use serde::{Deserialize, Serialize};

/// Mean / spread summary of a sample of trial measurements.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 if fewer than 2 obs).
    pub std_dev: f64,
    /// Smallest observation (0 for an empty sample).
    pub min: f64,
    /// Largest observation (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// ```
    /// use ocp_analysis::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean, 2.0);
    /// assert_eq!((s.min, s.max, s.n), (1.0, 3.0, 3));
    /// ```
    pub fn of(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Self {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n >= 2 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Half-width of the ~95% confidence interval of the mean (normal
    /// approximation, `1.96 * s / sqrt(n)`; 0 for n < 2).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev / (self.n as f64).sqrt()
        }
    }
}

/// Convenience: summarizes an iterator of measurements.
pub fn summarize<I: IntoIterator<Item = f64>>(iter: I) -> Summary {
    let v: Vec<f64> = iter.into_iter().collect();
    Summary::of(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(close(s.mean, 0.0));
        assert!(close(s.ci95_half_width(), 0.0));
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.n, 1);
        assert!(close(s.mean, 42.0));
        assert!(close(s.std_dev, 0.0));
        assert!(close(s.min, 42.0));
        assert!(close(s.max, 42.0));
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!(close(s.mean, 5.0));
        // sample std dev with n-1 = sqrt(32/7)
        assert!(close(s.std_dev, (32.0f64 / 7.0).sqrt()));
        assert!(close(s.min, 2.0));
        assert!(close(s.max, 9.0));
    }

    #[test]
    fn ci_shrinks_with_n() {
        let few = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..100).map(|i| 1.0 + (i % 4) as f64).collect();
        let many = Summary::of(&many);
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn summarize_iterator() {
        let s = summarize((1..=5).map(|i| i as f64));
        assert_eq!(s.n, 5);
        assert!(close(s.mean, 3.0));
    }
}
