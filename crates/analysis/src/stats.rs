//! Summary statistics over repeated trials.

use serde::{Deserialize, Serialize};

/// Mean / spread summary of a sample of trial measurements.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 if fewer than 2 obs).
    pub std_dev: f64,
    /// Smallest observation (0 for an empty sample).
    pub min: f64,
    /// Largest observation (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// ```
    /// use ocp_analysis::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean, 2.0);
    /// assert_eq!((s.min, s.max, s.n), (1.0, 3.0, 3));
    /// ```
    pub fn of(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Self {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n >= 2 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Half-width of the ~95% confidence interval of the mean (normal
    /// approximation, `1.96 * s / sqrt(n)`; 0 for n < 2).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev / (self.n as f64).sqrt()
        }
    }
}

/// Convenience: summarizes an iterator of measurements.
pub fn summarize<I: IntoIterator<Item = f64>>(iter: I) -> Summary {
    let v: Vec<f64> = iter.into_iter().collect();
    Summary::of(&v)
}

/// Tail-focused summary of a latency-like sample: selected percentiles by
/// the nearest-rank method. Used by the `ocp-serve` service metrics and the
/// E14 load experiment, where the mean hides exactly the behavior that
/// matters (tail latency under load).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Number of observations.
    pub n: usize,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest observation (the 100th percentile).
    pub max: f64,
}

impl Percentiles {
    /// Computes nearest-rank percentiles of a sample (all zero when empty).
    ///
    /// ```
    /// use ocp_analysis::Percentiles;
    /// let sample: Vec<f64> = (1..=100).map(f64::from).collect();
    /// let p = Percentiles::of(&sample);
    /// assert_eq!((p.p50, p.p95, p.p99, p.max), (50.0, 95.0, 99.0, 100.0));
    /// assert_eq!(p.n, 100);
    /// ```
    pub fn of(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentiles of NaN-free samples"));
        Self::of_sorted(&sorted)
    }

    /// Like [`Percentiles::of`] but assumes `sorted` is already ascending,
    /// skipping the copy and sort.
    ///
    /// ```
    /// use ocp_analysis::Percentiles;
    /// let p = Percentiles::of_sorted(&[1.0, 2.0, 3.0, 4.0]);
    /// assert_eq!((p.p50, p.max), (2.0, 4.0));
    /// ```
    pub fn of_sorted(sorted: &[f64]) -> Self {
        Self {
            n: sorted.len(),
            p50: nearest_rank(sorted, 50.0),
            p90: nearest_rank(sorted, 90.0),
            p95: nearest_rank(sorted, 95.0),
            p99: nearest_rank(sorted, 99.0),
            max: sorted.last().copied().unwrap_or(0.0),
        }
    }
}

/// Nearest-rank percentile of an ascending sample: the smallest value with
/// at least `p`% of the observations at or below it (0 for an empty
/// sample).
///
/// ```
/// assert_eq!(ocp_analysis::stats::nearest_rank(&[10.0, 20.0, 30.0], 50.0), 20.0);
/// assert_eq!(ocp_analysis::stats::nearest_rank(&[], 99.0), 0.0);
/// ```
pub fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(close(s.mean, 0.0));
        assert!(close(s.ci95_half_width(), 0.0));
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.n, 1);
        assert!(close(s.mean, 42.0));
        assert!(close(s.std_dev, 0.0));
        assert!(close(s.min, 42.0));
        assert!(close(s.max, 42.0));
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!(close(s.mean, 5.0));
        // sample std dev with n-1 = sqrt(32/7)
        assert!(close(s.std_dev, (32.0f64 / 7.0).sqrt()));
        assert!(close(s.min, 2.0));
        assert!(close(s.max, 9.0));
    }

    #[test]
    fn ci_shrinks_with_n() {
        let few = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..100).map(|i| 1.0 + (i % 4) as f64).collect();
        let many = Summary::of(&many);
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn summarize_iterator() {
        let s = summarize((1..=5).map(|i| i as f64));
        assert_eq!(s.n, 5);
        assert!(close(s.mean, 3.0));
    }

    #[test]
    fn percentiles_empty_and_single() {
        let e = Percentiles::of(&[]);
        assert_eq!((e.n, e.p50, e.p99, e.max), (0, 0.0, 0.0, 0.0));
        let s = Percentiles::of(&[7.0]);
        assert_eq!((s.n, s.p50, s.p90, s.p99, s.max), (1, 7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    fn percentiles_are_order_insensitive() {
        let a = Percentiles::of(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        let b = Percentiles::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a, b);
        assert_eq!(a.p50, 3.0);
        assert_eq!(a.max, 5.0);
    }

    #[test]
    fn percentiles_track_the_tail() {
        // 99 fast observations and one slow outlier: p50/p90 stay fast,
        // p99 and max surface the outlier.
        let mut sample = vec![1.0; 99];
        sample.push(1000.0);
        let p = Percentiles::of(&sample);
        assert_eq!(p.p50, 1.0);
        assert_eq!(p.p90, 1.0);
        assert_eq!(p.p99, 1.0);
        assert_eq!(p.max, 1000.0);
        // With two outliers the p99 catches one.
        sample[98] = 1000.0;
        let p = Percentiles::of(&sample);
        assert_eq!(p.p99, 1000.0);
    }

    #[test]
    fn percentiles_round_trip_json() {
        let p = Percentiles::of(&[1.0, 2.0, 3.0]);
        let json = serde_json::to_string(&p).unwrap();
        let back: Percentiles = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
