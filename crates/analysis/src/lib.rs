//! # ocp-analysis
//!
//! Experiment-harness substrate: summary statistics, labeled series (one per
//! figure curve), ASCII tables and CSV/JSON export. Used by `ocp-bench`'s
//! `repro` binary to regenerate the paper's Figure 5 and the derived tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod series;
pub mod stats;
pub mod table;

pub use export::{to_csv, to_json};
pub use series::{Series, SeriesPoint};
pub use stats::{Percentiles, Summary};
pub use table::Table;
