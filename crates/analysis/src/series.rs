//! Labeled series — one per figure curve.

use crate::Summary;
use serde::{Deserialize, Serialize};

/// One x-position of a series with its summarized trials.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// The swept parameter (e.g. the number of faults `f`).
    pub x: f64,
    /// Summary of the measurements collected at this `x`.
    pub summary: Summary,
}

/// A named curve: what one line of a paper figure plots.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label, e.g. `"rounds to form faulty blocks"`.
    pub label: String,
    /// Name of the swept parameter, e.g. `"faults"`.
    pub x_label: String,
    /// Points in sweep order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// New empty series.
    pub fn new(label: impl Into<String>, x_label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            x_label: x_label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point summarizing `samples` at `x`.
    pub fn push(&mut self, x: f64, samples: &[f64]) {
        self.points.push(SeriesPoint {
            x,
            summary: Summary::of(samples),
        });
    }

    /// Mean values in sweep order.
    pub fn means(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.summary.mean).collect()
    }

    /// Largest mean across the sweep; `None` when empty.
    pub fn max_mean(&self) -> Option<f64> {
        self.means().into_iter().reduce(f64::max)
    }

    /// True if means never decrease along the sweep (within `tol`).
    pub fn is_monotone_nondecreasing(&self, tol: f64) -> bool {
        self.means().windows(2).all(|w| w[1] >= w[0] - tol)
    }

    /// True if means never increase along the sweep (within `tol`).
    pub fn is_monotone_nonincreasing(&self, tol: f64) -> bool {
        self.means().windows(2).all(|w| w[1] <= w[0] + tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_means() {
        let mut s = Series::new("rounds", "faults");
        s.push(10.0, &[1.0, 2.0, 3.0]);
        s.push(20.0, &[4.0]);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.means(), vec![2.0, 4.0]);
        assert_eq!(s.max_mean(), Some(4.0));
    }

    #[test]
    fn monotonicity_checks() {
        let mut s = Series::new("up", "x");
        for (x, v) in [(1.0, 1.0), (2.0, 2.0), (3.0, 2.5)] {
            s.push(x, &[v]);
        }
        assert!(s.is_monotone_nondecreasing(0.0));
        assert!(!s.is_monotone_nonincreasing(0.0));
        // tolerance absorbs small dips
        let mut dip = Series::new("dip", "x");
        for (x, v) in [(1.0, 2.0), (2.0, 1.95)] {
            dip.push(x, &[v]);
        }
        assert!(dip.is_monotone_nondecreasing(0.1));
        assert!(!dip.is_monotone_nondecreasing(0.01));
    }

    #[test]
    fn empty_series() {
        let s = Series::new("e", "x");
        assert_eq!(s.max_mean(), None);
        assert!(s.is_monotone_nondecreasing(0.0));
    }
}
