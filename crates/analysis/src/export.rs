//! CSV / JSON export of series for offline plotting.

use crate::Series;

/// Renders a series as CSV with header
/// `x,label,n,mean,std_dev,min,max,ci95`.
pub fn to_csv(series: &Series) -> String {
    let mut out = String::from("x,label,n,mean,std_dev,min,max,ci95\n");
    for p in &series.points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            p.x,
            csv_escape(&series.label),
            p.summary.n,
            p.summary.mean,
            p.summary.std_dev,
            p.summary.min,
            p.summary.max,
            p.summary.ci95_half_width(),
        ));
    }
    out
}

/// Renders any serializable experiment record as pretty JSON.
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment records serialize")
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_header_and_rows() {
        let mut s = Series::new("rounds", "faults");
        s.push(10.0, &[1.0, 3.0]);
        let csv = to_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("x,label"));
        assert!(lines[1].starts_with("10,rounds,2,2,"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut s = Series::new("a,b", "x");
        s.push(1.0, &[1.0]);
        assert!(to_csv(&s).contains("\"a,b\""));
    }

    #[test]
    fn json_roundtrip() {
        let mut s = Series::new("r", "x");
        s.push(5.0, &[2.0]);
        let json = to_json(&s);
        let back: Series = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
