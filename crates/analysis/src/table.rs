//! Plain-text table rendering for harness output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row should have `headers.len()` entries).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given headers and no rows.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header count.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header count {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with a fixed number of decimals (helper for table cells).
pub fn fmt_f64(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["f", "rounds"]);
        t.push_row(["10", "2.1"]);
        t.push_row(["100", "4.25"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('f'));
        assert!(lines[0].contains("rounds"));
        assert!(lines[2].trim_start().starts_with("10"));
        assert!(lines[3].trim_start().starts_with("100"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(2.0, 0), "2");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.push_row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
