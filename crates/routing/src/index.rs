//! Per-snapshot query indexes for the fault-tolerant router.
//!
//! [`crate::router::FaultTolerantRouter::new`] builds these tables once per
//! labeled machine view (in `ocp-serve`, once per epoch snapshot) so the
//! per-query traversal does work proportional to the number of *fault
//! encounters*, not to path length:
//!
//! * [`SegmentIndex`] — per-row and per-column sorted tables of disabled
//!   coordinates. An unobstructed XY segment is resolved with one binary
//!   search (torus-seam aware) instead of one enabled-map probe per hop.
//! * [`RingIndex`] — per-ring `coord → cycle position` table (hash-free
//!   O(log n) `position_of`) plus an exact exit-candidate index: the only
//!   cycle positions where the router's exit objective can attain a
//!   minimum are corners of the ring walk, cells whose region-blocked
//!   status changes, and cells aligned with (or torus-antipodal to) the
//!   destination's row/column. `best_exit` evaluates just those
//!   candidates — with precomputed feasibility masks — instead of the
//!   whole perimeter.
//! * [`RouteScratch`] — reusable traversal state (livelock guard, exit
//!   memo) so `route_len` performs no heap allocation after warm-up.
//!
//! Correctness contract: the indexed traversal in `router.rs` must be
//! *byte-identical* to the reference per-hop traversal (same paths, same
//! hop counts, same errors); `crates/routing/tests/equivalence.rs` enforces
//! this property on random mesh and torus fault maps.

use crate::fault_ring::{FaultRing, RingShape};
use crate::incremental::{BuildBreakdown, Fnv};
use crate::path::EnabledMap;
use ocp_mesh::{Coord, Direction, Grid, Topology, TopologyKind, DIRECTIONS};
use std::sync::Arc;

/// Marker entry in [`RouteIndex::position`]'s grid for cells on no
/// (encodable) ring. Unambiguous: a real entry would need ring index and
/// cycle position both `0xFFFF`, which the builder refuses to encode.
const NO_RING_POS: u32 = u32::MAX;

/// Marker region code for a disabled cell outside every fault region
/// (would make the traversal's "disabled non-region cell" invariant fail,
/// exactly like the reference path's `expect`).
pub(crate) const NO_REGION: u32 = u32::MAX;

/// Result of a [`SegmentIndex::probe`]: how far XY routing may advance in
/// one direction before hitting a disabled cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Segment {
    /// Free hops (enabled cells) in the probed direction, `≤ steps`.
    pub advance: usize,
    /// The first disabled cell on the span and its fault-region index
    /// ([`NO_REGION`] when it belongs to none), if one lies within
    /// `steps`. Carrying the region here spares the traversal a separate
    /// region-grid lookup per fault encounter.
    pub blocked: Option<(Coord, u32)>,
}

/// Sorted per-row / per-column tables of disabled coordinates, stored as
/// two flat CSR layouts (`off[line]..off[line + 1]` slices one line's
/// entries) so a probe touches two contiguous arrays instead of chasing a
/// per-line `Vec` pointer.
///
/// Row `y`'s slice holds the ascending x coordinates of disabled cells in
/// that row (paired with their fault-region index); column `x`'s slice
/// the ascending y coordinates. A probe is a binary search for the first
/// disabled cell in the walk window; on a torus the window may wrap the
/// seam, in which case the search splits in two.
#[derive(Clone, Debug)]
pub(crate) struct SegmentIndex {
    topology: Topology,
    /// CSR offsets of `rows` (one slice per y line). Exposed to
    /// [`crate::layout::WideSegments`], which repacks the tables into
    /// SoA key/region arenas for the wide engine.
    pub row_off: Vec<u32>,
    /// `(x, region code)` of disabled cells, ascending per row.
    pub rows: Vec<(i32, u32)>,
    /// CSR offsets of `cols` (one slice per x line).
    pub col_off: Vec<u32>,
    /// `(y, region code)` of disabled cells, ascending per column.
    pub cols: Vec<(i32, u32)>,
}

/// Flattens per-line vectors into a CSR (offsets, data) pair.
fn flatten_lines(lines: Vec<Vec<(i32, u32)>>) -> (Vec<u32>, Vec<(i32, u32)>) {
    let mut off = Vec::with_capacity(lines.len() + 1);
    off.push(0u32);
    let mut data = Vec::new();
    for line in lines {
        data.extend_from_slice(&line);
        off.push(data.len() as u32);
    }
    (off, data)
}

/// The sorted `(coordinate, region code)` entries of one row (`is_row`)
/// or column line, produced by an ascending scan — identical to the
/// collect-then-sort the original cold build ran, since coordinates are
/// unique per line.
fn scan_line(
    enabled: &EnabledMap,
    region_of: &Grid<Option<usize>>,
    is_row: bool,
    li: usize,
) -> Vec<(i32, u32)> {
    let t = enabled.topology();
    let extent = if is_row { t.width() } else { t.height() } as i32;
    let mut line = Vec::new();
    for v in 0..extent {
        let c = if is_row {
            Coord::new(v, li as i32)
        } else {
            Coord::new(li as i32, v)
        };
        if !enabled.is_enabled(c) {
            line.push((v, region_of.get(c).map_or(NO_REGION, |r| r as u32)));
        }
    }
    line
}

impl SegmentIndex {
    /// Builds the tables from the enabled view and region membership,
    /// with the per-line scans spread over `threads` row and column
    /// bands. Lines are produced independently and concatenated in line
    /// order, so the output is identical for every thread count.
    pub fn build_par(
        enabled: &EnabledMap,
        region_of: &Grid<Option<usize>>,
        threads: usize,
    ) -> Self {
        let t = enabled.topology();
        let row_lines = crate::incremental::par_map(t.height() as usize, threads, |y| {
            scan_line(enabled, region_of, true, y)
        });
        let col_lines = crate::incremental::par_map(t.width() as usize, threads, |x| {
            scan_line(enabled, region_of, false, x)
        });
        let (row_off, rows) = flatten_lines(row_lines);
        let (col_off, cols) = flatten_lines(col_lines);
        Self {
            topology: t,
            row_off,
            rows,
            col_off,
            cols,
        }
    }

    /// Incremental rebuild: rescans lines marked touched, copies lines
    /// marked renumbered with their region codes mapped through
    /// `code_map` (previous group index → new group index — the cells on
    /// such lines are unchanged, only the embedded code moved), and
    /// copies everything else verbatim. Byte-identical to a cold
    /// [`Self::build_par`] under the line contract [`crate::incremental`]
    /// derives from the epoch delta.
    #[allow(clippy::too_many_arguments)]
    pub fn patch(
        prev: &Self,
        enabled: &EnabledMap,
        region_of: &Grid<Option<usize>>,
        touched_rows: &[bool],
        touched_cols: &[bool],
        renum_rows: &[bool],
        renum_cols: &[bool],
        code_map: &[u32],
    ) -> Self {
        let t = enabled.topology();
        let side =
            |off: &[u32], data: &[(i32, u32)], touched: &[bool], renum: &[bool], is_row: bool| {
                let mut out_off = Vec::with_capacity(off.len());
                out_off.push(0u32);
                let mut out = Vec::with_capacity(data.len());
                for (li, w) in off.windows(2).enumerate() {
                    let slice = &data[w[0] as usize..w[1] as usize];
                    if touched[li] {
                        out.extend(scan_line(enabled, region_of, is_row, li));
                    } else if renum[li] {
                        out.extend(slice.iter().map(|&(v, code)| {
                            let code = if code == NO_REGION {
                                NO_REGION
                            } else {
                                code_map[code as usize]
                            };
                            (v, code)
                        }));
                    } else {
                        out.extend_from_slice(slice);
                    }
                    out_off.push(out.len() as u32);
                }
                (out_off, out)
            };
        let (row_off, rows) = side(&prev.row_off, &prev.rows, touched_rows, renum_rows, true);
        let (col_off, cols) = side(&prev.col_off, &prev.cols, touched_cols, renum_cols, false);
        Self {
            topology: t,
            row_off,
            rows,
            col_off,
            cols,
        }
    }

    /// Feeds every table into the router digest.
    pub fn digest(&self, h: &mut Fnv) {
        h.u32s(&self.row_off);
        h.u32s(&self.col_off);
        h.u64(self.rows.len() as u64);
        for &(v, code) in self.rows.iter().chain(self.cols.iter()) {
            h.u64(((v as u32 as u64) << 32) | u64::from(code));
        }
    }

    /// Probes up to `steps` hops from `from` in `dir`. `steps` must be at
    /// most half the extent on a torus (which XY offsets always are).
    pub fn probe(&self, from: Coord, dir: Direction, steps: usize) -> Segment {
        let (line, pos, extent) = match dir {
            Direction::East | Direction::West => {
                let (y, w) = (from.y as usize, self.topology.width() as i32);
                let range = self.row_off[y] as usize..self.row_off[y + 1] as usize;
                (&self.rows[range], from.x, w)
            }
            Direction::North | Direction::South => {
                let (x, h) = (from.x as usize, self.topology.height() as i32);
                let range = self.col_off[x] as usize..self.col_off[x + 1] as usize;
                (&self.cols[range], from.y, h)
            }
        };
        let positive = matches!(dir, Direction::East | Direction::North);
        let torus = self.topology.kind() == TopologyKind::Torus;
        match first_blocked(line, pos, steps as i32, extent, positive, torus) {
            Some((d, region)) => Segment {
                advance: (d - 1) as usize,
                blocked: Some((coord_at(self.topology, from, dir, d), region)),
            },
            None => Segment {
                advance: steps,
                blocked: None,
            },
        }
    }
}

/// The coordinate `d` hops from `from` in `dir` (wrapping on tori).
fn coord_at(t: Topology, from: Coord, dir: Direction, d: i32) -> Coord {
    let (dx, dy) = dir.offset();
    let raw = Coord::new(from.x + dx * d, from.y + dy * d);
    match t.kind() {
        TopologyKind::Mesh => raw,
        TopologyKind::Torus => t.wrap(raw),
    }
}

/// Distance (in hops, `1..=steps`) to the first `line` member reached when
/// walking from `pos` in the positive or negative direction, with that
/// member's region code; `None` if the window is clear. `line` is
/// ascending within `[0, extent)`.
fn first_blocked(
    line: &[(i32, u32)],
    pos: i32,
    steps: i32,
    extent: i32,
    positive: bool,
    torus: bool,
) -> Option<(i32, u32)> {
    if positive {
        let end = pos + steps;
        if !torus || end < extent {
            let i = line.partition_point(|&(v, _)| v <= pos);
            return (i < line.len() && line[i].0 <= end).then(|| (line[i].0 - pos, line[i].1));
        }
        // Wrapped window: (pos, extent) then [0, end - extent].
        let i = line.partition_point(|&(v, _)| v <= pos);
        if i < line.len() {
            return Some((line[i].0 - pos, line[i].1));
        }
        line.first()
            .filter(|&&(v, _)| v <= end - extent)
            .map(|&(v, r)| (v + extent - pos, r))
    } else {
        let end = pos - steps;
        if !torus || end >= 0 {
            let i = line.partition_point(|&(v, _)| v < pos);
            return (i > 0 && line[i - 1].0 >= end).then(|| (pos - line[i - 1].0, line[i - 1].1));
        }
        // Wrapped window: [0, pos) then [end + extent, extent).
        let i = line.partition_point(|&(v, _)| v < pos);
        if i > 0 {
            return Some((pos - line[i - 1].0, line[i - 1].1));
        }
        match line.last() {
            Some(&(last, r)) if last >= end + extent => Some((pos + extent - last, r)),
            _ => None,
        }
    }
}

/// The feasibility-mask bit for direction `d` (see
/// [`CandidateColumns::masks`]).
pub(crate) fn dir_bit(d: Direction) -> u8 {
    match d {
        Direction::West => 1,
        Direction::East => 2,
        Direction::South => 4,
        Direction::North => 8,
    }
}

/// Sort/search key of an in-machine coordinate (non-negative components).
fn coord_key(c: Coord) -> u64 {
    ((c.y as u32 as u64) << 32) | c.x as u32 as u64
}

/// Structure-of-arrays store of exit candidates: cell coordinates,
/// precomputed infeasibility masks, and cycle positions in parallel
/// columns. The layout lets the exit scan in `router.rs` run as one
/// branch-free loop over flat primitive arrays, which the compiler
/// auto-vectorizes.
#[derive(Clone, Debug, Default)]
pub(crate) struct CandidateColumns {
    /// Cell x per candidate.
    pub xs: Vec<i32>,
    /// Cell y per candidate.
    pub ys: Vec<i32>,
    /// Infeasibility bits per candidate ([`dir_bit`]`(d)` set ⇔ the
    /// neighbor in `d` lies in the ring's region, i.e. the exit predicate
    /// rejects an exit toward `d`).
    pub masks: Vec<u8>,
    /// Cycle position per candidate.
    pub poss: Vec<u32>,
}

impl CandidateColumns {
    /// Number of stored candidates.
    pub fn len(&self) -> usize {
        self.xs.len()
    }
}

/// Per-ring query index. Only cycle rings are indexed; chains keep the
/// default empty index (the router rejects them before lookup).
///
/// The exit-candidate set is *exact*, not padded: the minimum of the exit
/// objective over feasible cycle positions is provably attained at a
/// position where either the distance slope can change (ring-walk corners
/// — including both endpoints of diagonal steps — destination-aligned
/// cells, torus-antipodal cells) or the feasibility predicate can change
/// (both endpoints of every per-direction region-blocked transition).
/// Between two consecutive candidates the walk direction, the preferred
/// direction toward `dst`, and every blocked bit are constant, so the
/// distance is strictly monotone across the gap and no interior position
/// can be a minimum.
#[derive(Clone, Debug, Default)]
pub(crate) struct RingIndex {
    /// `(coord key, cycle position)` sorted by key — hash-free
    /// `position_of` in O(log n).
    sorted: Vec<(u64, u32)>,
    /// Destination-independent exit candidates: ring-walk corners and
    /// region-blocked-status transitions; ascending by position,
    /// deduplicated. (Exposed crate-wide so
    /// [`crate::layout::WideRings`] can pack them into scan words.)
    pub static_candidates: CandidateColumns,
    /// CSR of candidates per column: column `x` holds the `cols` range
    /// `col_off[x]..col_off[x + 1]`.
    pub col_off: Vec<u32>,
    /// Candidates grouped by column, CSR order.
    pub cols: CandidateColumns,
    /// CSR of candidates per row.
    pub row_off: Vec<u32>,
    /// Candidates grouped by row, CSR order.
    pub rows: CandidateColumns,
    /// Whether the exit objective fits the packed-u32 scan: cycle
    /// positions in 16 bits and distances in 15.
    compact: bool,
}

/// Builds one CSR side (`off`, `data`) over `extent` lines keyed by `line`.
fn build_csr(
    cells: &[Coord],
    masks: &[u8],
    extent: usize,
    line: impl Fn(Coord) -> usize,
) -> (Vec<u32>, CandidateColumns) {
    let n = cells.len();
    let mut off = vec![0u32; extent + 1];
    for &c in cells {
        off[line(c) + 1] += 1;
    }
    for i in 0..extent {
        off[i + 1] += off[i];
    }
    let mut cursor = off.clone();
    let mut data = CandidateColumns {
        xs: vec![0; n],
        ys: vec![0; n],
        masks: vec![0; n],
        poss: vec![0; n],
    };
    for (i, &c) in cells.iter().enumerate() {
        let slot = &mut cursor[line(c)];
        let s = *slot as usize;
        data.xs[s] = c.x;
        data.ys[s] = c.y;
        data.masks[s] = masks[i];
        data.poss[s] = i as u32;
        *slot += 1;
    }
    (off, data)
}

impl RingIndex {
    /// Builds the index of one ring. `region_of` is the router's region
    /// membership grid, used to precompute the feasibility masks.
    pub fn build(t: Topology, ring: &FaultRing, region_of: &Grid<Option<usize>>) -> Self {
        let RingShape::Cycle(cells) = &ring.shape else {
            return Self::default();
        };
        let n = cells.len();
        let mut sorted: Vec<(u64, u32)> = cells
            .iter()
            .enumerate()
            .map(|(i, &c)| (coord_key(c), i as u32))
            .collect();
        sorted.sort_unstable();

        // Feasibility masks: which XY hops out of each ring cell are
        // blocked by this ring's own region.
        let masks: Vec<u8> = cells
            .iter()
            .map(|&c| {
                DIRECTIONS
                    .into_iter()
                    .filter(|&d| {
                        t.neighbor(c, d)
                            .coord()
                            .is_some_and(|nxt| region_of.get(nxt) == &Some(ring.region_index))
                    })
                    .fold(0u8, |acc, d| acc | dir_bit(d))
            })
            .collect();
        let (col_off, cols) = build_csr(cells, &masks, t.width() as usize, |c| c.x as usize);
        let (row_off, rows) = build_csr(cells, &masks, t.height() as usize, |c| c.y as usize);

        let mut marked = vec![false; n];
        // Corners: the walk direction changes at cell i (`None` covers
        // diagonal steps, whose flats need both endpoints).
        for i in 0..n {
            let before = dir_between(t, cells[(i + n - 1) % n], cells[i]);
            let after = dir_between(t, cells[i], cells[(i + 1) % n]);
            if before.is_none() || before != after {
                marked[i] = true;
            }
        }
        // Feasibility transitions: pred(c) can only change where some
        // blocked bit changes; both sides of the change are breakpoints.
        for i in 0..n {
            let j = (i + 1) % n;
            if masks[i] != masks[j] {
                marked[i] = true;
                marked[j] = true;
            }
        }
        let mut static_candidates = CandidateColumns::default();
        for (i, &c) in cells.iter().enumerate().filter(|&(i, _)| marked[i]) {
            static_candidates.xs.push(c.x);
            static_candidates.ys.push(c.y);
            static_candidates.masks.push(masks[i]);
            static_candidates.poss.push(i as u32);
        }
        let compact = n <= usize::from(u16::MAX) && t.width() as u64 + t.height() as u64 <= 0x8000;
        Self {
            sorted,
            static_candidates,
            col_off,
            cols,
            row_off,
            rows,
            compact,
        }
    }

    /// Whether the packed-u32 exit scan is valid for this ring (always,
    /// except on machines with perimeter-scale rings or extents summing
    /// past 2^15, which fall back to the u64 scan).
    pub fn compact(&self) -> bool {
        self.compact
    }

    /// Whether this is the empty default index (a chain ring, which the
    /// router rejects before any exit lookup).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Cycle position of `c` in O(log n), hash-free (`None` for
    /// non-members and chains).
    pub fn position(&self, c: Coord) -> Option<usize> {
        let key = coord_key(c);
        self.sorted
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| self.sorted[i].1 as usize)
    }

    /// Range of `cols` holding candidates in column `x`.
    fn column(&self, x: i32) -> core::ops::Range<usize> {
        self.col_off[x as usize] as usize..self.col_off[x as usize + 1] as usize
    }

    /// Range of `rows` holding candidates in row `y`.
    fn row(&self, y: i32) -> core::ops::Range<usize> {
        self.row_off[y as usize] as usize..self.row_off[y as usize + 1] as usize
    }

    /// Feeds the whole ring index into the router digest.
    pub fn digest(&self, h: &mut Fnv) {
        h.u64(self.sorted.len() as u64);
        for &(k, p) in &self.sorted {
            h.u64(k);
            h.u64(u64::from(p));
        }
        let cands = |h: &mut Fnv, c: &CandidateColumns| {
            h.u64(c.len() as u64);
            for i in 0..c.len() {
                h.coord(Coord::new(c.xs[i], c.ys[i]));
                h.u64((u64::from(c.masks[i]) << 32) | u64::from(c.poss[i]));
            }
        };
        cands(h, &self.static_candidates);
        h.u32s(&self.col_off);
        cands(h, &self.cols);
        h.u32s(&self.row_off);
        cands(h, &self.rows);
        h.u64(u64::from(self.compact));
    }

    /// Calls `f` on every `(columns, range)` slice holding a cycle
    /// position where the exit objective (feasibility predicate + distance
    /// to `dst`) can attain its minimum: the static candidates plus cells
    /// on `dst`'s column/row and, on a torus, the antipodal
    /// column(s)/row(s) where the wrap distance kinks (two lines per axis,
    /// covering odd extents' flat step). The slices are scanned in place —
    /// no candidate is ever copied — and may overlap. Must only be called
    /// for cycle rings.
    pub fn candidate_slices(
        &self,
        t: Topology,
        dst: Coord,
        mut f: impl FnMut(&CandidateColumns, core::ops::Range<usize>),
    ) {
        f(&self.static_candidates, 0..self.static_candidates.len());
        f(&self.cols, self.column(dst.x));
        f(&self.rows, self.row(dst.y));
        if t.kind() == TopologyKind::Torus {
            let (w, h) = (t.width() as i32, t.height() as i32);
            for ax in [(dst.x + w / 2) % w, (dst.x + (w + 1) / 2) % w] {
                f(&self.cols, self.column(ax));
            }
            for ay in [(dst.y + h / 2) % h, (dst.y + (h + 1) / 2) % h] {
                f(&self.rows, self.row(ay));
            }
        }
    }
}

/// The direction `d` with `t.neighbor(a, d) == b`, for adjacent cells
/// (torus-wrap aware). `None` if the cells are not linked.
fn dir_between(t: Topology, a: Coord, b: Coord) -> Option<Direction> {
    DIRECTIONS
        .into_iter()
        .find(|&d| t.neighbor(a, d).coord() == Some(b))
}

/// All per-snapshot indexes of one router, built in
/// `FaultTolerantRouter::new`.
#[derive(Clone, Debug)]
pub(crate) struct RouteIndex {
    /// Row/column disabled-interval tables for segment-jump XY.
    pub segments: SegmentIndex,
    /// One [`RingIndex`] per fault ring, in ring order. `Arc`-held so an
    /// incremental epoch build shares unchanged rings with its
    /// predecessor instead of recomputing them.
    pub rings: Vec<Arc<RingIndex>>,
    /// Cache-packed SoA repack of `segments` for the wide engine.
    pub wide_segments: crate::layout::WideSegments,
    /// Cache-packed per-ring exit-candidate words for the wide engine.
    pub wide_rings: crate::layout::WideRings,
    /// O(1) best-exit directory for destinations outside each ring's
    /// bounding box (mesh snapshots; tori always scan).
    pub exit_dir: crate::layout::ExitDirectory,
    /// `ring << 16 | cycle position` of the first ring each cell appears
    /// on ([`NO_RING_POS`] elsewhere) — one 4-byte grid probe resolves
    /// almost every `position_of`. Cells sitting on a *second* ring as
    /// well (two non-merged regions two apart) fall back to that ring's
    /// sorted-key search.
    pub ring_pos: Grid<u32>,
}

/// The `ring << 16 | position` grid (see [`RouteIndex::ring_pos`]) —
/// linear in ring cells, so both cold and incremental builds regenerate
/// it fresh.
pub(crate) fn build_ring_pos(t: Topology, rings: &[FaultRing]) -> Grid<u32> {
    let mut ring_pos = Grid::filled(t, NO_RING_POS);
    for (r, ring) in rings.iter().enumerate() {
        let RingShape::Cycle(cells) = &ring.shape else {
            continue;
        };
        // Rings or positions past 16 bits stay unencoded and resolve
        // through the per-ring fallback.
        if r >= usize::from(u16::MAX) || cells.len() > usize::from(u16::MAX) {
            continue;
        }
        for (i, &c) in cells.iter().enumerate() {
            if *ring_pos.get(c) == NO_RING_POS {
                ring_pos.set(c, ((r as u32) << 16) | i as u32);
            }
        }
    }
    ring_pos
}

impl RouteIndex {
    /// Builds all indexes for the given labeled view, spreading the
    /// per-line and per-ring phases over `threads` bands and recording
    /// the phase timings into `stats`.
    pub fn build(
        enabled: &EnabledMap,
        rings: &[FaultRing],
        region_of: &Grid<Option<usize>>,
        threads: usize,
        stats: &mut BuildBreakdown,
    ) -> Self {
        use std::time::Instant;
        let t = enabled.topology();
        let pos_start = Instant::now();
        let ring_pos = build_ring_pos(t, rings);
        let mut ring_ns = pos_start.elapsed().as_nanos() as u64;

        let seg_start = Instant::now();
        let segments = SegmentIndex::build_par(enabled, region_of, threads);
        stats.segment_ns += seg_start.elapsed().as_nanos() as u64;

        let ring_start = Instant::now();
        let ring_indexes: Vec<Arc<RingIndex>> =
            crate::incremental::par_map(rings.len(), threads, |i| {
                Arc::new(RingIndex::build(t, &rings[i], region_of))
            });
        ring_ns += ring_start.elapsed().as_nanos() as u64;
        stats.ring_ns += ring_ns;

        let wide_start = Instant::now();
        let wide_segments =
            crate::layout::WideSegments::build(&segments, rings, &ring_indexes, t, threads);
        let wide_rings = crate::layout::WideRings::build(&ring_indexes);
        stats.wide_ns += wide_start.elapsed().as_nanos() as u64;

        let exit_start = Instant::now();
        let exit_dir =
            crate::layout::ExitDirectory::build(t, rings, &ring_indexes, &wide_rings, threads);
        stats.exit_ns += exit_start.elapsed().as_nanos() as u64;
        Self {
            segments,
            rings: ring_indexes,
            wide_segments,
            wide_rings,
            exit_dir,
            ring_pos,
        }
    }

    /// Feeds every index table into the router digest.
    pub fn digest(&self, h: &mut Fnv) {
        self.segments.digest(h);
        h.u64(self.rings.len() as u64);
        for ring in &self.rings {
            ring.digest(h);
        }
        self.wide_segments.digest(h);
        self.wide_rings.digest(h);
        self.exit_dir.digest(h);
        for (_, &v) in self.ring_pos.iter() {
            h.u64(u64::from(v));
        }
    }

    /// Cycle position of `c` on ring `region_idx`: O(1) via the position
    /// grid, falling back to the ring's sorted table when the grid entry
    /// belongs to a different ring (or was too large to encode). `None`
    /// when `c` is not on that ring.
    pub fn position(&self, region_idx: usize, c: Coord) -> Option<usize> {
        let v = *self.ring_pos.get(c);
        if v != NO_RING_POS && (v >> 16) as usize == region_idx {
            Some((v & 0xFFFF) as usize)
        } else {
            self.rings[region_idx].position(c)
        }
    }
}

/// Reusable traversal state for the indexed query path.
///
/// One scratch serves any number of sequential queries against any router;
/// its buffers are cleared (not freed) between traversals, so a warmed-up
/// `route_len` performs no heap allocation. `FaultTolerantRouter::route`
/// and `route_len` use a thread-local scratch transparently; callers in
/// tight loops can hold their own and use `route_into` /
/// `route_len_with`.
#[derive(Debug, Default)]
pub struct RouteScratch {
    /// Livelock guard: (ring index, entry cell) pairs seen this traversal.
    entries: Vec<(usize, Coord)>,
    /// Per-traversal memo of `best_exit` results (dst is fixed within one
    /// traversal, so a ring's best exit never changes across re-encounters).
    exits: Vec<(usize, Option<u32>)>,
    /// SoA staging buffers for the wide batch engine
    /// (`FaultTolerantRouter::route_len_batch`); unused by the scalar
    /// entry points.
    pub(crate) wide: crate::wide::WideBuffers,
}

impl RouteScratch {
    /// A fresh scratch. Equivalent to `RouteScratch::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets per-traversal state, keeping buffer capacity.
    pub(crate) fn begin(&mut self) {
        self.entries.clear();
        self.exits.clear();
    }

    /// Records a ring entry; `false` if this (ring, entry) was already
    /// seen this traversal (the livelock condition).
    pub(crate) fn note_entry(&mut self, ring: usize, entry: Coord) -> bool {
        if self.entries.iter().any(|&(r, c)| r == ring && c == entry) {
            return false;
        }
        self.entries.push((ring, entry));
        true
    }

    /// The memoized exit for `ring`, if computed this traversal.
    pub(crate) fn lookup_exit(&self, ring: usize) -> Option<Option<u32>> {
        self.exits
            .iter()
            .find(|&&(r, _)| r == ring)
            .map(|&(_, e)| e)
    }

    /// Memoizes the exit for `ring`.
    pub(crate) fn store_exit(&mut self, ring: usize, exit: Option<u32>) {
        self.exits.push((ring, exit));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_mesh::Grid;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_map(t: Topology, density: f64, seed: u64) -> EnabledMap {
        let mut rng = SmallRng::seed_from_u64(seed);
        let grid = Grid::from_fn(t, |_| !rng.gen_bool(density));
        EnabledMap::from_grid(grid)
    }

    /// A synthetic region grid giving every disabled cell its own region
    /// code, so probes can be checked to report the right one.
    fn fake_regions(enabled: &EnabledMap) -> Grid<Option<usize>> {
        let t = enabled.topology();
        Grid::from_fn(t, |c| {
            (!enabled.is_enabled(c)).then(|| (c.y * t.width() as i32 + c.x) as usize % 5)
        })
    }

    /// Naive per-hop reference for `probe`.
    fn naive_probe(
        enabled: &EnabledMap,
        region_of: &Grid<Option<usize>>,
        from: Coord,
        dir: Direction,
        steps: usize,
    ) -> Segment {
        let t = enabled.topology();
        let mut cur = from;
        for k in 0..steps {
            let next = match t.neighbor(cur, dir).coord() {
                Some(n) => n,
                None => {
                    return Segment {
                        advance: k,
                        blocked: None,
                    }
                }
            };
            if !enabled.is_enabled(next) {
                let code = region_of.get(next).map_or(NO_REGION, |r| r as u32);
                return Segment {
                    advance: k,
                    blocked: Some((next, code)),
                };
            }
            cur = next;
        }
        Segment {
            advance: steps,
            blocked: None,
        }
    }

    #[test]
    fn probe_matches_naive_scan() {
        for t in [Topology::mesh(13, 9), Topology::torus(13, 9)] {
            for seed in 0..4u64 {
                let enabled = random_map(t, 0.25, seed);
                let region_of = fake_regions(&enabled);
                let index = SegmentIndex::build_par(&enabled, &region_of, 1);
                for from in t.coords() {
                    for dir in DIRECTIONS {
                        let max = match dir {
                            Direction::East | Direction::West => t.width(),
                            Direction::North | Direction::South => t.height(),
                        } / 2;
                        for steps in 0..=max as usize {
                            // XY probes never walk off a mesh edge; skip
                            // windows the router would never ask for.
                            if t.kind() == TopologyKind::Mesh {
                                let (dx, dy) = dir.offset();
                                let far = Coord::new(
                                    from.x + dx * steps as i32,
                                    from.y + dy * steps as i32,
                                );
                                if !t.contains(far) {
                                    continue;
                                }
                            }
                            assert_eq!(
                                index.probe(from, dir, steps),
                                naive_probe(&enabled, &region_of, from, dir, steps),
                                "{t:?} {from} {dir:?} x{steps} seed {seed}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn probe_handles_torus_seam_windows() {
        let t = Topology::torus(8, 8);
        let mut grid = Grid::filled(t, true);
        grid.set(Coord::new(1, 0), false);
        let enabled = EnabledMap::from_grid(grid);
        let mut region_of = Grid::filled(t, None);
        region_of.set(Coord::new(1, 0), Some(3));
        let index = SegmentIndex::build_par(&enabled, &region_of, 1);
        // Eastward from x=6: wraps the seam and hits x=1 after 3 hops.
        let seg = index.probe(Coord::new(6, 0), Direction::East, 4);
        assert_eq!(seg.advance, 2);
        assert_eq!(seg.blocked, Some((Coord::new(1, 0), 3)));
        // Westward from x=3 with a clear window.
        let seg = index.probe(Coord::new(3, 1), Direction::West, 4);
        assert_eq!(seg.advance, 4);
        assert_eq!(seg.blocked, None);
    }

    #[test]
    fn scratch_guard_and_memo_semantics() {
        let mut s = RouteScratch::new();
        s.begin();
        assert!(s.note_entry(0, Coord::new(1, 1)));
        assert!(s.note_entry(1, Coord::new(1, 1)));
        assert!(!s.note_entry(0, Coord::new(1, 1)));
        assert_eq!(s.lookup_exit(0), None);
        s.store_exit(0, Some(7));
        assert_eq!(s.lookup_exit(0), Some(Some(7)));
        s.begin();
        assert!(s.note_entry(0, Coord::new(1, 1)), "begin clears the guard");
        assert_eq!(s.lookup_exit(0), None, "begin clears the memo");
    }
}
