//! Empirical channel-dependency-graph (CDG) analysis.
//!
//! Dally & Seitz: a routing function is deadlock-free iff its channel
//! dependency graph is acyclic. Here the CDG is built *empirically* from a
//! set of concrete paths (every consecutive pair of channels a worm would
//! hold simultaneously becomes a dependency edge), under a pluggable
//! virtual-channel assignment. This lets the benchmarks show the classic
//! picture: plain XY is acyclic on one VC, while ring-detour routing on a
//! single VC creates cycles that an extra detour VC class removes.

use crate::path::Path;
use ocp_mesh::Coord;
use std::collections::{HashMap, HashSet};

/// One virtual channel of one directed link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Channel {
    /// Link tail.
    pub from: Coord,
    /// Link head.
    pub to: Coord,
    /// Virtual-channel index.
    pub vc: u8,
}

/// Assigns a virtual channel to each hop of a path. Receives the path and
/// the hop index (0 = first link).
pub type VcAssignment<'a> = dyn Fn(&Path, usize) -> u8 + 'a;

/// Every hop on VC 0.
pub fn assign_single_vc(_path: &Path, _hop: usize) -> u8 {
    0
}

/// Minimal-progress hops on VC 0, detour hops (those that do not reduce the
/// Manhattan distance to the destination) on VC 1 — a coarse rendering of
/// the "escape channel" discipline fault-ring routing schemes use.
pub fn assign_detour_vc(path: &Path, hop: usize) -> u8 {
    let dst = path.dst();
    let before = path.hops[hop].manhattan(dst);
    let after = path.hops[hop + 1].manhattan(dst);
    if after < before {
        0
    } else {
        1
    }
}

/// A channel dependency graph.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    edges: HashMap<Channel, HashSet<Channel>>,
}

impl DependencyGraph {
    /// Builds the CDG of a path set under a VC assignment.
    pub fn from_paths<'a, I>(paths: I, assign: &VcAssignment<'_>) -> Self
    where
        I: IntoIterator<Item = &'a Path>,
    {
        let mut graph = Self::default();
        for path in paths {
            let links: Vec<Channel> = path
                .hops
                .windows(2)
                .enumerate()
                .map(|(i, w)| Channel {
                    from: w[0],
                    to: w[1],
                    vc: assign(path, i),
                })
                .collect();
            for w in links.windows(2) {
                graph.edges.entry(w[0]).or_default().insert(w[1]);
                graph.edges.entry(w[1]).or_default();
            }
            // Make sure single-link paths still register their channel.
            if links.len() == 1 {
                graph.edges.entry(links[0]).or_default();
            }
        }
        graph
    }

    /// Number of channels that appear in the graph.
    pub fn channel_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }

    /// True if the graph has no directed cycle (Dally–Seitz criterion for
    /// the observed dependencies).
    pub fn is_acyclic(&self) -> bool {
        self.count_back_edges() == 0
    }

    /// Number of back edges found by iterative DFS — a rough measure of
    /// "how cyclic" the dependency structure is.
    pub fn count_back_edges(&self) -> usize {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<Channel, Color> =
            self.edges.keys().map(|&c| (c, Color::White)).collect();
        let mut back_edges = 0;

        for &start in self.edges.keys() {
            if color[&start] != Color::White {
                continue;
            }
            // Iterative DFS with an explicit stack of (node, child iterator
            // position).
            let mut stack: Vec<(Channel, Vec<Channel>, usize)> = Vec::new();
            color.insert(start, Color::Gray);
            let children: Vec<Channel> = self.edges[&start].iter().copied().collect();
            stack.push((start, children, 0));
            while let Some((node, children, idx)) = stack.last_mut() {
                if *idx < children.len() {
                    let child = children[*idx];
                    *idx += 1;
                    match color[&child] {
                        Color::White => {
                            color.insert(child, Color::Gray);
                            let grand: Vec<Channel> = self.edges[&child].iter().copied().collect();
                            stack.push((child, grand, 0));
                        }
                        Color::Gray => back_edges += 1,
                        Color::Black => {}
                    }
                } else {
                    color.insert(*node, Color::Black);
                    stack.pop();
                }
            }
        }
        back_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::EnabledMap;
    use crate::xy;
    use ocp_mesh::Topology;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn all_pairs_xy_paths(t: Topology) -> Vec<Path> {
        let enabled = EnabledMap::all_enabled(t);
        let mut paths = Vec::new();
        for src in t.coords() {
            for dst in t.coords() {
                if src != dst {
                    paths.push(xy::route(&enabled, src, dst).unwrap());
                }
            }
        }
        paths
    }

    #[test]
    fn xy_on_mesh_is_acyclic_with_one_vc() {
        let paths = all_pairs_xy_paths(Topology::mesh(5, 5));
        let g = DependencyGraph::from_paths(paths.iter(), &assign_single_vc);
        assert!(g.is_acyclic(), "XY on a mesh must be deadlock-free");
        assert!(g.channel_count() > 0);
    }

    #[test]
    fn xy_on_torus_is_cyclic_with_one_vc() {
        // The classic result: wraparound rings create cyclic dependencies
        // without extra VCs.
        let paths = all_pairs_xy_paths(Topology::torus(5, 5));
        let g = DependencyGraph::from_paths(paths.iter(), &assign_single_vc);
        assert!(!g.is_acyclic(), "torus wraparound must create cycles");
    }

    #[test]
    fn handcrafted_cycle_detected() {
        // Four paths chasing each other around a 2x2 block.
        let square = [c(0, 0), c(1, 0), c(1, 1), c(0, 1)];
        let mut paths = Vec::new();
        for i in 0..4 {
            let a = square[i];
            let b = square[(i + 1) % 4];
            let d = square[(i + 2) % 4];
            paths.push(Path {
                hops: vec![a, b, d],
            });
        }
        let g = DependencyGraph::from_paths(paths.iter(), &assign_single_vc);
        assert!(!g.is_acyclic());
        assert!(g.count_back_edges() >= 1);
    }

    #[test]
    fn detour_vc_splits_channels() {
        // A path that walks away from its destination uses VC 1 on those
        // hops.
        let p = Path {
            hops: vec![c(0, 0), c(0, 1), c(1, 1), c(1, 0), c(2, 0)],
        };
        assert_eq!(assign_detour_vc(&p, 0), 1); // away
        assert_eq!(assign_detour_vc(&p, 1), 0); // toward
        assert_eq!(assign_detour_vc(&p, 3), 0);
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = DependencyGraph::default();
        assert!(g.is_acyclic());
        assert_eq!(g.channel_count(), 0);
    }

    #[test]
    fn single_link_paths_register_channels() {
        let p = Path {
            hops: vec![c(0, 0), c(1, 0)],
        };
        let g = DependencyGraph::from_paths([&p], &assign_single_vc);
        assert_eq!(g.channel_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_acyclic());
    }
}
