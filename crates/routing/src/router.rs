//! Fault-tolerant XY routing with fault-ring traversal.
//!
//! The routing strategy is the one the paper's fault model is designed for
//! (extended e-cube in the spirit of Chalasani–Boppana): follow dimension-
//! order routing; when the next XY hop is disabled, the message is sitting
//! on the blocking region's fault ring (the hop before a disabled cell is
//! always ring-adjacent to the region). Traverse the ring to the best
//! *exit* — the ring cell closest to the destination from which XY routing
//! can resume — then continue XY. Orthogonal convexity of the fault region
//! is what guarantees such an exit exists and the traversal never has to
//! enter the region's row/column "pockets".

use crate::fault_ring::FaultRing;
use crate::index::{CandidateColumns, RouteIndex, RouteScratch};
use crate::path::{EnabledMap, Path, RoutingError};
use crate::xy::{preferred_direction, wrap_delta};
use ocp_geometry::Region;
use ocp_mesh::{Coord, Direction, Grid, Topology, TopologyKind};
use std::cell::RefCell;
use std::collections::HashSet;

thread_local! {
    /// Per-thread scratch backing the allocation-free `route` / `route_len`
    /// entry points; callers that want explicit control use `route_into` /
    /// `route_len_with` with their own [`RouteScratch`].
    static SCRATCH: RefCell<RouteScratch> = RefCell::new(RouteScratch::new());
}

/// A router instance bound to one labeled machine state.
///
/// Cloning copies the labeled view (enabled map, rings, region index) and
/// is how `ocp-serve` shares a router per epoch snapshot; per-ring query
/// indexes are `Arc`-held and shared between clones (and between
/// incremental epochs, see [`crate::incremental`]). The router is
/// immutable after construction, so a clone — or an `Arc`-shared
/// instance — answers queries from any number of threads.
///
/// Construction also builds the query indexes (segment-jump tables and
/// per-ring exit-candidate indexes, see [`crate::index`]) so that per-query
/// cost is proportional to the number of fault encounters rather than to
/// path length. The pre-index per-hop algorithm is preserved as
/// [`route_reference`](FaultTolerantRouter::route_reference) /
/// [`route_len_reference`](FaultTolerantRouter::route_len_reference); the
/// two implementations are byte-identical by construction and by the
/// proptest suite in `tests/equivalence.rs`.
#[derive(Clone)]
pub struct FaultTolerantRouter {
    pub(crate) enabled: EnabledMap,
    pub(crate) rings: Vec<FaultRing>,
    /// For each node: index of the ring group containing it, if disabled.
    pub(crate) region_of: Grid<Option<usize>>,
    /// Ring groups: fault regions merged when diagonally adjacent.
    pub(crate) groups: Vec<Region>,
    /// Precomputed query indexes (built once per router).
    pub(crate) index: RouteIndex,
}

/// The coordinate `k` hops from `c` in `dir` (wrapping on tori), without
/// visiting the intermediate cells — the `route_len` side of a segment
/// jump.
pub(crate) fn advance_by(t: Topology, c: Coord, dir: Direction, k: usize) -> Coord {
    let (dx, dy) = dir.offset();
    let raw = Coord::new(c.x + dx * k as i32, c.y + dy * k as i32);
    match t.kind() {
        TopologyKind::Mesh => raw,
        TopologyKind::Torus => t.wrap(raw),
    }
}

/// The [`crate::index::dir_bit`] of `preferred_direction` derived from
/// already-wrapped axis deltas, branch-light: x is corrected first, so the
/// bit is East/West whenever `dx != 0`, else North/South, else 0 at the
/// destination (0 never rejects, matching the `c == dst` feasibility case).
pub(crate) fn exit_bit(dx: i32, dy: i32) -> u32 {
    // West = 1, East = 2; South = 4, North = 8, none = 0 — all selects,
    // no branches, so the exit scan vectorizes.
    let xbit = 1 + (dx > 0) as u32;
    let ybit = ((dy != 0) as u32) << (2 + (dy > 0) as u32);
    if dx != 0 {
        xbit
    } else {
        ybit
    }
}

/// One torus axis of the exit objective: the wrap-aware signed delta (as
/// `crate::xy::wrap_delta` — ties to the positive side) and the axis
/// distance (as [`Topology::distance`]), from one shared reduction. `raw`
/// must lie in `(-extent, extent)` (both coordinates in-machine).
pub(crate) fn torus_axis(raw: i32, extent: i32) -> (i32, u32) {
    let m = if raw < 0 { raw + extent } else { raw };
    let delta = if 2 * m > extent { m - extent } else { m };
    (delta, m.min(extent - m) as u32)
}

/// "No feasible candidate" bit of the wide (u64) packed exit objective.
pub(crate) const INFEASIBLE: u64 = 1 << 63;

/// Minimum packed `reject << 31 | distance << 16 | position` exit
/// objective over candidates `cands[range]` (see
/// [`FaultTolerantRouter::best_exit_indexed`]).
fn scan_packed_u32(
    t: Topology,
    dst: Coord,
    cands: &CandidateColumns,
    range: std::ops::Range<usize>,
) -> u32 {
    let xs = &cands.xs[range.clone()];
    let ys = &cands.ys[range.clone()];
    let masks = &cands.masks[range.clone()];
    let poss = &cands.poss[range];
    let n = xs.len();
    let mut best = u32::MAX;
    match t.kind() {
        TopologyKind::Mesh => {
            for i in 0..n {
                let (dx, dy) = (dst.x - xs[i], dst.y - ys[i]);
                let dist = dx.unsigned_abs() + dy.unsigned_abs();
                let reject = (masks[i] as u32 & exit_bit(dx, dy) != 0) as u32;
                best = best.min((reject << 31) | (dist << 16) | poss[i]);
            }
        }
        TopologyKind::Torus => {
            let (w, h) = (t.width() as i32, t.height() as i32);
            for i in 0..n {
                let (dx, ax) = torus_axis(dst.x - xs[i], w);
                let (dy, ay) = torus_axis(dst.y - ys[i], h);
                let reject = (masks[i] as u32 & exit_bit(dx, dy) != 0) as u32;
                best = best.min((reject << 31) | ((ax + ay) << 16) | poss[i]);
            }
        }
    }
    best
}

/// Minimum packed `reject << 63 | distance << 32 | position` exit
/// objective over candidates `cands[range]` — the wide fallback for
/// perimeter-scale rings.
fn scan_packed_u64(
    t: Topology,
    dst: Coord,
    cands: &CandidateColumns,
    range: std::ops::Range<usize>,
) -> u64 {
    let xs = &cands.xs[range.clone()];
    let ys = &cands.ys[range.clone()];
    let masks = &cands.masks[range.clone()];
    let poss = &cands.poss[range];
    let n = xs.len();
    let mut best = u64::MAX;
    match t.kind() {
        TopologyKind::Mesh => {
            for i in 0..n {
                let (dx, dy) = (dst.x - xs[i], dst.y - ys[i]);
                let dist = dx.unsigned_abs() + dy.unsigned_abs();
                let reject = (masks[i] as u32 & exit_bit(dx, dy) != 0) as u64 * INFEASIBLE;
                best = best.min(((dist as u64) << 32) | poss[i] as u64 | reject);
            }
        }
        TopologyKind::Torus => {
            let (w, h) = (t.width() as i32, t.height() as i32);
            for i in 0..n {
                let (dx, ax) = torus_axis(dst.x - xs[i], w);
                let (dy, ay) = torus_axis(dst.y - ys[i], h);
                let reject = (masks[i] as u32 & exit_bit(dx, dy) != 0) as u64 * INFEASIBLE;
                best = best.min((((ax + ay) as u64) << 32) | poss[i] as u64 | reject);
            }
        }
    }
    best
}

/// Chebyshev distance on the topology (wraparound-aware per dimension).
fn topo_chebyshev(t: Topology, a: Coord, b: Coord) -> u32 {
    let dx = a.x.abs_diff(b.x);
    let dy = a.y.abs_diff(b.y);
    match t.kind() {
        ocp_mesh::TopologyKind::Mesh => dx.max(dy),
        ocp_mesh::TopologyKind::Torus => dx.min(t.width() - dx).max(dy.min(t.height() - dy)),
    }
}

/// Lower bound on the Chebyshev gap between two coordinate intervals
/// along one axis (wraparound-aware). Zero when they overlap.
fn axis_gap(a0: i32, a1: i32, b0: i32, b1: i32, extent: i32, torus: bool) -> i32 {
    if b0 <= a1 && a0 <= b1 {
        return 0;
    }
    if torus {
        // Cyclic gap in either direction around the ring of coordinates.
        (b0 - a1)
            .rem_euclid(extent)
            .min((a0 - b1).rem_euclid(extent))
    } else if b0 > a1 {
        b0 - a1
    } else {
        a0 - b1
    }
}

/// Merges fault regions that touch (Chebyshev distance ≤ 1) into ring
/// groups. Regions two apart in Manhattan distance can still be diagonal
/// neighbors, in which case their fault rings would interleave; merging is
/// the standard fix (extended fault regions).
///
/// A bounding-box prefilter skips cell-pair scans for region pairs whose
/// boxes are provably more than one apart on some axis — the per-axis
/// interval gap lower-bounds every pairwise Chebyshev distance, so the
/// filter never separates touching regions and the output is identical to
/// the unfiltered scan.
#[allow(clippy::needless_range_loop)]
pub(crate) fn merge_touching(t: Topology, regions: &[Region]) -> Vec<Region> {
    let n = regions.len();
    let torus = t.kind() == ocp_mesh::TopologyKind::Torus;
    let (w, h) = (t.width() as i32, t.height() as i32);
    let boxes: Vec<Option<ocp_geometry::Rect>> = regions.iter().map(Region::bbox).collect();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            let (Some(bi), Some(bj)) = (&boxes[i], &boxes[j]) else {
                continue;
            };
            let gx = axis_gap(bi.min.x, bi.max.x, bj.min.x, bj.max.x, w, torus);
            let gy = axis_gap(bi.min.y, bi.max.y, bj.min.y, bj.max.y, h, torus);
            if gx.max(gy) > 1 {
                continue;
            }
            let touching = regions[i]
                .iter()
                .any(|a| regions[j].iter().any(|b| topo_chebyshev(t, a, b) <= 1));
            if touching {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                parent[ri] = rj;
            }
        }
    }
    let mut grouped: std::collections::BTreeMap<usize, Region> = Default::default();
    for i in 0..n {
        let root = find(&mut parent, i);
        let entry = grouped.entry(root).or_default();
        for c in regions[i].iter() {
            entry.insert(c);
        }
    }
    grouped.into_values().collect()
}

impl FaultTolerantRouter {
    /// Builds a router for the machine view `enabled`, around the given
    /// fault regions (typically the disabled regions of a pipeline outcome,
    /// or the faulty blocks for the baseline model). Diagonally adjacent
    /// regions are merged into one ring group, as their rings interleave.
    ///
    /// # Panics
    /// Panics if a region cell is enabled, or region grids mismatch the
    /// topology.
    pub fn new(enabled: EnabledMap, regions: &[Region]) -> Self {
        crate::incremental::build_cold(enabled, regions, 1).0
    }

    /// [`new`](Self::new) with the cold-build pipeline banded over
    /// `threads` scoped workers, returning the per-phase
    /// [`BuildBreakdown`](crate::BuildBreakdown) alongside. Output is
    /// byte-identical for every thread count.
    pub fn new_with_threads(
        enabled: EnabledMap,
        regions: &[Region],
        threads: usize,
    ) -> (Self, crate::BuildBreakdown) {
        crate::incremental::build_cold(enabled, regions, threads)
    }

    /// Rebuilds a router for the epoch `(enabled, regions)` by patching
    /// `prev`'s tables instead of constructing from scratch: untouched
    /// segment/wide lines copy their slabs, unchanged rings `Arc`-share
    /// their indexes, and matched exit-directory segments are copied (see
    /// [`crate::incremental`]). The result is byte-identical to
    /// `Self::new(enabled, regions)` — pinned by
    /// [`table_digest`](Self::table_digest) equivalence suites — so
    /// callers may use it wherever a cold build is correct.
    ///
    /// # Panics
    /// Panics if `prev` was built for a different topology, or on the
    /// same region-grid violations as [`new`](Self::new).
    pub fn rebuild_from(
        prev: &Self,
        enabled: EnabledMap,
        regions: &[Region],
    ) -> (Self, crate::BuildBreakdown) {
        crate::incremental::rebuild(prev, enabled, regions)
    }

    /// FNV-1a digest of every routing table and grid this router answers
    /// queries from. Two routers with equal digests are byte-identical
    /// for routing purposes; the incremental-vs-cold equivalence suites
    /// pin on it.
    pub fn table_digest(&self) -> u64 {
        crate::incremental::digest(self)
    }

    /// The merged ring groups the router navigates around.
    pub fn groups(&self) -> &[Region] {
        &self.groups
    }

    /// The machine.
    pub fn topology(&self) -> Topology {
        self.enabled.topology()
    }

    /// The rings the router navigates.
    pub fn rings(&self) -> &[FaultRing] {
        &self.rings
    }

    /// The enabled view.
    pub fn enabled(&self) -> &EnabledMap {
        &self.enabled
    }

    /// Routes `src → dst`, detouring around fault regions on their rings.
    pub fn route(&self, src: Coord, dst: Coord) -> Result<Path, RoutingError> {
        let mut path = Path::new(src);
        SCRATCH
            .with(|s| self.traverse_indexed(src, dst, Some(&mut path.hops), &mut s.borrow_mut()))?;
        Ok(path)
    }

    /// Hop count of [`FaultTolerantRouter::route`] without allocating the
    /// [`Path`]: the fast path for callers that only need the cost of a
    /// route (load generators, admission estimates). Returns exactly
    /// `route(src, dst).map(|p| p.len())`.
    pub fn route_len(&self, src: Coord, dst: Coord) -> Result<usize, RoutingError> {
        SCRATCH.with(|s| self.traverse_indexed(src, dst, None, &mut s.borrow_mut()))
    }

    /// [`route`](FaultTolerantRouter::route) into a caller-owned [`Path`]
    /// buffer and scratch: the zero-allocation form for tight query loops.
    /// On success the path holds the full route and the hop count is
    /// returned; on error the buffer contents are unspecified.
    pub fn route_into(
        &self,
        src: Coord,
        dst: Coord,
        path: &mut Path,
        scratch: &mut RouteScratch,
    ) -> Result<usize, RoutingError> {
        path.hops.clear();
        path.hops.push(src);
        self.traverse_indexed(src, dst, Some(&mut path.hops), scratch)
    }

    /// [`route_len`](FaultTolerantRouter::route_len) with a caller-owned
    /// scratch, bypassing the thread-local.
    pub fn route_len_with(
        &self,
        src: Coord,
        dst: Coord,
        scratch: &mut RouteScratch,
    ) -> Result<usize, RoutingError> {
        self.traverse_indexed(src, dst, None, scratch)
    }

    /// Batched [`route_len`](FaultTolerantRouter::route_len) through the
    /// wide SoA engine: the whole batch moves through the snapshot index
    /// in lockstep lanes (see [`crate::wide`]), streaming each packed
    /// index table once per round instead of once per query. Returns one
    /// result per pair, in pair order, each *byte-identical* to calling
    /// `route_len` on that pair — the equivalence suite pins wide ==
    /// scalar indexed == reference.
    pub fn route_len_batch(&self, pairs: &[(Coord, Coord)]) -> Vec<Result<usize, RoutingError>> {
        let mut out = Vec::new();
        SCRATCH.with(|s| self.route_len_batch_with(pairs, &mut s.borrow_mut(), &mut out));
        out
    }

    /// [`route_len_batch`](FaultTolerantRouter::route_len_batch) with a
    /// caller-owned scratch and output buffer: the zero-allocation form
    /// for serving loops. `out` is cleared and refilled with one result
    /// per pair.
    pub fn route_len_batch_with(
        &self,
        pairs: &[(Coord, Coord)],
        scratch: &mut RouteScratch,
        out: &mut Vec<Result<usize, RoutingError>>,
    ) {
        crate::wide::route_len_batch_wide(self, pairs, scratch, out);
    }

    /// Up to `k` pairwise vertex-disjoint routes `src → dst` (disjoint
    /// except at the endpoints). See [`crate::disjoint`] for the
    /// construction and the stretch bound the result asserts; path 1 of a
    /// `k = 1` query is byte-identical to
    /// [`route`](FaultTolerantRouter::route).
    pub fn route_disjoint(
        &self,
        src: Coord,
        dst: Coord,
        k: usize,
    ) -> Result<crate::disjoint::DisjointRoutes, RoutingError> {
        SCRATCH.with(|s| crate::disjoint::compute(self, src, dst, k, &mut s.borrow_mut()))
    }

    /// [`route_disjoint`](FaultTolerantRouter::route_disjoint) with a
    /// caller-owned scratch (the serve handles reuse theirs across
    /// queries, as with the other `_with` entry points).
    pub fn route_disjoint_with(
        &self,
        src: Coord,
        dst: Coord,
        k: usize,
        scratch: &mut RouteScratch,
    ) -> Result<crate::disjoint::DisjointRoutes, RoutingError> {
        crate::disjoint::compute(self, src, dst, k, scratch)
    }

    /// The pre-index per-hop algorithm, preserved verbatim: the oracle for
    /// the equivalence suite and the "old" side of the E17 `routeperf`
    /// comparison. Behaviorally identical to
    /// [`route`](FaultTolerantRouter::route).
    pub fn route_reference(&self, src: Coord, dst: Coord) -> Result<Path, RoutingError> {
        let mut path = Path::new(src);
        self.traverse_reference(src, dst, Some(&mut path.hops))?;
        Ok(path)
    }

    /// Hop-count form of
    /// [`route_reference`](FaultTolerantRouter::route_reference).
    pub fn route_len_reference(&self, src: Coord, dst: Coord) -> Result<usize, RoutingError> {
        self.traverse_reference(src, dst, None)
    }

    /// The indexed traversal core: XY segments plus ring walks. An
    /// unobstructed XY segment is resolved with one [`crate::index`] probe
    /// instead of one enabled-map check per hop; ring encounters use the
    /// O(1) position map, the exit-candidate index, and the per-traversal
    /// exit memo in `scratch`. Records every visited cell into `record`
    /// when present (the `route` case) or only counts hops (the
    /// `route_len` case). Returns the number of links traversed.
    ///
    /// Must stay byte-identical to
    /// [`traverse_reference`](FaultTolerantRouter::traverse_reference) —
    /// same paths, hop counts and errors — which `tests/equivalence.rs`
    /// enforces on random mesh and torus maps.
    pub(crate) fn traverse_indexed(
        &self,
        src: Coord,
        dst: Coord,
        mut record: Option<&mut Vec<Coord>>,
        scratch: &mut RouteScratch,
    ) -> Result<usize, RoutingError> {
        let t = self.topology();
        for endpoint in [src, dst] {
            if !self.enabled.is_enabled(endpoint) {
                return Err(RoutingError::EndpointDisabled { node: endpoint });
            }
        }
        scratch.begin();
        let mut hops = 0usize;
        let mut cur = src;
        let cap = (t.len() * 4).max(64);

        while cur != dst {
            if hops + 1 > cap {
                return Err(RoutingError::LivelockDetected);
            }
            let dir = preferred_direction(t, cur, dst).expect("cur != dst");
            let steps = match dir {
                Direction::East | Direction::West => {
                    wrap_delta(t, cur.x, dst.x, t.width()).unsigned_abs() as usize
                }
                Direction::North | Direction::South => {
                    wrap_delta(t, cur.y, dst.y, t.height()).unsigned_abs() as usize
                }
            };
            let seg = self.index.segments.probe(cur, dir, steps);
            // The reference checks the cap before every hop; a segment that
            // would run past it fails at the same hop count.
            if hops + seg.advance > cap {
                return Err(RoutingError::LivelockDetected);
            }
            match record.as_mut() {
                Some(hops_out) => {
                    for _ in 0..seg.advance {
                        cur = t
                            .neighbor(cur, dir)
                            .coord()
                            .expect("XY never leaves the machine");
                        hops_out.push(cur);
                    }
                }
                None => cur = advance_by(t, cur, dir, seg.advance),
            }
            hops += seg.advance;
            let Some((_, region_code)) = seg.blocked else {
                continue; // this axis is fully corrected; re-aim
            };
            // The reference's loop-top check for the iteration that
            // discovers the blocked hop.
            if hops + 1 > cap {
                return Err(RoutingError::LivelockDetected);
            }
            // Blocked: the probe already identified the region.
            assert_ne!(
                region_code,
                crate::index::NO_REGION,
                "disabled non-region cell blocks XY"
            );
            let region_idx = region_code as usize;
            let ring = &self.rings[region_idx];
            if !ring.is_cycle() {
                return Err(RoutingError::BoundaryFaultChain);
            }
            if !scratch.note_entry(region_idx, cur) {
                return Err(RoutingError::LivelockDetected);
            }
            let here = self
                .index
                .position(region_idx, cur)
                .expect("blocked node is on the blocking region's ring");
            let exit = match scratch.lookup_exit(region_idx) {
                Some(memoized) => memoized,
                None => {
                    let computed = self.best_exit_indexed(region_idx, dst);
                    scratch.store_exit(region_idx, computed);
                    computed
                }
            };
            let exit = exit.ok_or(RoutingError::LivelockDetected)? as usize;
            match record.as_mut() {
                Some(hops_out) => {
                    let walk = ring.shorter_walk(here, exit);
                    hops += walk.len();
                    hops_out.extend(walk);
                    cur = *hops_out.last().expect("path never empty");
                }
                None => {
                    hops += ring.shorter_walk_len(here, exit);
                    cur = ring.cycle_cell(exit).expect("exit is a cycle position");
                }
            }
        }
        Ok(hops)
    }

    /// Exit selection over the candidate index: evaluates the same
    /// feasibility predicate and distance objective as
    /// [`best_exit`](FaultTolerantRouter::best_exit), but only at the
    /// positions where the objective can attain its minimum (corners,
    /// blocked-status transitions, destination-aligned and torus-antipodal
    /// cells — see [`crate::index::RingIndex`]). The lexicographic
    /// (distance, position) minimum reproduces `min_by_key`'s
    /// first-minimum tie-break exactly.
    fn best_exit_indexed(&self, region_idx: usize, dst: Coord) -> Option<u32> {
        let t = self.topology();
        if !self.rings[region_idx].is_cycle() {
            return None;
        }
        let ring_index = &self.index.rings[region_idx];
        if ring_index.compact() {
            // Packed objective: `reject << 31 | distance << 16 | position`
            // (positions fit 16 bits, distances 15 — checked at build).
            // The u32 minimum is exactly the lexicographic (feasibility,
            // distance, position) minimum — `min_by_key`'s first-minimum
            // tie-break — and bit 31 of the result says whether any
            // candidate was feasible. One branch-free u32 reduction per
            // candidate, which auto-vectorizes, over the index's own
            // slices (the candidates are never copied).
            let mut best = u32::MAX;
            ring_index.candidate_slices(t, dst, |c, r| {
                best = best.min(scan_packed_u32(t, dst, c, r));
            });
            (best >> 31 == 0).then_some(best & 0xFFFF)
        } else {
            // Wide fallback for perimeter-scale rings: same objective in
            // u64 lanes (`reject << 63 | distance << 32 | position`).
            let mut best = u64::MAX;
            ring_index.candidate_slices(t, dst, |c, r| {
                best = best.min(scan_packed_u64(t, dst, c, r));
            });
            (best & INFEASIBLE == 0).then_some(best as u32)
        }
    }

    /// The pre-index traversal core, preserved for
    /// [`route_reference`](FaultTolerantRouter::route_reference): per-hop
    /// XY steps, linear `position_of`, full-perimeter `best_exit`, and a
    /// per-query `HashSet` livelock guard.
    fn traverse_reference(
        &self,
        src: Coord,
        dst: Coord,
        mut record: Option<&mut Vec<Coord>>,
    ) -> Result<usize, RoutingError> {
        let t = self.topology();
        for endpoint in [src, dst] {
            if !self.enabled.is_enabled(endpoint) {
                return Err(RoutingError::EndpointDisabled { node: endpoint });
            }
        }
        let mut hops = 0usize;
        let mut cur = src;
        // Livelock guard: never traverse the same ring from the same entry
        // cell twice.
        let mut ring_entries: HashSet<(usize, Coord)> = HashSet::new();
        let cap = (t.len() * 4).max(64);

        while cur != dst {
            if hops + 1 > cap {
                return Err(RoutingError::LivelockDetected);
            }
            let dir = preferred_direction(t, cur, dst).expect("cur != dst");
            let next = t
                .neighbor(cur, dir)
                .coord()
                .expect("XY never leaves the machine");
            if self.enabled.is_enabled(next) {
                if let Some(hops_out) = record.as_mut() {
                    hops_out.push(next);
                }
                hops += 1;
                cur = next;
                continue;
            }
            // Blocked: identify the region and traverse its ring.
            let region_idx = self
                .region_of
                .get(next)
                .expect("disabled non-region cell blocks XY");
            let ring = &self.rings[region_idx];
            if !ring.is_cycle() {
                return Err(RoutingError::BoundaryFaultChain);
            }
            if !ring_entries.insert((region_idx, cur)) {
                return Err(RoutingError::LivelockDetected);
            }
            let here = ring
                .position_of(cur)
                .expect("blocked node is on the blocking region's ring");
            let exit = self
                .best_exit(ring, dst)
                .ok_or(RoutingError::LivelockDetected)?;
            match record.as_mut() {
                Some(hops_out) => {
                    let walk = ring.shorter_walk(here, exit);
                    hops += walk.len();
                    hops_out.extend(walk);
                    cur = *hops_out.last().expect("path never empty");
                }
                None => {
                    hops += ring.shorter_walk_len(here, exit);
                    cur = ring.cycle_cell(exit).expect("exit is a cycle position");
                }
            }
        }
        Ok(hops)
    }

    /// The ring position whose cell minimizes remaining distance to `dst`
    /// among cells from which the immediate XY hop is not blocked by the
    /// same ring's region (or is the destination itself).
    fn best_exit(&self, ring: &FaultRing, dst: Coord) -> Option<usize> {
        let t = self.topology();
        let cells = match &ring.shape {
            crate::fault_ring::RingShape::Cycle(v) => v,
            crate::fault_ring::RingShape::Chain(_) => return None,
        };
        cells
            .iter()
            .enumerate()
            .filter(|(_, &c)| {
                if c == dst {
                    return true;
                }
                match preferred_direction(t, c, dst) {
                    Some(d) => {
                        let nxt = t.neighbor(c, d).coord().expect("XY stays inside");
                        // Exit must immediately escape this region (other
                        // regions are handled by subsequent traversals).
                        self.region_of.get(nxt) != &Some(ring.region_index)
                    }
                    None => true,
                }
            })
            .min_by_key(|(_, &c)| t.distance(c, dst))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_core::prelude::*;
    use ocp_mesh::Topology;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    /// Router over the disabled regions of a labeled machine.
    fn dr_router(t: Topology, faults: &[Coord]) -> FaultTolerantRouter {
        let map = FaultMap::new(t, faults.iter().copied());
        let out = run_pipeline(&map, &PipelineConfig::default());
        let enabled = crate::path::EnabledMap::from_outcome(&out);
        let regions: Vec<Region> = out.regions.iter().map(|r| r.cells.clone()).collect();
        FaultTolerantRouter::new(enabled, &regions)
    }

    #[test]
    fn unobstructed_routes_stay_minimal() {
        let router = dr_router(Topology::mesh(10, 10), &[c(5, 5)]);
        let p = router.route(c(0, 0), c(3, 0)).unwrap();
        assert_eq!(p.len(), 3);
        p.validate(router.enabled()).unwrap();
    }

    #[test]
    fn detours_around_single_fault() {
        let router = dr_router(Topology::mesh(9, 9), &[c(4, 4)]);
        let p = router.route(c(0, 4), c(8, 4)).unwrap();
        p.validate(router.enabled()).unwrap();
        // Minimal possible detour around one cell costs 2 extra hops.
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn detours_around_block() {
        // Diagonal faults -> 2x2 disabled block in the middle of row 4/5.
        let router = dr_router(Topology::mesh(12, 12), &[c(5, 4), c(6, 5)]);
        let p = router.route(c(0, 4), c(11, 4)).unwrap();
        p.validate(router.enabled()).unwrap();
        assert!(p.len() >= 11, "must detour");
        assert!(p.len() <= 15, "detour should be tight, got {}", p.len());
    }

    #[test]
    fn all_pairs_delivery_matches_bfs_reachability() {
        let t = Topology::mesh(10, 10);
        let faults = [c(4, 4), c(5, 5), c(4, 5), c(8, 2), c(2, 7)];
        let router = dr_router(t, &faults);
        let enabled = router.enabled().clone();
        let nodes = enabled.enabled_coords();
        let mut routed = 0usize;
        let mut failures = 0usize;
        for (i, &src) in nodes.iter().enumerate().step_by(7) {
            for &dst in nodes.iter().skip(i % 3).step_by(11) {
                let bfs = crate::oracle::bfs_path(&enabled, src, dst);
                match (router.route(src, dst), bfs) {
                    (Ok(p), Ok(q)) => {
                        p.validate(&enabled).unwrap();
                        assert!(p.len() >= q.len());
                        routed += 1;
                    }
                    (Err(_), Ok(_)) => failures += 1,
                    (_, Err(_)) => {} // genuinely unreachable
                }
            }
        }
        assert!(routed > 50, "sampled too few pairs");
        assert_eq!(failures, 0, "router failed on reachable pairs");
    }

    #[test]
    fn boundary_chain_is_reported() {
        // Fault hugging the west edge: its ring is an open chain; routes
        // blocked by it report BoundaryFaultChain.
        let router = dr_router(Topology::mesh(8, 8), &[c(0, 4)]);
        let err = router.route(c(0, 0), c(0, 7)).unwrap_err();
        assert_eq!(err, RoutingError::BoundaryFaultChain);
        // ...but unrelated routes still work.
        assert!(router.route(c(3, 0), c(3, 7)).is_ok());
    }

    #[test]
    fn torus_ring_traversal_works_at_seam() {
        let router = dr_router(Topology::torus(10, 10), &[c(0, 5)]);
        let p = router.route(c(8, 5), c(2, 5)).unwrap();
        p.validate(router.enabled()).unwrap();
        // Minimal distance is 4 through the seam; the fault adds a detour.
        assert!(p.len() >= 4 && p.len() <= 8, "got {}", p.len());
    }

    #[test]
    fn route_len_matches_route_everywhere() {
        // Mixed workload: open space, a merged diagonal block, a lone
        // fault, and a boundary chain — every router outcome class.
        let t = Topology::mesh(12, 12);
        let faults = [c(5, 4), c(6, 5), c(9, 9), c(0, 6), c(2, 2)];
        let router = dr_router(t, &faults);
        let nodes = router.enabled().enabled_coords();
        let mut checked = 0usize;
        for (i, &src) in nodes.iter().enumerate().step_by(5) {
            for &dst in nodes.iter().skip(i % 4).step_by(9) {
                match (router.route(src, dst), router.route_len(src, dst)) {
                    (Ok(p), Ok(len)) => assert_eq!(p.len(), len, "{src}->{dst}"),
                    (Err(a), Err(b)) => assert_eq!(a, b, "{src}->{dst}"),
                    (a, b) => panic!("{src}->{dst}: route {a:?} vs route_len {b:?}"),
                }
                checked += 1;
            }
        }
        assert!(checked > 100, "sampled too few pairs");
    }

    #[test]
    fn route_len_matches_on_torus_seam() {
        let router = dr_router(Topology::torus(10, 10), &[c(0, 5)]);
        let p = router.route(c(8, 5), c(2, 5)).unwrap();
        assert_eq!(router.route_len(c(8, 5), c(2, 5)).unwrap(), p.len());
    }

    #[test]
    fn cloned_router_routes_identically() {
        let router = dr_router(Topology::mesh(9, 9), &[c(4, 4)]);
        let copy = router.clone();
        let (src, dst) = (c(0, 4), c(8, 4));
        assert_eq!(router.route(src, dst), copy.route(src, dst));
        assert_eq!(copy.groups().len(), router.groups().len());
    }

    #[test]
    fn endpoint_in_region_rejected() {
        let router = dr_router(Topology::mesh(8, 8), &[c(3, 3)]);
        assert!(matches!(
            router.route(c(3, 3), c(0, 0)),
            Err(RoutingError::EndpointDisabled { .. })
        ));
    }
}
