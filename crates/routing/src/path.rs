//! Paths, the enabled-node view, and routing errors.

use ocp_core::prelude::*;
use ocp_mesh::{Coord, Grid, Topology};
use serde::{Deserialize, Serialize};

/// The routing-relevant view of a labeled machine: which nodes may carry
/// traffic. Only enabled nodes participate in routing (Section 3).
#[derive(Clone, Debug)]
pub struct EnabledMap {
    grid: Grid<bool>,
}

impl EnabledMap {
    /// Builds the view from a pipeline outcome's activation grid.
    pub fn from_outcome(outcome: &PipelineOutcome) -> Self {
        Self {
            grid: outcome
                .activation
                .map(|_, &a| a == ActivationState::Enabled),
        }
    }

    /// View in which **all unsafe nodes are disabled** — the classical
    /// faulty-block model, used as the baseline in model comparisons.
    pub fn from_safety(outcome: &PipelineOutcome) -> Self {
        Self {
            grid: outcome.safety.map(|_, &s| s == SafetyState::Safe),
        }
    }

    /// A fully enabled machine (fault-free baseline).
    pub fn all_enabled(topology: Topology) -> Self {
        Self {
            grid: Grid::filled(topology, true),
        }
    }

    /// Direct construction from a boolean grid (true = enabled).
    pub fn from_grid(grid: Grid<bool>) -> Self {
        Self { grid }
    }

    /// The machine.
    pub fn topology(&self) -> Topology {
        self.grid.topology()
    }

    /// True if `c` is a real node and enabled.
    pub fn is_enabled(&self, c: Coord) -> bool {
        self.grid.try_get(c).copied().unwrap_or(false)
    }

    /// Number of enabled nodes.
    pub fn enabled_count(&self) -> usize {
        self.grid.count_where(|&e| e)
    }

    /// All enabled coordinates.
    pub fn enabled_coords(&self) -> Vec<Coord> {
        self.grid.coords_where(|&e| e).collect()
    }
}

/// A hop-by-hop route.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    /// Visited nodes, source first, destination last.
    pub hops: Vec<Coord>,
}

impl Path {
    /// A path starting at `src`.
    pub fn new(src: Coord) -> Self {
        Self { hops: vec![src] }
    }

    /// Number of links traversed.
    pub fn len(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }

    /// True for a single-node path.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Source node.
    pub fn src(&self) -> Coord {
        self.hops[0]
    }

    /// Destination node.
    pub fn dst(&self) -> Coord {
        *self.hops.last().expect("paths are never empty")
    }

    /// Hop ratio over the topology's minimal distance (1.0 = minimal).
    /// `None` for zero-distance paths.
    pub fn stretch(&self, topology: Topology) -> Option<f64> {
        let d = topology.distance(self.src(), self.dst());
        (d > 0).then(|| self.len() as f64 / d as f64)
    }

    /// Checks that consecutive hops are mesh links of `topology` and every
    /// visited node is enabled.
    pub fn validate(&self, enabled: &EnabledMap) -> Result<(), RoutingError> {
        let t = enabled.topology();
        for &c in &self.hops {
            if !enabled.is_enabled(c) {
                return Err(RoutingError::DisabledHop { node: c });
            }
        }
        for w in self.hops.windows(2) {
            let ok = ocp_mesh::DIRECTIONS
                .into_iter()
                .any(|d| t.neighbor(w[0], d).coord() == Some(w[1]));
            if !ok {
                return Err(RoutingError::NotALink {
                    from: w[0],
                    to: w[1],
                });
            }
        }
        Ok(())
    }
}

/// Why a route could not be produced.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingError {
    /// Source or destination is disabled.
    EndpointDisabled {
        /// The disabled endpoint.
        node: Coord,
    },
    /// No enabled path exists at all (network partitioned by faults).
    Unreachable,
    /// The fault-tolerant router gave up (revisited a blocking state).
    LivelockDetected,
    /// The blocking fault region touches the mesh boundary, so it has no
    /// cyclic fault ring (an open fault chain); this router does not
    /// traverse chains.
    BoundaryFaultChain,
    /// A path hop visits a disabled node (validation failure).
    DisabledHop {
        /// The offending node.
        node: Coord,
    },
    /// Two consecutive path nodes are not connected by a link.
    NotALink {
        /// Tail of the missing link.
        from: Coord,
        /// Head of the missing link.
        to: Coord,
    },
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for RoutingError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn path_basics() {
        let mut p = Path::new(c(0, 0));
        p.hops.extend([c(1, 0), c(1, 1)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.src(), c(0, 0));
        assert_eq!(p.dst(), c(1, 1));
        assert_eq!(p.stretch(Topology::mesh(4, 4)), Some(1.0));
    }

    #[test]
    fn stretch_detects_detours() {
        let mut p = Path::new(c(0, 0));
        p.hops.extend([c(0, 1), c(1, 1), c(1, 0), c(2, 0)]);
        assert_eq!(p.stretch(Topology::mesh(4, 4)), Some(2.0));
        let single = Path::new(c(1, 1));
        assert_eq!(single.stretch(Topology::mesh(4, 4)), None);
    }

    #[test]
    fn validation_catches_teleports_and_disabled() {
        let t = Topology::mesh(4, 4);
        let enabled = EnabledMap::all_enabled(t);
        let mut p = Path::new(c(0, 0));
        p.hops.push(c(2, 0)); // not a link
        assert!(matches!(
            p.validate(&enabled),
            Err(RoutingError::NotALink { .. })
        ));

        let mut grid = ocp_mesh::Grid::filled(t, true);
        grid.set(c(1, 0), false);
        let holed = EnabledMap::from_grid(grid);
        let mut p = Path::new(c(0, 0));
        p.hops.push(c(1, 0));
        assert!(matches!(
            p.validate(&holed),
            Err(RoutingError::DisabledHop { .. })
        ));
    }

    #[test]
    fn torus_wrap_hop_is_a_link() {
        let t = Topology::torus(4, 4);
        let enabled = EnabledMap::all_enabled(t);
        let mut p = Path::new(c(3, 0));
        p.hops.push(c(0, 0));
        assert!(p.validate(&enabled).is_ok());
    }

    #[test]
    fn enabled_map_views_differ() {
        use ocp_mesh::Topology;
        // Section 3 example: DR model enables 6 more nodes than FB model.
        let map = FaultMap::new(Topology::mesh(6, 6), [c(1, 3), c(2, 1), c(3, 2)]);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let dr = EnabledMap::from_outcome(&out);
        let fb = EnabledMap::from_safety(&out);
        assert_eq!(dr.enabled_count() - fb.enabled_count(), 6);
        assert!(dr.is_enabled(c(2, 2)));
        assert!(!fb.is_enabled(c(2, 2)));
        assert!(!dr.is_enabled(c(1, 3)));
        // Outside-machine coordinates are never enabled.
        assert!(!dr.is_enabled(c(-1, 0)));
    }
}
