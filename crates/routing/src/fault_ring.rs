//! Fault rings: the cycle of enabled nodes hugging a fault region.
//!
//! Following Boppana–Chalasani, the ring of a fault region consists of the
//! enabled nodes within **Chebyshev distance 1** of the region (row, column
//! or diagonal contact). For a connected, orthogonally convex region away
//! from the mesh boundary, those cells form a simple 4-connected cycle —
//! which is exactly why the paper insists fault regions be orthogonally
//! convex: messages can progress around the region without backtracking.
//! Regions touching the mesh boundary have open rings ("fault chains") and
//! are reported as [`RingShape::Chain`].

use crate::path::EnabledMap;
use ocp_geometry::Region;
use ocp_mesh::{Coord, Topology, TopologyKind};
use std::collections::BTreeSet;

/// Ring topology around one fault region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RingShape {
    /// A simple cycle: consecutive cells (and last→first) are mesh links.
    Cycle(Vec<Coord>),
    /// The region touches the mesh boundary (or the halo is otherwise not a
    /// single simple cycle); cells are the in-machine halo, unordered.
    Chain(Vec<Coord>),
}

/// The fault ring of one region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRing {
    /// Index of the region this ring surrounds (caller's region list).
    pub region_index: usize,
    /// The ring cells.
    pub shape: RingShape,
}

impl FaultRing {
    /// All ring cells regardless of shape.
    pub fn cells(&self) -> &[Coord] {
        match &self.shape {
            RingShape::Cycle(v) | RingShape::Chain(v) => v,
        }
    }

    /// True if the ring is a traversable cycle.
    pub fn is_cycle(&self) -> bool {
        matches!(self.shape, RingShape::Cycle(_))
    }

    /// Position of `c` on the cycle (`None` for chains or non-members).
    pub fn position_of(&self, c: Coord) -> Option<usize> {
        match &self.shape {
            RingShape::Cycle(v) => v.iter().position(|&x| x == c),
            RingShape::Chain(_) => None,
        }
    }

    /// The cells walked from position `from` to position `to` along the
    /// cycle in the given rotational direction (`clockwise` here simply
    /// means decreasing index). The result starts at the cell *after*
    /// `from` and ends at `to`; empty when `from == to`.
    pub fn walk(&self, from: usize, to: usize, decreasing: bool) -> Vec<Coord> {
        let RingShape::Cycle(v) = &self.shape else {
            return Vec::new();
        };
        let n = v.len();
        let mut out = Vec::new();
        let mut i = from;
        while i != to {
            i = if decreasing {
                (i + n - 1) % n
            } else {
                (i + 1) % n
            };
            out.push(v[i]);
        }
        out
    }

    /// The shorter of the two walks between two cycle positions.
    pub fn shorter_walk(&self, from: usize, to: usize) -> Vec<Coord> {
        let inc = self.walk(from, to, false);
        let dec = self.walk(from, to, true);
        if inc.len() <= dec.len() {
            inc
        } else {
            dec
        }
    }

    /// Length of [`FaultRing::walk`] without materializing the cells
    /// (0 for chains).
    pub fn walk_len(&self, from: usize, to: usize, decreasing: bool) -> usize {
        let RingShape::Cycle(v) = &self.shape else {
            return 0;
        };
        let n = v.len();
        if decreasing {
            (from + n - to) % n
        } else {
            (to + n - from) % n
        }
    }

    /// Length of [`FaultRing::shorter_walk`] without materializing the
    /// cells (same tie-break: the increasing walk wins ties).
    pub fn shorter_walk_len(&self, from: usize, to: usize) -> usize {
        self.walk_len(from, to, false)
            .min(self.walk_len(from, to, true))
    }

    /// The cell at cycle position `pos` (`None` for chains or out of
    /// range).
    pub fn cycle_cell(&self, pos: usize) -> Option<Coord> {
        match &self.shape {
            RingShape::Cycle(v) => v.get(pos).copied(),
            RingShape::Chain(_) => None,
        }
    }
}

/// The in-machine cells at Chebyshev distance exactly 1 from `region`
/// (topology-aware: wraps on tori). `None` entries in the 8-neighborhood
/// that fall outside a mesh are recorded via the `touches_boundary` flag.
fn chebyshev_halo(topology: Topology, region: &Region) -> (BTreeSet<Coord>, bool) {
    let mut halo = BTreeSet::new();
    let mut touches_boundary = false;
    for c in region.iter() {
        for dx in -1..=1 {
            for dy in -1..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let raw = Coord::new(c.x + dx, c.y + dy);
                let resolved = match topology.kind() {
                    TopologyKind::Mesh => {
                        if topology.contains(raw) {
                            raw
                        } else {
                            touches_boundary = true;
                            continue;
                        }
                    }
                    TopologyKind::Torus => topology.wrap(raw),
                };
                if !region.contains(resolved) {
                    halo.insert(resolved);
                }
            }
        }
    }
    (halo, touches_boundary)
}

/// Builds the fault ring of one region.
///
/// Every halo cell of a properly labeled fault region is enabled (regions
/// are pairwise ≥ 2 apart); this is asserted in debug builds. If the halo
/// is not a single simple cycle — the region touches a mesh boundary, or a
/// degenerate small-torus interaction — a [`RingShape::Chain`] is returned.
pub fn build_ring(enabled: &EnabledMap, region: &Region, region_index: usize) -> FaultRing {
    let topology = enabled.topology();
    let (halo, touches_boundary) = chebyshev_halo(topology, region);
    debug_assert!(
        halo.iter().all(|&c| enabled.is_enabled(c)),
        "halo cell of region {region_index} is disabled — regions closer than the model guarantees"
    );
    let chain = |halo: &BTreeSet<Coord>| FaultRing {
        region_index,
        shape: RingShape::Chain(halo.iter().copied().collect()),
    };
    if touches_boundary || halo.is_empty() {
        return chain(&halo);
    }

    // The halo must be 2-regular under mesh adjacency to be a simple cycle.
    let neighbors_in_halo = |c: Coord| -> Vec<Coord> {
        ocp_mesh::Neighborhood::of(topology, c)
            .nodes()
            .filter(|n| halo.contains(n))
            .collect()
    };
    for &c in &halo {
        if neighbors_in_halo(c).len() != 2 {
            return chain(&halo);
        }
    }

    // Walk the cycle.
    let start = *halo.first().expect("halo nonempty");
    let mut cycle = vec![start];
    let mut prev = start;
    let mut cur = neighbors_in_halo(start)[0];
    while cur != start {
        cycle.push(cur);
        let nbrs = neighbors_in_halo(cur);
        let next = if nbrs[0] == prev { nbrs[1] } else { nbrs[0] };
        prev = cur;
        cur = next;
    }
    if cycle.len() != halo.len() {
        // Multiple disjoint cycles (cannot happen for orthogonally convex
        // regions, which have no holes) — degrade gracefully.
        return chain(&halo);
    }
    FaultRing {
        region_index,
        shape: RingShape::Cycle(cycle),
    }
}

/// Builds the rings of all regions.
pub fn build_rings(enabled: &EnabledMap, regions: &[Region]) -> Vec<FaultRing> {
    regions
        .iter()
        .enumerate()
        .map(|(i, r)| build_ring(enabled, r, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_mesh::Grid;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn enabled_except(t: Topology, region: &Region) -> EnabledMap {
        let grid = Grid::from_fn(t, |cc| !region.contains(cc));
        EnabledMap::from_grid(grid)
    }

    #[test]
    fn single_cell_ring_is_eight_cycle() {
        let t = Topology::mesh(7, 7);
        let region = Region::from_cells([c(3, 3)]);
        let ring = build_ring(&enabled_except(t, &region), &region, 0);
        assert!(ring.is_cycle());
        assert_eq!(ring.cells().len(), 8);
        // consecutive cells are links
        if let RingShape::Cycle(v) = &ring.shape {
            for i in 0..v.len() {
                let a = v[i];
                let b = v[(i + 1) % v.len()];
                assert!(a.is_adjacent(b), "{a} !~ {b}");
            }
        }
    }

    #[test]
    fn rectangle_ring_length() {
        // 2x3 rectangle: ring = 2*(2+3) + 4 corners = 14 cells.
        let t = Topology::mesh(10, 10);
        let region = Region::from_rect(ocp_geometry::Rect::new(c(3, 3), c(4, 5)));
        let ring = build_ring(&enabled_except(t, &region), &region, 0);
        assert!(ring.is_cycle());
        assert_eq!(ring.cells().len(), 14);
    }

    #[test]
    fn l_shape_ring_is_cycle() {
        let t = Topology::mesh(12, 12);
        let cells = ocp_geometry::shapes::translate(ocp_geometry::shapes::l_shape(4, 2), 4, 4);
        let region = Region::from_cells(cells);
        let ring = build_ring(&enabled_except(t, &region), &region, 0);
        assert!(ring.is_cycle(), "L-shape halo should be one cycle");
        // All ring cells are outside the region at Chebyshev distance 1.
        for &rc in ring.cells() {
            assert!(!region.contains(rc));
            let d = region.iter().map(|q| q.chebyshev(rc)).min().unwrap();
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn boundary_region_yields_chain() {
        let t = Topology::mesh(8, 8);
        let region = Region::from_cells([c(0, 4)]);
        let ring = build_ring(&enabled_except(t, &region), &region, 0);
        assert!(!ring.is_cycle());
        assert_eq!(ring.cells().len(), 5); // 8-neighborhood clipped at x=-1
    }

    #[test]
    fn torus_boundary_region_still_cycles() {
        let t = Topology::torus(8, 8);
        let region = Region::from_cells([c(0, 4)]);
        let ring = build_ring(&enabled_except(t, &region), &region, 0);
        assert!(ring.is_cycle(), "no boundary on a torus");
        assert_eq!(ring.cells().len(), 8);
        assert!(ring.cells().contains(&c(7, 4)));
    }

    #[test]
    fn walk_directions_and_shorter() {
        let t = Topology::mesh(7, 7);
        let region = Region::from_cells([c(3, 3)]);
        let ring = build_ring(&enabled_except(t, &region), &region, 0);
        let from = ring.position_of(c(2, 2)).unwrap();
        let to = ring.position_of(c(4, 4)).unwrap();
        let inc = ring.walk(from, to, false);
        let dec = ring.walk(from, to, true);
        assert_eq!(inc.len() + dec.len(), 8); // both ways around the 8-cycle
        assert_eq!(ring.shorter_walk(from, to).len(), inc.len().min(dec.len()));
        assert!(ring.walk(from, from, false).is_empty());
        assert_eq!(inc.last(), Some(&c(4, 4)));
        assert_eq!(dec.last(), Some(&c(4, 4)));
    }

    #[test]
    fn walk_len_matches_materialized_walks() {
        let t = Topology::mesh(10, 10);
        let region = Region::from_rect(ocp_geometry::Rect::new(c(3, 3), c(4, 5)));
        let ring = build_ring(&enabled_except(t, &region), &region, 0);
        let n = ring.cells().len();
        for from in 0..n {
            for to in 0..n {
                for dec in [false, true] {
                    assert_eq!(ring.walk(from, to, dec).len(), ring.walk_len(from, to, dec));
                }
                let walk = ring.shorter_walk(from, to);
                assert_eq!(walk.len(), ring.shorter_walk_len(from, to));
                // Both walks land on the same cell: position `to`.
                if from != to {
                    assert_eq!(walk.last().copied(), ring.cycle_cell(to));
                }
            }
        }
    }

    #[test]
    fn chain_walk_helpers_degrade_to_zero() {
        let t = Topology::mesh(8, 8);
        let region = Region::from_cells([c(0, 4)]);
        let ring = build_ring(&enabled_except(t, &region), &region, 0);
        assert!(!ring.is_cycle());
        assert_eq!(ring.walk_len(0, 3, false), 0);
        assert_eq!(ring.cycle_cell(0), None);
    }

    #[test]
    fn u_shape_pocket_makes_chain_or_cycle_consistently() {
        // A U-shaped (non-convex) region: the pocket cell is halo too; the
        // builder must not produce an invalid cycle — either a valid single
        // cycle or a chain fallback.
        let t = Topology::mesh(12, 12);
        let cells = ocp_geometry::shapes::translate(ocp_geometry::shapes::u_shape(3, 1), 4, 4);
        let region = Region::from_cells(cells);
        let ring = build_ring(&enabled_except(t, &region), &region, 0);
        if let RingShape::Cycle(v) = &ring.shape {
            for i in 0..v.len() {
                assert!(v[i].is_adjacent(v[(i + 1) % v.len()]));
            }
            let unique: BTreeSet<_> = v.iter().collect();
            assert_eq!(unique.len(), v.len());
        }
    }
}
