//! Model-quality comparison: faulty blocks vs disabled regions as the
//! routing fault model (experiment E10).

use crate::oracle::bfs_path;
use crate::path::EnabledMap;
use crate::router::FaultTolerantRouter;
use ocp_core::prelude::*;
use ocp_geometry::Region;
use ocp_mesh::Coord;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Routing quality of one fault model on one labeled machine.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ModelMetrics {
    /// Nodes allowed to participate in routing.
    pub enabled_nodes: usize,
    /// Sampled (src, dst) pairs attempted.
    pub pairs: usize,
    /// Pairs the fault-tolerant router delivered.
    pub delivered: usize,
    /// Pairs that failed because a fault region touches the boundary.
    pub boundary_chain_failures: usize,
    /// Pairs that failed for other reasons (livelock guard, partition).
    pub other_failures: usize,
    /// Mean stretch of delivered routes over the BFS-minimal length
    /// (1.0 = optimal).
    pub avg_stretch: f64,
    /// Mean hops of delivered routes.
    pub avg_hops: f64,
}

/// Side-by-side metrics of the two fault models on the same fault pattern.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelComparison {
    /// Classical model: every unsafe node disabled (faulty blocks).
    pub faulty_block: ModelMetrics,
    /// The paper's model: only disabled-region nodes disabled.
    pub disabled_region: ModelMetrics,
}

/// Measures both models over the same pipeline outcome, sampling
/// `sample_pairs` random enabled (src, dst) pairs per model.
pub fn compare_models<R: Rng>(
    outcome: &PipelineOutcome,
    sample_pairs: usize,
    rng: &mut R,
) -> ModelComparison {
    let fb_enabled = EnabledMap::from_safety(outcome);
    let fb_regions: Vec<Region> = outcome.blocks.iter().map(|b| b.cells.clone()).collect();
    let dr_enabled = EnabledMap::from_outcome(outcome);
    let dr_regions: Vec<Region> = outcome.regions.iter().map(|r| r.cells.clone()).collect();
    ModelComparison {
        faulty_block: measure(fb_enabled, &fb_regions, sample_pairs, rng),
        disabled_region: measure(dr_enabled, &dr_regions, sample_pairs, rng),
    }
}

fn measure<R: Rng>(
    enabled: EnabledMap,
    regions: &[Region],
    sample_pairs: usize,
    rng: &mut R,
) -> ModelMetrics {
    let router = FaultTolerantRouter::new(enabled.clone(), regions);
    let nodes = enabled.enabled_coords();
    let mut metrics = ModelMetrics {
        enabled_nodes: nodes.len(),
        ..ModelMetrics::default()
    };
    if nodes.len() < 2 {
        return metrics;
    }
    let mut stretch_sum = 0.0;
    let mut hop_sum = 0usize;
    let mut stretch_count = 0usize;
    for _ in 0..sample_pairs {
        let pair: Vec<&Coord> = nodes.choose_multiple(rng, 2).collect();
        let (src, dst) = (*pair[0], *pair[1]);
        metrics.pairs += 1;
        match router.route(src, dst) {
            Ok(path) => {
                metrics.delivered += 1;
                hop_sum += path.len();
                if let Ok(min) = bfs_path(&enabled, src, dst) {
                    if !min.is_empty() {
                        stretch_sum += path.len() as f64 / min.len() as f64;
                        stretch_count += 1;
                    }
                }
            }
            Err(crate::path::RoutingError::BoundaryFaultChain) => {
                metrics.boundary_chain_failures += 1;
            }
            Err(_) => metrics.other_failures += 1,
        }
    }
    metrics.avg_stretch = if stretch_count == 0 {
        0.0
    } else {
        stretch_sum / stretch_count as f64
    };
    metrics.avg_hops = if metrics.delivered == 0 {
        0.0
    } else {
        hop_sum as f64 / metrics.delivered as f64
    };
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_mesh::Topology;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn disabled_region_model_enables_more_nodes() {
        // A fault pattern where phase 2 recovers nodes: the Section 3
        // example (recovers 6 nodes).
        let map = FaultMap::new(Topology::mesh(10, 10), [c(3, 5), c(4, 3), c(5, 4)]);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let mut rng = SmallRng::seed_from_u64(11);
        let cmp = compare_models(&out, 60, &mut rng);
        assert!(
            cmp.disabled_region.enabled_nodes > cmp.faulty_block.enabled_nodes,
            "DR model should enable more nodes: {:?}",
            cmp
        );
        assert!(cmp.disabled_region.delivered > 0);
        assert!(cmp.disabled_region.avg_stretch >= 1.0);
    }

    #[test]
    fn fault_free_machine_routes_everything_minimally() {
        let map = FaultMap::healthy(Topology::mesh(8, 8));
        let out = run_pipeline(&map, &PipelineConfig::default());
        let mut rng = SmallRng::seed_from_u64(3);
        let cmp = compare_models(&out, 40, &mut rng);
        for m in [&cmp.faulty_block, &cmp.disabled_region] {
            assert_eq!(m.delivered, m.pairs);
            assert_eq!(m.boundary_chain_failures, 0);
            assert!((m.avg_stretch - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn metrics_counts_are_consistent() {
        let map = FaultMap::new(Topology::mesh(12, 12), [c(5, 5), c(6, 6), c(0, 3), c(9, 9)]);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let mut rng = SmallRng::seed_from_u64(7);
        let cmp = compare_models(&out, 50, &mut rng);
        for m in [&cmp.faulty_block, &cmp.disabled_region] {
            assert_eq!(
                m.delivered + m.boundary_chain_failures + m.other_failures,
                m.pairs
            );
        }
    }
}
