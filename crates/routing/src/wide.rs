//! The wide (multi-query) batched route-length engine.
//!
//! `FaultTolerantRouter::route_len_batch` moves a whole batch of queries
//! through the per-snapshot index in struct-of-arrays lanes instead of one
//! traversal at a time. Each scheduler *round* advances every still-active
//! query by one traversal step:
//!
//! 1. **Aim** — per query: retire arrivals, apply the hop-cap check, and
//!    compute the XY-preferred direction and axis window with
//!    `preferred_direction` unrolled into branch-free selects (the aim
//!    direction is effectively random across a batch, so a computed
//!    direction index replaces a mispredict-prone branch per probe).
//! 2. **Probe** — on snapshots with next-blocked tables (see
//!    [`crate::layout::WideSegments`], all but degenerate geometries) a
//!    probe is a *single* table load: the packed word carries both the
//!    distance to the first disabled cell in the aim direction (torus
//!    seams baked in at build) and the arena index of the blocking
//!    cell's packed hit word. Otherwise probes fall back to the
//!    vectorized kernels — `count_below` for short interval lines,
//!    *lockstep branch-free binary search* over [`LANES`] staged lanes
//!    for long ones (`base += (key < thr) as u32 * half` narrows every
//!    lane unconditionally, computing the scalar `partition_point`).
//! 3. **Advance** — per probe: apply the segment jump and the
//!    reference's cap checks, then decode the packed hit word into the
//!    fault-encounter bookkeeping (chain rejection, livelock guard,
//!    entry cycle position, per-query exit memo) without chasing the
//!    scalar path's dependent ring loads.
//! 4. **Exit** — unmemoized encounters become exit tasks, sorted by
//!    region. Destinations strictly outside the ring's bounding box
//!    (the common case) resolve O(1) through the packed
//!    [`crate::layout::ExitDirectory`]; the rest stream the packed
//!    candidate blocks from [`crate::layout::WideRings`] as a
//!    branch-free `reject << 31 | dist << 16 | pos` minimum in
//!    [`U32x8`] lanes (u64 lanes via [`U64x4`] for non-compact rings).
//!
//! **Exactness contract**: results are byte-identical to running the
//! scalar indexed traversal (`route_len_with`) per pair, which is itself
//! pinned byte-identical to the pre-index reference. This holds by
//! construction — each query performs the same checks in the same order
//! on the same values; the next-blocked word and hit word are built from
//! the same predicates the scalar path evaluates; the lockstep search
//! computes the same partition point; min-reductions are
//! order-independent, so lane-unrolled scans produce the scalar fold's
//! exact minimum and tie-break; the exit directory is consulted only
//! where the scan's argmin is position-invariant —
//! and is enforced by `tests/equivalence.rs` on random mesh/torus maps.

use crate::index::{RouteScratch, NO_REGION};
use crate::layout::{ENTRY_CHAIN, ENTRY_UNPACKED};
use crate::path::RoutingError;
use crate::router::{advance_by, exit_bit, torus_axis, FaultTolerantRouter, INFEASIBLE};
use crate::xy::wrap_delta;
use ocp_mesh::{Coord, Direction, Topology, TopologyKind};

/// Directions by computed aim index: positive/negative x, then y —
/// matching the per-direction block order of the next-blocked tables.
const DIRS: [Direction; 4] = [
    Direction::East,
    Direction::West,
    Direction::North,
    Direction::South,
];

/// Query lanes stepping together through one lockstep probe search.
pub(crate) const LANES: usize = 8;

/// Line-length cutoff between the two probe kernels. At or below it the
/// partition point is computed by [`count_below`] — a branch-free
/// vectorized count that runs inline while the query's state is hot (a
/// 64-key line is two cache lines of the SoA arena; the count's
/// lane-parallel compares beat a serial binary search's dependent-load
/// chain at this size). Above it, probes batch into [`lockstep_search`]
/// blocks so the longer searches' loads overlap across queries.
const COUNT_CUTOFF: u32 = 64;

/// Vectorized partition point for short sorted lines: the count of keys
/// `< thr` *is* `partition_point(|k| k < thr)` on a sorted slice, and a
/// count has no data-dependent control flow, so the compiler reduces it
/// with packed compares.
#[inline]
fn count_below(line: &[i32], thr: i32) -> u32 {
    line.iter().map(|&k| u32::from(k < thr)).sum()
}

/// Eight u32 lanes — the manual-SIMD idiom of `ocp_core::labeling::bits`,
/// sized for the packed u32 exit objective. All ops are lane-wise and
/// branch-free; the compiler lowers them to vector instructions.
#[derive(Clone, Copy, Debug)]
pub(crate) struct U32x8(pub [u32; 8]);

impl U32x8 {
    /// All lanes at `u32::MAX` — the identity of a min-reduction.
    pub const MAX: Self = Self([u32::MAX; 8]);

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn min(self, other: Self) -> Self {
        let mut out = self.0;
        for (o, b) in out.iter_mut().zip(other.0) {
            *o = (*o).min(b);
        }
        Self(out)
    }

    /// Minimum across lanes.
    #[inline(always)]
    pub fn horizontal_min(self) -> u32 {
        self.0.into_iter().fold(u32::MAX, u32::min)
    }
}

/// Four u64 lanes, for the non-compact exit objective.
#[derive(Clone, Copy, Debug)]
pub(crate) struct U64x4(pub [u64; 4]);

impl U64x4 {
    /// All lanes at `u64::MAX` — the identity of a min-reduction.
    pub const MAX: Self = Self([u64::MAX; 4]);

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn min(self, other: Self) -> Self {
        let mut out = self.0;
        for (o, b) in out.iter_mut().zip(other.0) {
            *o = (*o).min(b);
        }
        Self(out)
    }

    /// Minimum across lanes.
    #[inline(always)]
    pub fn horizontal_min(self) -> u64 {
        self.0.into_iter().fold(u64::MAX, u64::min)
    }
}

/// One staged probe: the lockstep search state plus what the advance
/// phase needs to resolve the window scalar-exactly.
#[derive(Clone, Copy, Debug)]
struct Staged {
    /// Owning query (index into the batch).
    query: u32,
    /// Line start in the key arena.
    start: u32,
    /// Remaining search-interval length (the answer is in
    /// `[base, base + n]`).
    n: u32,
    /// Search-interval base, relative to `start`; after the search this
    /// is the partition point.
    base: u32,
    /// Line length.
    len: u32,
    /// Exclusive search threshold: the search counts keys `< thr`
    /// (`thr = pos + 1` reproduces the scalar `<= pos` search, `thr =
    /// pos` the `< pos` one).
    thr: i32,
    /// Probe origin on the walked axis.
    pos: i32,
    /// Window length in hops.
    steps: i32,
    /// Probe direction.
    dir: Direction,
}

impl Staged {
    /// Inert lane filler for partial blocks: a one-key "search" of line
    /// offset 0 with an unsatisfiable threshold. Contributes zero loop
    /// iterations, touches only `keys[0]` (the caller guarantees a
    /// non-empty arena whenever any real lane is staged), and is never
    /// resolved.
    const IDLE: Staged = Staged {
        query: 0,
        start: 0,
        n: 1,
        base: 0,
        len: 0,
        thr: i32::MIN,
        pos: 0,
        steps: 0,
        dir: Direction::East,
    };
}

/// One unmemoized fault encounter awaiting an exit scan.
#[derive(Clone, Copy, Debug)]
struct ExitTask {
    query: u32,
    region: u32,
    /// The query's cycle position on the ring (entry point).
    here: u32,
}

/// Reusable SoA staging buffers for the batch scheduler, embedded in
/// [`RouteScratch`]. Cleared (not freed) per batch, so a warmed-up
/// `route_len_batch` performs no heap allocation.
#[derive(Debug, Default)]
pub(crate) struct WideBuffers {
    /// Current cell per query.
    cur: Vec<Coord>,
    /// Destination per query.
    dst: Vec<Coord>,
    /// Links traversed so far per query.
    hops: Vec<usize>,
    /// Queries still traversing this round.
    active: Vec<u32>,
    /// Queries surviving into the next round.
    next_active: Vec<u32>,
    /// Exit scans pending this round (sorted by region before running).
    tasks: Vec<ExitTask>,
    /// Per-query livelock guard: `(region, entry cell)` pairs seen.
    entries: Vec<Vec<(u32, Coord)>>,
    /// Per-query exit memo: `(region, resolved exit)` once computed (dst
    /// is fixed per query, so a ring's best exit never changes across
    /// re-encounters — same contract as the scalar scratch memo). The
    /// resolved exit carries `(cycle position, exit cell, ring length)`
    /// so a memo hit re-applies the walk without loading the ring;
    /// `None` records infeasibility.
    exits: Vec<Vec<ExitMemo>>,
}

/// One exit-memo entry: the region id and, if the ring is escapable
/// toward this query's destination, `(cycle position, exit cell, ring
/// length)` of the resolved exit.
type ExitMemo = (u32, Option<(u32, Coord, u32)>);

/// `FaultRing::shorter_walk_len` on packed operands: the shorter of the
/// two cycle walks between positions `from` and `to` on an `n`-cell ring
/// (both formulas are the ring's `walk_len` arithmetic verbatim).
#[inline(always)]
fn walk_min(from: u32, to: u32, n: u32) -> usize {
    let inc = (to + n - from) % n;
    let dec = (from + n - to) % n;
    inc.min(dec) as usize
}

/// Unpacks an [`crate::layout::ExitDirectory`] table word into
/// `(cycle position, exit cell)`.
#[inline(always)]
pub(crate) fn decode_exit_word(word: u64) -> (u32, Coord) {
    (
        (word >> 32) as u32,
        Coord::new((word & 0x7FFF) as i32, ((word >> 15) & 0x7FFF) as i32),
    )
}

impl WideBuffers {
    /// Readies the buffers for a batch of `n` queries.
    fn reset(&mut self, n: usize) {
        self.cur.clear();
        self.cur.resize(n, Coord::new(0, 0));
        self.dst.clear();
        self.dst.resize(n, Coord::new(0, 0));
        self.hops.clear();
        self.hops.resize(n, 0);
        self.active.clear();
        for list in self.entries.iter_mut().take(n) {
            list.clear();
        }
        for list in self.exits.iter_mut().take(n) {
            list.clear();
        }
        if self.entries.len() < n {
            self.entries.resize_with(n, Vec::new);
        }
        if self.exits.len() < n {
            self.exits.resize_with(n, Vec::new);
        }
    }
}

/// Runs the lockstep branch-free binary search for up to [`LANES`] staged
/// probes at once. On return every lane's `base` is its partition point:
/// the count of line keys `< thr`, identical to the scalar
/// `partition_point` the probe resolution expects.
///
/// Every iteration executes the same three unconditional operations per
/// lane — `half = n / 2`, a key load, `base += (key < thr) * half` — so
/// lane progress never branches on data, and the (independent) lane loads
/// pipeline. The iteration count is fixed up front from the longest lane
/// (every lane's interval becomes `ceil(n / 2)` per round, so `2^k ≥
/// max n` rounds finish them all); exhausted lanes idle harmlessly —
/// `half == 0` makes every update a no-op and the guarded index stays in
/// range.
#[inline]
fn lockstep_search(keys: &[i32], lanes: &mut [Staged]) {
    let mut max_n = 0u32;
    for lane in lanes.iter() {
        max_n = max_n.max(lane.n);
    }
    while max_n > 1 {
        for lane in lanes.iter_mut() {
            let half = lane.n >> 1;
            let idx = (lane.start + lane.base + half) as usize - usize::from(half > 0);
            let sat = u32::from(keys[idx] < lane.thr);
            lane.base += sat * half;
            lane.n -= half;
        }
        max_n -= max_n >> 1;
    }
    for lane in lanes.iter_mut() {
        let idx = (lane.start + lane.base) as usize;
        lane.base += u32::from(keys[idx] < lane.thr);
    }
}

/// Resolves a finished probe into the scalar `first_blocked` outcome:
/// hops to the first disabled cell in the window plus its packed hit word
/// (region code + entry positions — see
/// [`crate::layout::WideSegments`]), or `None` if the window is clear.
/// `pp` (the lane's final `base`) is the partition point of the scalar
/// search; the remaining window logic — torus seams included — is the
/// scalar code on the packed columns.
#[inline]
fn resolve_blocked(
    keys: &[i32],
    hits: &[u64],
    s: &Staged,
    extent: i32,
    positive: bool,
    torus: bool,
) -> Option<(i32, u64)> {
    let st = s.start as usize;
    let len = s.len as usize;
    let pp = s.base as usize;
    let line = &keys[st..st + len];
    let line_hits = &hits[st..st + len];
    if positive {
        let end = s.pos + s.steps;
        if !torus || end < extent {
            return (pp < len && line[pp] <= end).then(|| (line[pp] - s.pos, line_hits[pp]));
        }
        if pp < len {
            return Some((line[pp] - s.pos, line_hits[pp]));
        }
        (line[0] <= end - extent).then(|| (line[0] + extent - s.pos, line_hits[0]))
    } else {
        let end = s.pos - s.steps;
        if !torus || end >= 0 {
            return (pp > 0 && line[pp - 1] >= end)
                .then(|| (s.pos - line[pp - 1], line_hits[pp - 1]));
        }
        if pp > 0 {
            return Some((s.pos - line[pp - 1], line_hits[pp - 1]));
        }
        (line[len - 1] >= end + extent)
            .then(|| (s.pos + extent - line[len - 1], line_hits[len - 1]))
    }
}

/// Orientation and axis extent of a probe direction.
#[inline(always)]
fn dir_info(t: Topology, dir: Direction) -> (bool, i32) {
    let positive = matches!(dir, Direction::East | Direction::North);
    let extent = match dir {
        Direction::East | Direction::West => t.width() as i32,
        Direction::North | Direction::South => t.height() as i32,
    };
    (positive, extent)
}

/// The packed-u32 exit key of one candidate word on a mesh — the exact
/// arithmetic of the scalar `scan_packed_u32` on the word's fields.
#[inline(always)]
fn word_key_mesh(w: u64, dst: Coord) -> u32 {
    let dx = dst.x - (w & 0x7FFF) as i32;
    let dy = dst.y - ((w >> 15) & 0x7FFF) as i32;
    let mask = ((w >> 30) & 0xF) as u32;
    let pos = ((w >> 34) & 0xFFFF) as u32;
    let dist = dx.unsigned_abs() + dy.unsigned_abs();
    let reject = u32::from(mask & exit_bit(dx, dy) != 0);
    (reject << 31) | (dist << 16) | pos
}

/// Torus variant of [`word_key_mesh`].
#[inline(always)]
fn word_key_torus(w: u64, dst: Coord, width: i32, height: i32) -> u32 {
    let (dx, ax) = torus_axis(dst.x - (w & 0x7FFF) as i32, width);
    let (dy, ay) = torus_axis(dst.y - ((w >> 15) & 0x7FFF) as i32, height);
    let mask = ((w >> 30) & 0xF) as u32;
    let pos = ((w >> 34) & 0xFFFF) as u32;
    let reject = u32::from(mask & exit_bit(dx, dy) != 0);
    (reject << 31) | ((ax + ay) << 16) | pos
}

/// Minimum packed exit key over one packed word slice, reduced in
/// [`U32x8`] lanes (min is order-independent, so the lane reduction is
/// bit-exact against the scalar left fold).
fn scan_words(t: Topology, dst: Coord, words: &[u64]) -> u32 {
    let mut acc = U32x8::MAX;
    let mut chunks = words.chunks_exact(8);
    match t.kind() {
        TopologyKind::Mesh => {
            for chunk in &mut chunks {
                let mut keys = [0u32; 8];
                for (k, &w) in keys.iter_mut().zip(chunk) {
                    *k = word_key_mesh(w, dst);
                }
                acc = acc.min(U32x8(keys));
            }
            let mut best = acc.horizontal_min();
            for &w in chunks.remainder() {
                best = best.min(word_key_mesh(w, dst));
            }
            best
        }
        TopologyKind::Torus => {
            let (w_, h_) = (t.width() as i32, t.height() as i32);
            for chunk in &mut chunks {
                let mut keys = [0u32; 8];
                for (k, &w) in keys.iter_mut().zip(chunk) {
                    *k = word_key_torus(w, dst, w_, h_);
                }
                acc = acc.min(U32x8(keys));
            }
            let mut best = acc.horizontal_min();
            for &w in chunks.remainder() {
                best = best.min(word_key_torus(w, dst, w_, h_));
            }
            best
        }
    }
}

/// Non-compact fallback: the scalar u64 exit objective over the scalar
/// candidate columns, reduced in [`U64x4`] lanes.
fn scan_columns_u64(
    t: Topology,
    dst: Coord,
    cands: &crate::index::CandidateColumns,
    range: core::ops::Range<usize>,
) -> u64 {
    let xs = &cands.xs[range.clone()];
    let ys = &cands.ys[range.clone()];
    let masks = &cands.masks[range.clone()];
    let poss = &cands.poss[range];
    let key = |i: usize| -> u64 {
        let (dx, dy, dist) = match t.kind() {
            TopologyKind::Mesh => {
                let (dx, dy) = (dst.x - xs[i], dst.y - ys[i]);
                (dx, dy, (dx.unsigned_abs() + dy.unsigned_abs()) as u64)
            }
            TopologyKind::Torus => {
                let (dx, ax) = torus_axis(dst.x - xs[i], t.width() as i32);
                let (dy, ay) = torus_axis(dst.y - ys[i], t.height() as i32);
                (dx, dy, (ax + ay) as u64)
            }
        };
        let reject = u64::from(masks[i] as u32 & exit_bit(dx, dy) != 0) * INFEASIBLE;
        (dist << 32) | poss[i] as u64 | reject
    };
    let n = xs.len();
    let mut acc = U64x4::MAX;
    let mut i = 0;
    while i + 4 <= n {
        let keys = [key(i), key(i + 1), key(i + 2), key(i + 3)];
        acc = acc.min(U64x4(keys));
        i += 4;
    }
    let mut best = acc.horizontal_min();
    while i < n {
        best = best.min(key(i));
        i += 1;
    }
    best
}

/// Best exit of one ring for `dst` by candidate scan — packed-word scan
/// for compact rings, u64-lane column scan otherwise. Decision-identical
/// to the scalar `best_exit_indexed`. Shared by the runtime fallback and
/// the build-time [`crate::layout::ExitDirectory`] precomputation.
pub(crate) fn exit_scan(
    t: Topology,
    ring_index: &crate::index::RingIndex,
    meta: &crate::layout::WideRingMeta,
    words: &[u64],
    dst: Coord,
) -> Option<u32> {
    if meta.packed {
        let mut best = u32::MAX;
        crate::layout::WideRings::packed_slices(meta, ring_index, t, dst, |range| {
            best = best.min(scan_words(t, dst, &words[range]));
        });
        (best >> 31 == 0).then_some(best & 0xFFFF)
    } else {
        let mut best = u64::MAX;
        ring_index.candidate_slices(t, dst, |cands, range| {
            best = best.min(scan_columns_u64(t, dst, cands, range));
        });
        (best & INFEASIBLE == 0).then_some(best as u32)
    }
}

/// Best exit of `region` for `dst` as `(cycle position, exit cell, ring
/// length)` — O(1) through the snapshot's
/// [`crate::layout::ExitDirectory`] whenever `dst` lies strictly outside
/// the ring's bounding box (the overwhelmingly common case — queries that
/// hit a ring usually aim far past it), candidate scan otherwise.
/// `None` when the ring has no feasible exit toward `dst`.
fn compute_exit(
    router: &FaultTolerantRouter,
    t: Topology,
    region: usize,
    dst: Coord,
) -> Option<(u32, Coord, u32)> {
    let index = &router.index;
    if let Some((word, ring_len)) = index.exit_dir.lookup(region, dst) {
        return (word != u64::MAX).then(|| {
            let (pos, cell) = decode_exit_word(word);
            (pos, cell, ring_len)
        });
    }
    exit_scan(
        t,
        &index.rings[region],
        &index.wide_rings.meta[region],
        index.wide_rings.words(),
        dst,
    )
    .map(|pos| {
        let ring = &router.rings[region];
        let cell = ring
            .cycle_cell(pos as usize)
            .expect("exit is a cycle position");
        (pos, cell, ring.cells().len() as u32)
    })
}

/// The batch scheduler. Writes one result per pair into `out`, in pair
/// order, each byte-identical to `route_len_with` on that pair.
pub(crate) fn route_len_batch_wide(
    router: &FaultTolerantRouter,
    pairs: &[(Coord, Coord)],
    scratch: &mut RouteScratch,
    out: &mut Vec<Result<usize, RoutingError>>,
) {
    let t = router.topology();
    let cap = (t.len() * 4).max(64);
    let torus = t.kind() == TopologyKind::Torus;
    out.clear();
    out.resize(pairs.len(), Ok(0));
    let wb = &mut scratch.wide;
    wb.reset(pairs.len());

    for (i, &(src, dst)) in pairs.iter().enumerate() {
        // Endpoint checks in the scalar order: src first, then dst.
        if let Some(&node) = [src, dst].iter().find(|&&e| !router.enabled.is_enabled(e)) {
            out[i] = Err(RoutingError::EndpointDisabled { node });
            continue;
        }
        wb.cur[i] = src;
        wb.dst[i] = dst;
        wb.active.push(i as u32);
    }

    let segments = &router.index.wide_segments;
    let keys = segments.keys();
    let hits = segments.hits();
    let next = segments.next();
    let have_next = segments.have_next();

    while !wb.active.is_empty() {
        wb.next_active.clear();
        wb.tasks.clear();

        // Aim → probe → advance, fused per query. With the next-blocked
        // tables a probe is one table load (window clear or encounter,
        // torus seams baked in); without them, short lines resolve
        // through the vectorized count kernel and long lines batch into
        // lockstep blocks of [`LANES`].
        let mut lanes = [Staged::IDLE; LANES];
        let mut lane_count = 0usize;
        for ai in 0..wb.active.len() {
            let q = wb.active[ai] as usize;
            let (cur, dst) = (wb.cur[q], wb.dst[q]);
            if cur == dst {
                out[q] = Ok(wb.hops[q]);
                continue;
            }
            if wb.hops[q] + 1 > cap {
                out[q] = Err(RoutingError::LivelockDetected);
                continue;
            }
            // `preferred_direction` unrolled into selects: both axis
            // deltas up front, then the x-first rule as a computed
            // direction index (E=0 W=1 N=2 S=3). The aim direction is
            // data-dependent and effectively random across a batch, so
            // keeping it branch-free avoids a mispredict per probe.
            let dx = wrap_delta(t, cur.x, dst.x, t.width());
            let dy = wrap_delta(t, cur.y, dst.y, t.height());
            let xfirst = dx != 0;
            let delta = if xfirst { dx } else { dy };
            let dir_idx = (usize::from(!xfirst) << 1) | usize::from(delta < 0);
            let dir = DIRS[dir_idx];
            let steps = delta.unsigned_abs() as i32;
            if have_next {
                // One table load answers the whole probe — window-clear
                // distance or encounter, torus seams baked in at build.
                // The probe address reuses the computed direction index
                // (row-major x-lines, column-major y-lines) so nothing
                // on this path re-branches on the direction.
                let cell = if xfirst {
                    cur.y * t.width() as i32 + cur.x
                } else {
                    cur.x * t.height() as i32 + cur.y
                };
                let at = (segments.next_base()[dir_idx] + cell as u32) as usize;
                let v = next[at];
                let dist = (v & 0xFFFF) as i32;
                let hit = (dist <= steps).then(|| (dist, hits[(v >> 16) as usize]));
                apply_probe(router, t, cap, wb, out, q as u32, dir, steps, hit);
                continue;
            }
            let (start, len) = segments.line(dir, cur);
            if len == 0 {
                // No disabled cell anywhere on this line: the whole
                // window is clear (the fast XY-only case).
                if wb.hops[q] + steps as usize > cap {
                    out[q] = Err(RoutingError::LivelockDetected);
                    continue;
                }
                wb.cur[q] = advance_by(t, cur, dir, steps as usize);
                wb.hops[q] += steps as usize;
                wb.next_active.push(q as u32);
                continue;
            }
            let positive = matches!(dir, Direction::East | Direction::North);
            let pos = match dir {
                Direction::East | Direction::West => cur.x,
                Direction::North | Direction::South => cur.y,
            };
            let mut staged = Staged {
                query: q as u32,
                start,
                n: len,
                base: 0,
                len,
                thr: pos + i32::from(positive),
                pos,
                steps,
                dir,
            };
            if len <= COUNT_CUTOFF {
                let line = &keys[start as usize..(start + len) as usize];
                staged.base = count_below(line, staged.thr);
                let (positive, extent) = dir_info(t, dir);
                let hit = resolve_blocked(keys, hits, &staged, extent, positive, torus);
                apply_probe(router, t, cap, wb, out, q as u32, dir, steps, hit);
            } else {
                lanes[lane_count] = staged;
                lane_count += 1;
                if lane_count == LANES {
                    lockstep_search(keys, &mut lanes);
                    for s in &lanes {
                        let (positive, extent) = dir_info(t, s.dir);
                        let hit = resolve_blocked(keys, hits, s, extent, positive, torus);
                        apply_probe(router, t, cap, wb, out, s.query, s.dir, s.steps, hit);
                    }
                    lanes = [Staged::IDLE; LANES];
                    lane_count = 0;
                }
            }
        }
        // Flush the partial lockstep block (idle fillers are no-ops; a
        // staged lane implies the key arena is non-empty).
        if lane_count > 0 {
            lockstep_search(keys, &mut lanes);
            for s in lanes.iter().take(lane_count) {
                let (positive, extent) = dir_info(t, s.dir);
                let hit = resolve_blocked(keys, hits, s, extent, positive, torus);
                apply_probe(router, t, cap, wb, out, s.query, s.dir, s.steps, hit);
            }
        }

        // Exit scans, bucketed by region so consecutive tasks stream the
        // same packed candidate block (or directory lines).
        wb.tasks.sort_unstable_by_key(|task| task.region);
        for ti in 0..wb.tasks.len() {
            let ExitTask {
                query,
                region,
                here,
            } = wb.tasks[ti];
            let q = query as usize;
            let exit = compute_exit(router, t, region as usize, wb.dst[q]);
            wb.exits[q].push((region, exit));
            match exit {
                None => out[q] = Err(RoutingError::LivelockDetected),
                Some((e, cell, ring_len)) => {
                    wb.hops[q] += walk_min(here, e, ring_len);
                    wb.cur[q] = cell;
                    wb.next_active.push(query);
                }
            }
        }

        std::mem::swap(&mut wb.active, &mut wb.next_active);
    }
}

/// Applies one resolved probe to its query — exactly the scalar
/// traversal's check order: window resolution, the reference's cap
/// checks, the segment jump, and fault-encounter bookkeeping (chain
/// rejection, livelock guard, position lookup, exit memo). Unmemoized
/// encounters join `wb.tasks` for the exit phase.
///
/// The encounter bookkeeping decodes the packed hit word instead of
/// chasing the scalar path's dependent loads: the chain rejection reads
/// the word's [`ENTRY_CHAIN`] sentinel (precomputed from the very
/// `is_cycle` the scalar checks), the cycle position comes from the
/// word's direction-matching field (falling back to the scalar
/// `position` lookup on [`ENTRY_UNPACKED`]), and memo hits re-apply the
/// walk from the memoized `(position, cell, ring length)` triple.
#[allow(clippy::too_many_arguments)]
#[inline]
fn apply_probe(
    router: &FaultTolerantRouter,
    t: Topology,
    cap: usize,
    wb: &mut WideBuffers,
    out: &mut [Result<usize, RoutingError>],
    query: u32,
    dir: Direction,
    steps: i32,
    hit: Option<(i32, u64)>,
) {
    let q = query as usize;
    let positive = matches!(dir, Direction::East | Direction::North);
    let advance = match hit {
        Some((d, _)) => (d - 1) as usize,
        None => steps as usize,
    };
    // The reference checks the cap before every hop; a segment that
    // would run past it fails at the same hop count.
    if wb.hops[q] + advance > cap {
        out[q] = Err(RoutingError::LivelockDetected);
        return;
    }
    wb.cur[q] = advance_by(t, wb.cur[q], dir, advance);
    wb.hops[q] += advance;
    let Some((_, word)) = hit else {
        wb.next_active.push(q as u32);
        return;
    };
    // The reference's loop-top check for the iteration that discovers
    // the blocked hop.
    if wb.hops[q] + 1 > cap {
        out[q] = Err(RoutingError::LivelockDetected);
        return;
    }
    let region_code = word as u32;
    assert_ne!(region_code, NO_REGION, "disabled non-region cell blocks XY");
    let epos = ((word >> if positive { 32 } else { 48 }) & 0xFFFF) as u32;
    if epos == ENTRY_CHAIN {
        out[q] = Err(RoutingError::BoundaryFaultChain);
        return;
    }
    let entry = wb.cur[q];
    let guard = &mut wb.entries[q];
    if guard.iter().any(|&(r, c)| r == region_code && c == entry) {
        out[q] = Err(RoutingError::LivelockDetected);
        return;
    }
    guard.push((region_code, entry));
    let here = if epos == ENTRY_UNPACKED {
        router
            .index
            .position(region_code as usize, entry)
            .expect("blocked node is on the blocking region's ring") as u32
    } else {
        epos
    };
    let memo = wb.exits[q]
        .iter()
        .find(|&&(r, _)| r == region_code)
        .map(|&(_, e)| e);
    match memo {
        Some(None) => out[q] = Err(RoutingError::LivelockDetected),
        Some(Some((exit, cell, ring_len))) => {
            wb.hops[q] += walk_min(here, exit, ring_len);
            wb.cur[q] = cell;
            wb.next_active.push(q as u32);
        }
        None => wb.tasks.push(ExitTask {
            query: q as u32,
            region: region_code,
            here,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// The lockstep search must compute `slice.partition_point(< thr)`
    /// for every lane, including mixed lengths and exhausted lanes.
    #[test]
    fn lockstep_search_matches_partition_point() {
        let mut rng = SmallRng::seed_from_u64(0x51D3);
        for _ in 0..200 {
            let mut keys: Vec<i32> = Vec::new();
            let mut lanes = Vec::new();
            let mut expect = Vec::new();
            let lane_count = rng.gen_range(1..=LANES);
            for q in 0..lane_count {
                let len = rng.gen_range(1..=40usize);
                let start = keys.len() as u32;
                let mut line: Vec<i32> = (0..len).map(|_| rng.gen_range(0..64)).collect();
                line.sort_unstable();
                let thr = rng.gen_range(-1..66);
                expect.push(line.partition_point(|&k| k < thr));
                keys.extend_from_slice(&line);
                lanes.push(Staged {
                    query: q as u32,
                    start,
                    n: len as u32,
                    len: len as u32,
                    thr,
                    ..Staged::IDLE
                });
            }
            lockstep_search(&keys, &mut lanes);
            for (lane, want) in lanes.iter().zip(expect) {
                assert_eq!(lane.base as usize, want, "thr {} lane {:?}", lane.thr, lane);
            }
        }
    }

    #[test]
    fn lane_min_reductions_match_scalar_folds() {
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..50 {
            let v32: Vec<u32> = (0..rng.gen_range(0..50)).map(|_| rng.next_u32()).collect();
            let mut acc = U32x8::MAX;
            let mut chunks = v32.chunks_exact(8);
            for c in &mut chunks {
                let mut lane = [0u32; 8];
                lane.copy_from_slice(c);
                acc = acc.min(U32x8(lane));
            }
            let mut best = acc.horizontal_min();
            for &k in chunks.remainder() {
                best = best.min(k);
            }
            assert_eq!(best, v32.iter().copied().fold(u32::MAX, u32::min));

            let v64: Vec<u64> = (0..rng.gen_range(0..50)).map(|_| rng.next_u64()).collect();
            let mut acc = U64x4::MAX;
            let mut chunks = v64.chunks_exact(4);
            for c in &mut chunks {
                let mut lane = [0u64; 4];
                lane.copy_from_slice(c);
                acc = acc.min(U64x4(lane));
            }
            let mut best = acc.horizontal_min();
            for &k in chunks.remainder() {
                best = best.min(k);
            }
            assert_eq!(best, v64.iter().copied().fold(u64::MAX, u64::min));
        }
    }
}
