//! BFS shortest-path oracle over enabled nodes.
//!
//! Ground truth for reachability and minimal hop counts: any fault-tolerant
//! router's path can be compared against the BFS length to measure stretch,
//! and BFS failure ⇔ the faults physically partition the machine.

use crate::path::{EnabledMap, Path, RoutingError};
use ocp_mesh::{Coord, Neighborhood};
use std::collections::{HashMap, VecDeque};

/// Shortest enabled path from `src` to `dst`, if one exists.
pub fn bfs_path(enabled: &EnabledMap, src: Coord, dst: Coord) -> Result<Path, RoutingError> {
    let t = enabled.topology();
    for endpoint in [src, dst] {
        if !enabled.is_enabled(endpoint) {
            return Err(RoutingError::EndpointDisabled { node: endpoint });
        }
    }
    if src == dst {
        return Ok(Path::new(src));
    }
    let mut parent: HashMap<Coord, Coord> = HashMap::new();
    let mut queue = VecDeque::from([src]);
    parent.insert(src, src);
    while let Some(cur) = queue.pop_front() {
        for n in Neighborhood::of(t, cur).nodes() {
            if enabled.is_enabled(n) && !parent.contains_key(&n) {
                parent.insert(n, cur);
                if n == dst {
                    // Reconstruct.
                    let mut hops = vec![dst];
                    let mut at = dst;
                    while at != src {
                        at = parent[&at];
                        hops.push(at);
                    }
                    hops.reverse();
                    return Ok(Path { hops });
                }
                queue.push_back(n);
            }
        }
    }
    Err(RoutingError::Unreachable)
}

/// Hop distance of the shortest enabled path (`None` if unreachable).
pub fn bfs_distance(enabled: &EnabledMap, src: Coord, dst: Coord) -> Option<usize> {
    bfs_path(enabled, src, dst).ok().map(|p| p.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_mesh::{Grid, Topology};

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn matches_manhattan_on_fault_free_mesh() {
        let t = Topology::mesh(9, 9);
        let enabled = EnabledMap::all_enabled(t);
        let p = bfs_path(&enabled, c(1, 1), c(7, 4)).unwrap();
        assert_eq!(p.len() as u32, t.distance(c(1, 1), c(7, 4)));
        p.validate(&enabled).unwrap();
    }

    #[test]
    fn detours_around_wall() {
        let t = Topology::mesh(7, 7);
        let mut grid = Grid::filled(t, true);
        // Vertical wall at x=3, except the top row.
        for y in 0..6 {
            grid.set(c(3, y), false);
        }
        let enabled = EnabledMap::from_grid(grid);
        let p = bfs_path(&enabled, c(0, 0), c(6, 0)).unwrap();
        p.validate(&enabled).unwrap();
        assert_eq!(p.len(), 6 + 2 * 6); // up to y=6, across, back down
    }

    #[test]
    fn unreachable_when_partitioned() {
        let t = Topology::mesh(5, 5);
        let mut grid = Grid::filled(t, true);
        for y in 0..5 {
            grid.set(c(2, y), false);
        }
        let enabled = EnabledMap::from_grid(grid);
        assert_eq!(
            bfs_path(&enabled, c(0, 0), c(4, 0)),
            Err(RoutingError::Unreachable)
        );
        // Torus version of the same wall is still connected? No — a full
        // column wall cuts a torus into... actually wraparound in x links
        // column 0 and 4 directly, so it IS reachable.
        let tt = Topology::torus(5, 5);
        let mut grid = Grid::filled(tt, true);
        for y in 0..5 {
            grid.set(c(2, y), false);
        }
        let enabled = EnabledMap::from_grid(grid);
        assert_eq!(bfs_distance(&enabled, c(0, 0), c(4, 0)), Some(1));
    }

    #[test]
    fn self_route_is_empty() {
        let t = Topology::mesh(4, 4);
        let enabled = EnabledMap::all_enabled(t);
        let p = bfs_path(&enabled, c(2, 2), c(2, 2)).unwrap();
        assert_eq!(p.len(), 0);
    }
}
