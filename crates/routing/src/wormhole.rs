//! Flit-level wormhole network simulation.
//!
//! Wormhole switching is the regime all the cited fault-tolerant routing
//! work targets: a packet is a *worm* of flits that pipelines across
//! consecutive links, holding every link its body spans; a blocked head
//! stalls the whole worm in place, which is what makes deadlock a real
//! danger and convex fault regions valuable.
//!
//! The model here is the standard lightweight one:
//!
//! * each directed link has `vcs` virtual channels, each able to carry one
//!   worm segment (one flit in flight per link per VC);
//! * per cycle, each worm's head tries to acquire the next link's VC; on
//!   success every flit advances one hop, so the tail frees the oldest link
//!   once the worm is at full span;
//! * a head that reached the destination drains one flit per cycle;
//! * arbitration is round-robin by packet id with a rotating offset;
//! * a configurable quiet period with undelivered worms is reported as a
//!   **deadlock** (watchdog), which the CDG analysis predicts.

use crate::path::Path;
use ocp_mesh::Coord;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Simulation parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WormholeConfig {
    /// Virtual channels per directed link.
    pub vcs: u8,
    /// Worm length in flits (= maximum links a worm spans).
    pub packet_flits: usize,
    /// Cycles without any flit movement (while worms are in flight) before
    /// declaring deadlock.
    pub deadlock_threshold: u64,
    /// Hard cap on simulated cycles.
    pub max_cycles: u64,
}

impl Default for WormholeConfig {
    fn default() -> Self {
        Self {
            vcs: 1,
            packet_flits: 4,
            deadlock_threshold: 1_000,
            max_cycles: 1_000_000,
        }
    }
}

/// One packet to inject: a precomputed path and an injection time.
#[derive(Clone, Debug)]
pub struct PacketSpec {
    /// Route the worm follows (from the routing layer).
    pub path: Path,
    /// Cycle at which the worm may start acquiring links.
    pub inject_cycle: u64,
    /// Virtual channel class per hop (same convention as
    /// [`crate::cdg::VcAssignment`]); computed up front so the simulator
    /// stays routing-agnostic.
    pub vc_per_hop: Vec<u8>,
}

impl PacketSpec {
    /// Packet with every hop on VC 0.
    pub fn on_single_vc(path: Path, inject_cycle: u64) -> Self {
        let hops = path.len();
        Self {
            path,
            inject_cycle,
            vc_per_hop: vec![0; hops],
        }
    }

    /// Packet with a VC assignment function.
    pub fn with_assignment(
        path: Path,
        inject_cycle: u64,
        assign: &dyn Fn(&Path, usize) -> u8,
    ) -> Self {
        let vc_per_hop = (0..path.len()).map(|i| assign(&path, i)).collect();
        Self {
            path,
            inject_cycle,
            vc_per_hop,
        }
    }
}

/// Aggregate results of one simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimStats {
    /// Packets that fully arrived.
    pub delivered: usize,
    /// Packets still in flight (or never injected) when the run ended.
    pub undelivered: usize,
    /// True if the watchdog fired.
    pub deadlocked: bool,
    /// Cycles simulated.
    pub cycles: u64,
    /// Mean delivery latency (inject → tail absorbed), delivered only.
    pub avg_latency: f64,
    /// Worst delivery latency.
    pub max_latency: u64,
    /// Total link acquisitions (≈ flit-hops / packet_flits).
    pub link_acquisitions: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct LinkVc {
    from: Coord,
    to: Coord,
    vc: u8,
}

struct Worm<'a> {
    spec: &'a PacketSpec,
    /// Links acquired so far (head progress), `0..=path.len()`.
    head: usize,
    /// Links released so far (tail progress), `<= head`.
    tail: usize,
    /// Flits drained at the destination.
    drained: usize,
    delivered_at: Option<u64>,
}

impl Worm<'_> {
    fn link(&self, i: usize) -> LinkVc {
        LinkVc {
            from: self.spec.path.hops[i],
            to: self.spec.path.hops[i + 1],
            vc: self.spec.vc_per_hop[i],
        }
    }

    fn done(&self) -> bool {
        self.delivered_at.is_some()
    }
}

/// Runs the simulation to completion, deadlock, or the cycle cap.
///
/// # Panics
/// Panics if a packet's `vc_per_hop` length mismatches its path or names a
/// VC ≥ `config.vcs`.
pub fn simulate(specs: &[PacketSpec], config: &WormholeConfig) -> SimStats {
    for s in specs {
        assert_eq!(s.vc_per_hop.len(), s.path.len(), "vc assignment length");
        assert!(
            s.vc_per_hop.iter().all(|&v| v < config.vcs),
            "vc index out of range"
        );
    }
    let mut worms: Vec<Worm> = specs
        .iter()
        .map(|spec| Worm {
            spec,
            head: 0,
            tail: 0,
            drained: 0,
            delivered_at: None,
        })
        .collect();
    // busy[link] = worm index holding it.
    let mut busy: HashMap<LinkVc, usize> = HashMap::new();
    let mut cycle: u64 = 0;
    let mut quiet: u64 = 0;
    let mut deadlocked = false;
    let mut link_acquisitions: u64 = 0;

    loop {
        if worms.iter().all(|w| w.done()) {
            break;
        }
        if cycle >= config.max_cycles {
            break;
        }
        let mut moved = false;
        let n = worms.len();
        // Rotating round-robin priority.
        for k in 0..n {
            let i = (k + (cycle as usize % n.max(1))) % n;
            let w = &worms[i];
            if w.done() || w.spec.inject_cycle > cycle {
                continue;
            }
            let path_links = w.spec.path.len();

            // Zero-length path: delivered instantly upon injection.
            if path_links == 0 {
                worms[i].delivered_at = Some(cycle);
                moved = true;
                continue;
            }

            if worms[i].head < path_links {
                // Head tries to advance.
                let next = worms[i].link(worms[i].head);
                if let std::collections::hash_map::Entry::Vacant(e) = busy.entry(next) {
                    e.insert(i);
                    worms[i].head += 1;
                    link_acquisitions += 1;
                    moved = true;
                    // Tail follows once the worm spans its full length.
                    if worms[i].head - worms[i].tail > config.packet_flits {
                        let freed = worms[i].link(worms[i].tail);
                        busy.remove(&freed);
                        worms[i].tail += 1;
                    }
                }
            } else {
                // Head at destination: drain one flit per cycle.
                worms[i].drained += 1;
                moved = true;
                if worms[i].tail < path_links {
                    let freed = worms[i].link(worms[i].tail);
                    busy.remove(&freed);
                    worms[i].tail += 1;
                }
                // Tail absorbed when all flits drained (worm spans at most
                // packet_flits links, so packet_flits drains suffice).
                if worms[i].drained >= config.packet_flits || worms[i].tail >= path_links {
                    // Free any remaining held links (short paths).
                    for l in worms[i].tail..path_links {
                        let freed = worms[i].link(l);
                        busy.remove(&freed);
                    }
                    worms[i].tail = path_links;
                    if worms[i].drained >= config.packet_flits {
                        worms[i].delivered_at = Some(cycle);
                    }
                }
            }
        }
        if moved {
            quiet = 0;
        } else {
            quiet += 1;
            if quiet >= config.deadlock_threshold {
                deadlocked = true;
                break;
            }
        }
        cycle += 1;
    }

    let latencies: Vec<u64> = worms
        .iter()
        .filter_map(|w| {
            w.delivered_at
                .map(|d| d.saturating_sub(w.spec.inject_cycle))
        })
        .collect();
    let delivered = latencies.len();
    SimStats {
        delivered,
        undelivered: worms.len() - delivered,
        deadlocked,
        cycles: cycle,
        avg_latency: if delivered == 0 {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / delivered as f64
        },
        max_latency: latencies.into_iter().max().unwrap_or(0),
        link_acquisitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn straight_path(len: i32) -> Path {
        Path {
            hops: (0..=len).map(|x| c(x, 0)).collect(),
        }
    }

    #[test]
    fn single_packet_latency() {
        let spec = PacketSpec::on_single_vc(straight_path(6), 0);
        let stats = simulate(&[spec], &WormholeConfig::default());
        assert_eq!(stats.delivered, 1);
        assert!(!stats.deadlocked);
        // Pipeline: ~path_len cycles for the head plus packet_flits drain.
        assert!(stats.max_latency >= 6);
        assert!(stats.max_latency <= 6 + 4 + 2);
    }

    #[test]
    fn contention_serializes_worms() {
        // Two packets over the same links: the second must wait.
        let a = PacketSpec::on_single_vc(straight_path(5), 0);
        let b = PacketSpec::on_single_vc(straight_path(5), 0);
        let solo = simulate(std::slice::from_ref(&a), &WormholeConfig::default());
        let both = simulate(&[a, b], &WormholeConfig::default());
        assert_eq!(both.delivered, 2);
        assert!(both.max_latency > solo.max_latency);
    }

    #[test]
    fn separate_vcs_remove_contention_serialization() {
        let mut a = PacketSpec::on_single_vc(straight_path(5), 0);
        let mut b = PacketSpec::on_single_vc(straight_path(5), 0);
        a.vc_per_hop = vec![0; 5];
        b.vc_per_hop = vec![1; 5];
        let cfg = WormholeConfig {
            vcs: 2,
            ..WormholeConfig::default()
        };
        let stats = simulate(&[a, b], &cfg);
        assert_eq!(stats.delivered, 2);
        // Both pipelines run concurrently: latencies nearly equal.
        assert!(stats.max_latency <= 5 + 4 + 3);
    }

    #[test]
    fn cyclic_demand_deadlocks_on_one_vc() {
        // Four worms chasing each other around a 2x2 ring, each long enough
        // to hold its current link while waiting for the next.
        let square = [c(0, 0), c(1, 0), c(1, 1), c(0, 1)];
        let mut specs = Vec::new();
        for i in 0..4 {
            let hops = vec![
                square[i],
                square[(i + 1) % 4],
                square[(i + 2) % 4],
                square[(i + 3) % 4],
            ];
            specs.push(PacketSpec::on_single_vc(Path { hops }, 0));
        }
        let cfg = WormholeConfig {
            packet_flits: 8, // long worms: each spans all held links
            deadlock_threshold: 100,
            ..WormholeConfig::default()
        };
        let stats = simulate(&specs, &cfg);
        assert!(stats.deadlocked, "{stats:?}");
        assert!(stats.delivered < 4);
    }

    #[test]
    fn zero_length_paths_deliver_immediately() {
        let spec = PacketSpec::on_single_vc(Path::new(c(3, 3)), 7);
        let stats = simulate(&[spec], &WormholeConfig::default());
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.max_latency, 0);
    }

    #[test]
    fn injection_time_respected() {
        let spec = PacketSpec::on_single_vc(straight_path(3), 50);
        let stats = simulate(&[spec], &WormholeConfig::default());
        assert_eq!(stats.delivered, 1);
        assert!(stats.cycles >= 50);
        assert!(
            stats.max_latency <= 3 + 4 + 2,
            "latency measured from injection"
        );
    }

    #[test]
    #[should_panic(expected = "vc index out of range")]
    fn vc_out_of_range_panics() {
        let mut spec = PacketSpec::on_single_vc(straight_path(2), 0);
        spec.vc_per_hop = vec![3, 0];
        simulate(&[spec], &WormholeConfig::default());
    }
}
