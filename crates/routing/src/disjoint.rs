//! k vertex-disjoint fault-tolerant routes.
//!
//! The paper's orthogonally convex fault regions admit exactly two detours
//! around any blocking ring — the clockwise and counter-clockwise walks —
//! and those walks share no vertex besides the points where they leave and
//! rejoin the XY spine. [`FaultTolerantRouter::route_disjoint`] turns that
//! structure into a query: up to `k` pairwise vertex-disjoint paths per
//! `(src, dst)` pair, disjoint everywhere except the endpoints.
//!
//! **Construction.** `k = 1` is the production fast path: one indexed
//! traversal reusing the caller's [`RouteScratch`], byte-identical to
//! [`FaultTolerantRouter::route`] and allocation-free beyond the returned
//! path. For `k ≥ 2` the query becomes a unit-capacity vertex flow over
//! the enabled map (Menger's theorem): every enabled node is split into an
//! in/out pair joined by a capacity-1 arc, every mesh link becomes a
//! capacity-1 arc between the split halves, and the flow is *seeded with
//! the production route* before BFS augmentation. Seeding matters for more
//! than speed: when a single ring blocks the pair, the second augmenting
//! path threads the residual graph "the other way around" the ring, so the
//! returned pair is precisely the CW/CCW detour split. With multiple rings
//! between `src` and `dst` the same machinery yields up to the vertex
//! min-cut (≤ 4 on degree-4 meshes) — `paths.len() == min(k, min-cut)`.
//!
//! **Stretch.** [`DisjointRoutes::stretch`] is the worst per-path hop
//! count over the topology's fault-free distance. The API asserts the
//! Routing-Complexity-style bound
//! [`FaultTolerantRouter::disjoint_len_bound`]: every returned path
//! satisfies `len ≤ d + 2k + 2·P + 2` where `d` is the minimal distance
//! and `P` the total perimeter of all fault rings — a detour cannot cost
//! more than walking each ring once per side plus the constant overhead of
//! fanning out at the endpoints. The property suite
//! (`tests/routing_properties.rs`) enforces the bound on random fault
//! maps; `debug_assert`s enforce it on every query in debug builds.
//!
//! **Failure semantics.** `route_disjoint` fails exactly when
//! [`FaultTolerantRouter::route`] fails (same [`RoutingError`]): the
//! primary traversal is the first path, so a pair the router cannot serve
//! has no disjoint answer either. No new error variants are introduced —
//! the serve wire format stays compatible.

use crate::index::RouteScratch;
use crate::path::{Path, RoutingError};
use crate::router::FaultTolerantRouter;
use ocp_mesh::{Coord, Topology, DIRECTIONS};
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// Result of [`FaultTolerantRouter::route_disjoint`]: up to `k` pairwise
/// vertex-disjoint paths plus the worst-case stretch over the minimal
/// distance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DisjointRoutes {
    /// The routes, pairwise vertex-disjoint except at `src`/`dst`.
    /// `paths[0]` of a `k = 1` query is byte-identical to
    /// [`FaultTolerantRouter::route`]; `paths.len()` is the smaller of
    /// `k` and the vertex min-cut between the endpoints.
    pub paths: Vec<Path>,
    /// `max_i len(paths[i]) / distance(src, dst)`; `1.0` when the
    /// endpoints coincide.
    pub stretch: f64,
}

impl DisjointRoutes {
    /// Per-path hop counts, in path order.
    pub fn hop_counts(&self) -> Vec<usize> {
        self.paths.iter().map(Path::len).collect()
    }

    /// Hop count of the longest returned path.
    pub fn max_len(&self) -> usize {
        self.paths.iter().map(Path::len).max().unwrap_or(0)
    }

    /// True if no two *distinct* paths share a vertex besides `src` and
    /// `dst`. The constructor guarantees this; the test suites re-check it
    /// through this method so the guarantee cannot silently rot.
    ///
    /// Within-path revisits are deliberately not flagged: a `k = 1` answer
    /// is byte-identical to [`FaultTolerantRouter::route`], and production
    /// routes can legitimately revisit a cell (the A→B→A pocket U-turn
    /// around diagonal-contact fault rings). Disjointness is a property of
    /// path *pairs*; the `k ≥ 2` flow decomposition additionally yields
    /// simple paths because each split vertex carries unit capacity.
    pub fn pairwise_disjoint(&self) -> bool {
        let mut seen: HashSet<Coord> = HashSet::new();
        for p in &self.paths {
            if p.hops.len() < 2 {
                continue;
            }
            let interior: HashSet<Coord> = p.hops[1..p.hops.len() - 1].iter().copied().collect();
            for &c in &interior {
                if !seen.insert(c) {
                    return false;
                }
            }
        }
        true
    }
}

impl FaultTolerantRouter {
    /// The per-path hop-count ceiling `route_disjoint` asserts:
    /// `distance(src, dst) + 2k + 2·(total ring perimeter) + 2`. A detour
    /// around a ring costs at most its perimeter, each of the `k` paths
    /// pays at most two extra hops fanning out of `src` and into `dst`,
    /// and augmentation reroutes a path around each ring at most once per
    /// side.
    pub fn disjoint_len_bound(&self, src: Coord, dst: Coord, k: usize) -> usize {
        let d = self.topology().distance(src, dst) as usize;
        let p: usize = self.rings().iter().map(|r| r.cells().len()).sum();
        d + 2 * k + 2 * p + 2
    }
}

/// Shared implementation behind `route_disjoint` / `route_disjoint_with`.
pub(crate) fn compute(
    router: &FaultTolerantRouter,
    src: Coord,
    dst: Coord,
    k: usize,
    scratch: &mut RouteScratch,
) -> Result<DisjointRoutes, RoutingError> {
    let t = router.topology();
    let mut primary = Path::new(src);
    router.traverse_indexed(src, dst, Some(&mut primary.hops), scratch)?;
    let k = k.max(1);
    let d = t.distance(src, dst) as usize;
    if k == 1 || src == dst {
        let stretch = primary.stretch(t).unwrap_or(1.0);
        debug_assert!(primary.len() <= router.disjoint_len_bound(src, dst, k));
        return Ok(DisjointRoutes {
            paths: vec![primary],
            stretch,
        });
    }

    let mut flow = FlowNetwork::build(router, src, dst);
    // Seed with the production route when it is simple (traversals around
    // merged rings can in principle revisit a cell, in which case plain
    // augmentation finds the first unit itself).
    flow.seed(&primary);
    flow.augment_to(k);
    let paths = flow.decompose(src, dst);
    debug_assert!(!paths.is_empty(), "primary route exists, so min-cut >= 1");
    let bound = router.disjoint_len_bound(src, dst, k);
    debug_assert!(paths.iter().all(|p| p.len() <= bound));
    let max_len = paths.iter().map(Path::len).max().unwrap_or(0);
    let stretch = if d == 0 {
        1.0
    } else {
        max_len as f64 / d as f64
    };
    Ok(DisjointRoutes { paths, stretch })
}

/// Unit-capacity vertex-splitting flow network over the enabled map.
///
/// Node ids: the enabled cell with topology index `i` becomes the pair
/// `in = 2i` (even) and `out = 2i + 1` (odd). Edges are stored as dual
/// pairs — edge `e` and `e ^ 1` are each other's residuals, forward edges
/// at even indices — the classic adjacency-list max-flow layout. The
/// source is `out(src)` and the sink `in(dst)`, so the endpoint split
/// arcs never carry flow and only interior cells are capacity-limited.
/// All iteration orders are insertion orders, so the returned
/// decomposition is fully deterministic — cold oracles replaying a serve
/// reply reproduce it bit-for-bit.
struct FlowNetwork {
    topology: Topology,
    to: Vec<u32>,
    cap: Vec<u32>,
    init: Vec<u32>,
    adj: Vec<Vec<u32>>,
    source: u32,
    sink: u32,
}

impl FlowNetwork {
    fn build(router: &FaultTolerantRouter, src: Coord, dst: Coord) -> Self {
        let t = router.topology();
        let enabled = router.enabled();
        let n = t.len();
        let mut net = FlowNetwork {
            topology: t,
            to: Vec::new(),
            cap: Vec::new(),
            init: Vec::new(),
            adj: vec![Vec::new(); 2 * n],
            source: 2 * t.index_of(src) as u32 + 1,
            sink: 2 * t.index_of(dst) as u32,
        };
        for c in t.coords() {
            if !enabled.is_enabled(c) {
                continue;
            }
            let i = t.index_of(c) as u32;
            net.add_edge(2 * i, 2 * i + 1, 1);
            for dir in DIRECTIONS {
                if let Some(nb) = t.neighbor(c, dir).coord() {
                    if enabled.is_enabled(nb) {
                        net.add_edge(2 * i + 1, 2 * t.index_of(nb) as u32, 1);
                    }
                }
            }
        }
        net
    }

    fn in_node(&self, c: Coord) -> u32 {
        2 * self.topology.index_of(c) as u32
    }

    fn cell_of(&self, node: u32) -> Coord {
        self.topology.coord_of(node as usize / 2)
    }

    fn add_edge(&mut self, from: u32, to: u32, cap: u32) {
        let e = self.to.len() as u32;
        self.to.push(to);
        self.cap.push(cap);
        self.init.push(cap);
        self.adj[from as usize].push(e);
        self.to.push(from);
        self.cap.push(0);
        self.init.push(0);
        self.adj[to as usize].push(e + 1);
    }

    fn find_forward(&self, from: u32, to: u32) -> Option<u32> {
        self.adj[from as usize]
            .iter()
            .copied()
            .find(|&e| e % 2 == 0 && self.to[e as usize] == to)
    }

    /// Pushes one unit of flow along the production route, if it is a
    /// simple path through the network. Returns false (and changes
    /// nothing) otherwise.
    fn seed(&mut self, primary: &Path) -> bool {
        if primary.hops.len() < 2 {
            return false;
        }
        let mut seen = HashSet::new();
        if !primary.hops.iter().all(|&c| seen.insert(c)) {
            return false;
        }
        let mut edges = Vec::with_capacity(2 * primary.hops.len());
        for w in primary.hops.windows(2) {
            let a_out = self.in_node(w[0]) + 1;
            let b_in = self.in_node(w[1]);
            match self.find_forward(a_out, b_in) {
                Some(e) => edges.push(e),
                None => return false,
            }
            if b_in != self.sink {
                match self.find_forward(b_in, b_in + 1) {
                    Some(e) => edges.push(e),
                    None => return false,
                }
            }
        }
        if edges.iter().any(|&e| self.cap[e as usize] == 0) {
            return false;
        }
        for &e in &edges {
            self.cap[e as usize] -= 1;
            self.cap[(e ^ 1) as usize] += 1;
        }
        true
    }

    fn flow_value(&self) -> usize {
        self.adj[self.source as usize]
            .iter()
            .map(|&e| {
                if e % 2 == 0 {
                    (self.init[e as usize] - self.cap[e as usize]) as usize
                } else {
                    0
                }
            })
            .sum()
    }

    /// BFS augmentation (Edmonds–Karp) until the flow value reaches `k`
    /// or the residual graph disconnects.
    fn augment_to(&mut self, k: usize) {
        let mut value = self.flow_value();
        while value < k && self.augment_once() {
            value += 1;
        }
    }

    fn augment_once(&mut self) -> bool {
        let n = self.adj.len();
        let mut parent: Vec<u32> = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        queue.push_back(self.source);
        let mut found = false;
        'bfs: while let Some(u) = queue.pop_front() {
            for &e in &self.adj[u as usize] {
                let v = self.to[e as usize];
                if self.cap[e as usize] > 0 && v != self.source && parent[v as usize] == u32::MAX {
                    parent[v as usize] = e;
                    if v == self.sink {
                        found = true;
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if !found {
            return false;
        }
        let mut v = self.sink;
        while v != self.source {
            let e = parent[v as usize];
            self.cap[e as usize] -= 1;
            self.cap[(e ^ 1) as usize] += 1;
            v = self.to[(e ^ 1) as usize];
        }
        true
    }

    /// Decomposes the flow into vertex-disjoint simple paths. With unit
    /// interior split capacities every interior cell carries at most one
    /// unit, so each walk from the source is forced and never revisits a
    /// cell; residual cycle flow (possible in principle after
    /// cancellation) is simply left unconsumed.
    fn decompose(&mut self, src: Coord, dst: Coord) -> Vec<Path> {
        let m = self.flow_value();
        let mut paths = Vec::with_capacity(m);
        let node_limit = self.adj.len() + 2;
        for _ in 0..m {
            let mut hops = vec![src];
            let mut cur = self.source;
            let mut steps = 0;
            let mut ok = true;
            while cur != self.sink {
                steps += 1;
                if steps > node_limit {
                    ok = false;
                    break;
                }
                let next = self.adj[cur as usize]
                    .iter()
                    .copied()
                    .find(|&e| e % 2 == 0 && self.cap[e as usize] < self.init[e as usize]);
                let e = match next {
                    Some(e) => e,
                    None => {
                        ok = false;
                        break;
                    }
                };
                self.cap[e as usize] += 1;
                self.cap[(e ^ 1) as usize] -= 1;
                cur = self.to[e as usize];
                if cur % 2 == 1 && cur != self.source {
                    hops.push(self.cell_of(cur));
                }
            }
            if ok {
                hops.push(dst);
                paths.push(Path { hops });
            }
        }
        paths
    }
}
