//! Adaptive minimal routing guided by the fault-region distance field.
//!
//! `ocp-core`'s distance-field protocol gives every node its hop distance
//! to the nearest disabled region. An *online* minimal router can use that
//! field as a compass: among the (up to two) productive directions it
//! always prefers the enabled neighbor farther from fault regions, steering
//! around blocks before touching them. This is the "early avoidance"
//! routing objective the paper's conclusion alludes to — and measurably
//! beats plain dimension-order routing, which walks straight into regions
//! and fails (or, with rings, detours).
//!
//! The router is purely local: each decision uses only the current node's
//! neighbors' enabled bits and field values — exactly the information a
//! hardware router would have after the labeling protocols converge.

use crate::path::{EnabledMap, Path, RoutingError};
use crate::xy::preferred_direction;
use ocp_mesh::{Coord, Dimension, Direction, Grid};

/// Routes `src → dst` minimally, choosing at every hop the productive
/// direction whose next node is enabled and has the largest distance-field
/// value (ties: keep the XY-preferred direction). Fails with
/// [`RoutingError::DisabledHop`] if both productive neighbors are disabled
/// — the online penalty of locality; compare [`crate::minimal_route`],
/// which searches globally.
pub fn adaptive_minimal_route(
    enabled: &EnabledMap,
    field: &Grid<u16>,
    src: Coord,
    dst: Coord,
) -> Result<Path, RoutingError> {
    let t = enabled.topology();
    assert_eq!(t, field.topology(), "field belongs to a different machine");
    for endpoint in [src, dst] {
        if !enabled.is_enabled(endpoint) {
            return Err(RoutingError::EndpointDisabled { node: endpoint });
        }
    }
    let mut path = Path::new(src);
    let mut cur = src;
    while cur != dst {
        let candidates = productive(t, cur, dst);
        let step = candidates
            .iter()
            .filter_map(|&dir| {
                let n = t.neighbor(cur, dir).coord()?;
                enabled.is_enabled(n).then_some((dir, n))
            })
            // Highest field value wins; XY preference (list order) breaks ties
            // because `max_by_key` keeps the *last* maximum and the preferred
            // direction is listed first... so compare with index penalty.
            .enumerate()
            .max_by_key(|(idx, (_, n))| (*field.get(*n), std::cmp::Reverse(*idx)))
            .map(|(_, hop)| hop);
        match step {
            Some((_, n)) => {
                path.hops.push(n);
                cur = n;
            }
            None => {
                // Both productive neighbors disabled (or off-machine).
                let blocked = candidates
                    .first()
                    .and_then(|&d| t.neighbor(cur, d).coord())
                    .unwrap_or(cur);
                return Err(RoutingError::DisabledHop { node: blocked });
            }
        }
    }
    Ok(path)
}

/// Productive directions, XY-preferred first.
fn productive(t: ocp_mesh::Topology, cur: Coord, dst: Coord) -> Vec<Direction> {
    let mut dirs = Vec::with_capacity(2);
    if let Some(d) = preferred_direction(t, cur, dst) {
        dirs.push(d);
        if d.dimension() == Dimension::X {
            let mut probe = cur;
            probe.x = dst.x;
            let probe = match t.kind() {
                ocp_mesh::TopologyKind::Mesh => probe,
                ocp_mesh::TopologyKind::Torus => t.wrap(probe),
            };
            if let Some(dy) = preferred_direction(t, probe, dst) {
                dirs.push(dy);
            }
        }
    }
    dirs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_core::labeling::distance::compute_distance_field;
    use ocp_core::prelude::*;
    use ocp_distsim::Executor;
    use ocp_mesh::Topology;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn setup(t: Topology, faults: &[Coord]) -> (EnabledMap, Grid<u16>) {
        let map = FaultMap::new(t, faults.iter().copied());
        let out = run_pipeline(&map, &PipelineConfig::default());
        let field = compute_distance_field(&map, &out.activation, Executor::Sequential, 1000);
        (EnabledMap::from_outcome(&out), field.grid)
    }

    #[test]
    fn fault_free_is_minimal() {
        let t = Topology::mesh(8, 8);
        let (enabled, field) = setup(t, &[]);
        let p = adaptive_minimal_route(&enabled, &field, c(0, 0), c(5, 6)).unwrap();
        assert_eq!(p.len() as u32, t.distance(c(0, 0), c(5, 6)));
        p.validate(&enabled).unwrap();
    }

    #[test]
    fn sidesteps_fault_that_blocks_xy() {
        // XY from (0,3) to (7,3) runs straight into the fault at (4,3);
        // the adaptive router feels the field dropping and swings around
        // while staying minimal — as long as a minimal path exists.
        let t = Topology::mesh(9, 9);
        let (enabled, field) = setup(t, &[c(4, 3)]);
        assert!(crate::xy::route(&enabled, c(0, 3), c(7, 0)).is_err());
        let p = adaptive_minimal_route(&enabled, &field, c(0, 3), c(7, 0)).unwrap();
        assert_eq!(p.len() as u32, t.distance(c(0, 3), c(7, 0)));
        assert!(!p.hops.contains(&c(4, 3)));
    }

    #[test]
    fn prefers_high_field_neighbors() {
        // Two productive options at the first hop; the one nearer the fault
        // has a smaller field value and must be avoided.
        let t = Topology::mesh(9, 9);
        let (enabled, field) = setup(t, &[c(3, 1)]);
        let p = adaptive_minimal_route(&enabled, &field, c(1, 1), c(5, 5)).unwrap();
        // Second hop would be (3,1)-adjacent if it went straight east.
        assert_eq!(p.len() as u32, t.distance(c(1, 1), c(5, 5)));
        // It should rise away from the fault early.
        assert!(p.hops[1] == c(1, 2) || p.hops[2] == c(2, 2), "{:?}", p.hops);
    }

    #[test]
    fn online_router_can_fail_where_global_minimal_succeeds() {
        // Greedy locality is not complete: a pocket on the minimal
        // rectangle can trap it. It must fail gracefully, not loop.
        let t = Topology::mesh(10, 10);
        // Wall with a trap: column x=5 disabled for y in 0..=4 except a
        // notch the greedy router may enter depending on the field.
        let faults: Vec<Coord> = (0..=4).map(|y| c(5, y)).collect();
        let (enabled, field) = setup(t, &faults);
        let adaptive = adaptive_minimal_route(&enabled, &field, c(2, 2), c(8, 2));
        let global = crate::minimal_route(&enabled, c(2, 2), c(8, 2));
        // The wall spans the whole rectangle height: both must fail here.
        assert!(global.is_err());
        assert!(adaptive.is_err());
    }

    #[test]
    fn adaptive_no_worse_than_xy_on_random_instances() {
        use ocp_workloads::uniform_faults;
        use rand::rngs::SmallRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let t = Topology::mesh(16, 16);
        let mut xy_ok = 0u32;
        let mut adaptive_ok = 0u32;
        let mut pairs = 0u32;
        for seed in 0..6u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let faults = uniform_faults(t, 12, &mut rng);
            let (enabled, field) = setup(t, &faults);
            let nodes = enabled.enabled_coords();
            for _ in 0..40 {
                let pick: Vec<_> = nodes.choose_multiple(&mut rng, 2).collect();
                pairs += 1;
                if crate::xy::route(&enabled, *pick[0], *pick[1]).is_ok() {
                    xy_ok += 1;
                }
                if adaptive_minimal_route(&enabled, &field, *pick[0], *pick[1]).is_ok() {
                    adaptive_ok += 1;
                }
            }
        }
        assert!(pairs > 0);
        assert!(
            adaptive_ok >= xy_ok,
            "adaptive {adaptive_ok} < xy {xy_ok} of {pairs}"
        );
    }
}
