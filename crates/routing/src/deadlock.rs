//! Virtual-channel deadlock-freedom model for ring-detour routing.
//!
//! Wormhole switching deadlocks when worms hold channels in a cycle;
//! Dally & Seitz reduce freedom from deadlock to acyclicity of the
//! channel dependency graph (CDG). This module fixes the virtual-channel
//! discipline the detour router is modeled under and packages a *prover*:
//! given any labeled snapshot, build the CDG of the snapshot's concrete
//! route set and check it acyclic with [`crate::cdg::DependencyGraph`].
//!
//! # The discipline
//!
//! Every hop of a route is labeled with a channel index composed of three
//! coordinates ([`DetourVcModel::assign`]):
//!
//! * **Quadrant message class** (`3·(sgn dx + 1) + (sgn dy + 1)`, from the
//!   wrap-aware src→dst offset). Dependency edges only ever connect
//!   channels of the *same* message, so per-message class labels confine
//!   any CDG cycle to one class layer. f-cube4 (Boppana–Chalasani) uses
//!   four classes (EW/WE/NS/SN); that is not enough here because our
//!   router picks each ring walk's orientation by the shorter side, so an
//!   EW message's y-phase can run in either direction and the walks supply
//!   the reversal turns a cycle needs. Splitting by the y sign as well —
//!   eight quadrant classes — restores per-layer monotonicity.
//! * **Walk sub-channel with a per-ring dateline.** Ring-walk hops
//!   (consecutive cells of one ring's cycle order) use a detour channel
//!   separate from the dimension-ordered spine; a walk that crosses the
//!   ring's **dateline** (the edge between its last and first stored cell,
//!   in either rotation) moves to the high detour copy for the rest of
//!   that walk, so neither copy can chain into a full loop around the
//!   ring. Keeping even pre-dateline walk hops off the base channel
//!   matters: a walk step shared with the spine layer re-introduces
//!   reversal turns into the e-cube argument.
//! * **Wrap layer** (torus): the number of wrap-seam crossings — in
//!   *either* dimension — at or before the hop, capped at 2. The count is
//!   monotone along a path, so every CDG cycle lies within a single
//!   layer; and because a seam hop itself is counted, layer 0 contains no
//!   seam links at all and is a pure-mesh sub-network. A per-dimension
//!   dateline bit (the textbook construction for fault-free e-cube tori)
//!   is *not* enough once rings exist: a message that wrapped x keeps
//!   using low y-channels, so the layers interleave and composite cycles
//!   that wrap both dimensions through ring walks survive it.
//!
//! The label space is `27` on a mesh (9 classes × 3 sub-channels, one
//! class unused) and `81` on a torus (× 3 wrap layers). That is the size
//! of the *name space*, not the hardware cost: a physical link only
//! carries the labels of messages that actually traverse it, and
//! [`DeadlockProof::max_link_vcs`] reports the worst per-link count —
//! 3–12 across this repo's suite snapshots.
//!
//! # What the prover does and does not prove
//!
//! The prover is deliberately *empirical*: the CDG is built from the
//! concrete routes of a snapshot, not from a symbolic routing relation,
//! and acyclicity is certified per snapshot. The discipline is **not** a
//! universal theorem for every fault pattern — e.g. a pocket cell wedged
//! between two diagonal-contact faults makes the spine enter and back out
//! (a genuine U-turn), and a matched pair of such U-turns can close a
//! net-zero-rotation cycle around one ring inside a single class, which
//! no bounded per-class labeling can break without also fixing each
//! class's walk orientation — a change the byte-identical production
//! router rules out. That is exactly why the checker runs on every suite
//! snapshot and in the experiment harness: mutation-negative cases (drop
//! the wrap layer, fold the quadrant classes, drop a ring dateline,
//! collapse to one VC) show up as concrete cycles the same checker
//! rejects.
//!
//! Scope: the model covers the router's operational route set (the
//! single-path detour routes every query traverses). The `k ≥ 2`
//! alternates of [`crate::disjoint`] are path-diversity candidates — a
//! caller injects one of them, not all simultaneously — so each reply's
//! chosen path is covered by the same discipline.

use crate::cdg::DependencyGraph;
use crate::path::Path;
use crate::router::FaultTolerantRouter;
use crate::xy::wrap_delta;
use ocp_mesh::{Coord, TopologyKind};
use std::collections::{HashMap, HashSet};

/// Channel-label layout constants for [`DetourVcModel::assign`]:
/// `label = 27·layer + 3·class + sub`.
pub mod vc {
    /// Sub-channel of dimension-ordered spine hops.
    pub const SUB_BASE: u8 = 0;
    /// Sub-channel of ring-walk hops before the ring's dateline.
    pub const SUB_WALK: u8 = 1;
    /// Sub-channel of ring-walk hops at or after the dateline crossing.
    pub const SUB_WALK_HIGH: u8 = 2;
    /// Sub-channels per (class, layer).
    pub const SUBS: u8 = 3;
    /// Quadrant message classes (index 4, `dx == dy == 0`, is unused).
    pub const CLASSES: u8 = 9;
    /// Wrap layers on a torus (a mesh only ever uses layer 0).
    pub const LAYERS: u8 = 3;
}

/// The virtual-channel assignment the detour router is modeled under:
/// quadrant message class × walk sub-channel (per-ring dateline) × sticky
/// wrap layer. See the module docs for the discipline and its scope.
#[derive(Clone, Copy)]
pub struct DetourVcModel<'a> {
    router: &'a FaultTolerantRouter,
}

impl<'a> DetourVcModel<'a> {
    /// Model for the routes of `router`'s snapshot.
    pub fn new(router: &'a FaultTolerantRouter) -> Self {
        Self { router }
    }

    /// Size of the label space the discipline draws from: 27 on a mesh,
    /// 81 on a torus. Per-link hardware cost is far lower — see
    /// [`DeadlockProof::max_link_vcs`].
    pub fn vcs(&self) -> u8 {
        match self.router.topology().kind() {
            TopologyKind::Mesh => vc::CLASSES * vc::SUBS,
            TopologyKind::Torus => vc::LAYERS * vc::CLASSES * vc::SUBS,
        }
    }

    /// Quadrant message class of `path`: `3·(sgn dx + 1) + (sgn dy + 1)`
    /// over the wrap-aware src→dst offset (ties wrap positive, matching
    /// the router's own direction choice).
    pub fn message_class(&self, path: &Path) -> u8 {
        let t = self.router.topology();
        let dx = wrap_delta(t, path.src().x, path.dst().x, t.width());
        let dy = wrap_delta(t, path.src().y, path.dst().y, t.height());
        (3 * (dx.signum() + 1) + (dy.signum() + 1)) as u8
    }

    /// Wrap layer of hop `hop`: seam crossings (either dimension) at or
    /// before the hop, capped at `LAYERS - 1`. Always 0 on a mesh.
    pub fn wrap_layer(&self, path: &Path, hop: usize) -> u8 {
        if self.router.topology().kind() == TopologyKind::Mesh {
            return 0;
        }
        (0..=hop)
            .filter(|&j| {
                let (u, v) = (path.hops[j], path.hops[j + 1]);
                u.x.abs_diff(v.x) > 1 || u.y.abs_diff(v.y) > 1
            })
            .count()
            .min(usize::from(vc::LAYERS - 1)) as u8
    }

    /// The ring index whose cycle order makes `a → b` a ring-walk step,
    /// if any: both cells on the ring at rotationally adjacent positions.
    fn ring_step(&self, a: Coord, b: Coord) -> Option<usize> {
        self.router.rings().iter().enumerate().find_map(|(i, r)| {
            if !r.is_cycle() {
                return None;
            }
            let m = r.cells().len();
            match (r.position_of(a), r.position_of(b)) {
                (Some(pa), Some(pb)) if (pa + 1) % m == pb || (pb + 1) % m == pa => Some(i),
                _ => None,
            }
        })
    }

    /// True when step `pa → pb` crosses the ring's dateline (the edge
    /// between stored positions `m-1` and `0`), in either rotation.
    fn crosses_dateline(pa: usize, pb: usize, m: usize) -> bool {
        (pa == m - 1 && pb == 0) || (pa == 0 && pb == m - 1)
    }

    /// Walk sub-channel of hop `hop`: [`vc::SUB_BASE`] for spine hops,
    /// [`vc::SUB_WALK`]/[`vc::SUB_WALK_HIGH`] for ring-walk hops before /
    /// after the current walk crossed the ring's dateline.
    pub fn walk_sub(&self, path: &Path, hop: usize) -> u8 {
        let (a, b) = (path.hops[hop], path.hops[hop + 1]);
        let Some(ri) = self.ring_step(a, b) else {
            return vc::SUB_BASE;
        };
        // Find the start of the current contiguous walk on this ring,
        // then check whether it crossed the dateline at or before `hop`.
        let mut start = hop;
        while start > 0 && self.ring_step(path.hops[start - 1], path.hops[start]) == Some(ri) {
            start -= 1;
        }
        let ring = &self.router.rings()[ri];
        let m = ring.cells().len();
        let crossed = (start..=hop).any(|j| {
            let pa = ring.position_of(path.hops[j]).expect("walk cell on ring");
            let pb = ring
                .position_of(path.hops[j + 1])
                .expect("walk cell on ring");
            Self::crosses_dateline(pa, pb, m)
        });
        if crossed {
            vc::SUB_WALK_HIGH
        } else {
            vc::SUB_WALK
        }
    }

    /// Channel label of hop `hop` of `path` (0 = first link):
    /// `27·layer + 3·class + sub`.
    pub fn assign(&self, path: &Path, hop: usize) -> u8 {
        27 * self.wrap_layer(path, hop) + 3 * self.message_class(path) + self.walk_sub(path, hop)
    }

    /// The assignment as a [`crate::cdg::VcAssignment`] closure, for
    /// [`DependencyGraph::from_paths`] and the wormhole simulator.
    pub fn assignment(&self) -> impl Fn(&Path, usize) -> u8 + '_ {
        move |path, hop| self.assign(path, hop)
    }
}

/// Outcome of a deadlock-freedom check over a concrete path set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlockProof {
    /// Paths the CDG was built from.
    pub paths: usize,
    /// Distinct (link, vc) channels observed.
    pub channels: usize,
    /// Dependency edges between channels.
    pub dependencies: usize,
    /// Back edges found by DFS; 0 proves the observed dependencies
    /// deadlock-free (Dally–Seitz).
    pub back_edges: usize,
    /// Size of the label space the model draws from (27 mesh, 81 torus).
    pub vcs: u8,
    /// Largest number of distinct labels observed on any one physical
    /// link — the per-link virtual-channel count the discipline actually
    /// costs on this snapshot.
    pub max_link_vcs: usize,
}

impl DeadlockProof {
    /// True when the dependency graph is acyclic.
    pub fn is_free(&self) -> bool {
        self.back_edges == 0
    }
}

/// Builds the CDG of `paths` under the [`DetourVcModel`] of `router`'s
/// snapshot and checks it for cycles.
pub fn prove_paths(router: &FaultTolerantRouter, paths: &[Path]) -> DeadlockProof {
    let model = DetourVcModel::new(router);
    let assign = model.assignment();
    let graph = DependencyGraph::from_paths(paths.iter(), &assign);
    let mut per_link: HashMap<(Coord, Coord), HashSet<u8>> = HashMap::new();
    for p in paths {
        for (i, w) in p.hops.windows(2).enumerate() {
            per_link
                .entry((w[0], w[1]))
                .or_default()
                .insert(assign(p, i));
        }
    }
    DeadlockProof {
        paths: paths.len(),
        channels: graph.channel_count(),
        dependencies: graph.edge_count(),
        back_edges: graph.count_back_edges(),
        vcs: model.vcs(),
        max_link_vcs: per_link.values().map(HashSet::len).max().unwrap_or(0),
    }
}

/// Routes **every** ordered enabled pair of the snapshot and proves the
/// full route set deadlock-free under the [`DetourVcModel`]. This is the
/// exhaustive prover the acceptance suites run on 12×12-class fixtures;
/// for larger snapshots prefer [`prove_router_sampled`].
pub fn prove_router_all_pairs(router: &FaultTolerantRouter) -> DeadlockProof {
    let coords = router.enabled().enabled_coords();
    let mut paths = Vec::new();
    for &src in &coords {
        for &dst in &coords {
            if src == dst {
                continue;
            }
            if let Ok(p) = router.route(src, dst) {
                paths.push(p);
            }
        }
    }
    prove_paths(router, &paths)
}

/// Like [`prove_router_all_pairs`] but over a deterministic stride-sample
/// of ordered pairs, capped at `max_paths` routes — the form the
/// experiment harness uses on production-sized snapshots.
pub fn prove_router_sampled(router: &FaultTolerantRouter, max_paths: usize) -> DeadlockProof {
    let coords = router.enabled().enabled_coords();
    let n = coords.len();
    let total = n.saturating_mul(n.saturating_sub(1));
    let stride = (total / max_paths.max(1)).max(1);
    let mut paths = Vec::new();
    let mut next = 0usize;
    let mut seen = 0usize;
    'outer: for &src in &coords {
        for &dst in &coords {
            if src == dst {
                continue;
            }
            if seen == next {
                next += stride;
                if let Ok(p) = router.route(src, dst) {
                    paths.push(p);
                }
                if paths.len() >= max_paths {
                    break 'outer;
                }
            }
            seen += 1;
        }
    }
    prove_paths(router, &paths)
}
