//! # ocp-routing
//!
//! Fault-tolerant routing on 2-D meshes — the application the paper's fault
//! model exists to serve.
//!
//! The paper's motivation (Sections 1–2): a fault region that is
//! **orthogonally convex** admits simple progressive (never-backtracking)
//! routing around its boundary with few virtual channels, but the classical
//! rectangular model disables many healthy nodes. This crate quantifies that
//! trade-off end to end:
//!
//! * [`xy`] — dimension-order (e-cube) routing, the deadlock-free baseline.
//! * [`fault_ring`] — fault rings: the cycle of enabled nodes hugging each
//!   fault region (Boppana–Chalasani style, including the diagonal-contact
//!   cells). For orthogonally convex regions away from the mesh boundary the
//!   ring is a simple 4-connected cycle; regions touching the boundary
//!   degrade to open *fault chains*.
//! * [`router`] — fault-tolerant XY: route dimension-ordered, and when
//!   blocked by a fault region traverse its ring to the best exit
//!   (Chalasani–Boppana extended e-cube in spirit). Works uniformly over
//!   rectangular faulty blocks and orthogonal convex disabled regions.
//! * [`index`] — per-snapshot query indexes (segment-jump interval tables,
//!   ring position maps, exit-candidate sets) built once per router so
//!   query cost scales with fault encounters, not path length, plus the
//!   reusable [`RouteScratch`] that makes `route_len` allocation-free.
//! * `layout` / `wide` (crate-internal) — the batched SIMD-wide engine
//!   behind `FaultTolerantRouter::route_len_batch`: cache-line-aligned
//!   SoA repacks of the index tables and lockstep branch-free lane
//!   kernels that move 4–8 queries through the index together,
//!   byte-identical to the scalar path.
//! * [`incremental`] — delta-driven epoch builds: `rebuild_from` patches
//!   the previous epoch's tables (untouched CSR/wide lines copied,
//!   unchanged ring indexes `Arc`-shared, matched exit-directory
//!   segments memcpy'd) instead of rebuilding from scratch, and the cold
//!   path itself is banded over scoped threads — both byte-identical to
//!   a single-threaded cold `FaultTolerantRouter::new`, pinned by
//!   `table_digest` equivalence suites.
//! * [`oracle`] — BFS shortest paths over enabled nodes: ground truth for
//!   reachability and minimal hop counts.
//! * [`cdg`] — empirical channel-dependency-graph analysis: collect the
//!   link-to-link dependencies the router actually exercises and check for
//!   cycles (Dally–Seitz criterion) under a chosen virtual-channel
//!   assignment.
//! * [`disjoint`] — k pairwise vertex-disjoint routes per query
//!   (`FaultTolerantRouter::route_disjoint`): the CW/CCW ring-detour
//!   split generalized to the vertex min-cut via unit-capacity flow
//!   seeded with the production route.
//! * [`deadlock`] — the virtual-channel discipline the detour routes are
//!   modeled under (XY base + ring-detour channel, torus dateline) and a
//!   CDG-based prover that checks any labeled snapshot deadlock-free.
//! * [`wormhole`] — a flit-level wormhole network simulator (per-link
//!   virtual-channel buffers, credit flow, cycle-accurate worm advancement,
//!   deadlock watchdog) for latency/throughput measurements under faults.
//! * [`minimal`] / [`adaptive`] — minimal-path existence and construction,
//!   and an online adaptive minimal router steered by `ocp-core`'s
//!   fault-region distance field (early avoidance).
//! * [`metrics`] — routability and stretch comparisons between the
//!   faulty-block and disabled-region models (experiment E10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod cdg;
pub mod deadlock;
pub mod disjoint;
pub mod fault_ring;
pub mod incremental;
pub mod index;
mod layout;
pub mod metrics;
pub mod minimal;
pub mod oracle;
pub mod path;
pub mod router;
mod wide;
pub mod wormhole;
pub mod xy;

pub use adaptive::adaptive_minimal_route;
pub use deadlock::{DeadlockProof, DetourVcModel};
pub use disjoint::DisjointRoutes;
pub use fault_ring::{build_rings, FaultRing, RingShape};
pub use incremental::BuildBreakdown;
pub use index::RouteScratch;
pub use metrics::{compare_models, ModelComparison};
pub use minimal::{minimal_routability, minimal_route};
pub use oracle::bfs_path;
pub use path::{EnabledMap, Path, RoutingError};
pub use router::FaultTolerantRouter;
