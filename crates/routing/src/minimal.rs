//! Minimal (shortest-possible) routing over enabled nodes.
//!
//! The paper's introduction chains three properties: convex fault regions
//! permit **progressive** routing (never backtrack), progressiveness is
//! necessary for **minimal** routing (always reach the destination over a
//! shortest path), and minimal fault-tolerant routing is what [Wu 2000]
//! builds on the faulty-block model. This module provides the minimal-path
//! machinery: existence, construction, and the "how many pairs are
//! minimally routable" metric that quantifies what each fault model leaves
//! on the table.
//!
//! A minimal path from `s` to `d` moves only in the (up to two) directions
//! that reduce distance, so it lives inside the axis-aligned rectangle
//! spanned by `s` and `d`. Existence is decided by a dynamic program over
//! that rectangle (on tori, over the shorter-way rectangle per dimension).

use crate::path::{EnabledMap, Path, RoutingError};
use crate::xy::preferred_direction;
use ocp_mesh::{Coord, Topology};
use std::collections::HashMap;

/// The (up to two) distance-reducing directions from `cur` toward `dst`.
fn productive_directions(t: Topology, cur: Coord, dst: Coord) -> Vec<ocp_mesh::Direction> {
    let mut dirs = Vec::with_capacity(2);
    if let Some(d) = preferred_direction(t, cur, dst) {
        dirs.push(d);
        let mut probe = cur;
        // preferred_direction fixes x first; ask again pretending x done to
        // surface the y-productive direction as well.
        match d.dimension() {
            ocp_mesh::Dimension::X => {
                probe.x = dst.x;
                if let Some(dy) = preferred_direction(t, t.wrap_or_id(probe), dst) {
                    dirs.push(dy);
                }
            }
            ocp_mesh::Dimension::Y => {} // x already aligned; only y left
        }
    }
    dirs
}

/// Helper on [`Topology`]: wrap for tori, identity for meshes.
trait WrapOrId {
    fn wrap_or_id(&self, c: Coord) -> Coord;
}

impl WrapOrId for Topology {
    fn wrap_or_id(&self, c: Coord) -> Coord {
        match self.kind() {
            ocp_mesh::TopologyKind::Mesh => c,
            ocp_mesh::TopologyKind::Torus => self.wrap(c),
        }
    }
}

/// Returns a minimal enabled path `src → dst` if one exists.
///
/// The search is a BFS restricted to productive hops (each hop reduces the
/// distance by one), so any returned path has exactly
/// `topology.distance(src, dst)` links; failure means *no* minimal path of
/// enabled nodes exists, even though a longer detour might.
///
/// ```
/// use ocp_mesh::{Coord, Grid, Topology};
/// use ocp_routing::{minimal_route, EnabledMap};
///
/// let t = Topology::mesh(6, 6);
/// let mut grid = Grid::filled(t, true);
/// grid.set(Coord::new(2, 0), false); // a fault on the XY path
/// let enabled = EnabledMap::from_grid(grid);
/// let p = minimal_route(&enabled, Coord::new(0, 0), Coord::new(4, 2)).unwrap();
/// assert_eq!(p.len(), 6);                      // still minimal
/// assert!(!p.hops.contains(&Coord::new(2, 0))); // sidesteps the fault
/// ```
pub fn minimal_route(enabled: &EnabledMap, src: Coord, dst: Coord) -> Result<Path, RoutingError> {
    let t = enabled.topology();
    for endpoint in [src, dst] {
        if !enabled.is_enabled(endpoint) {
            return Err(RoutingError::EndpointDisabled { node: endpoint });
        }
    }
    if src == dst {
        return Ok(Path::new(src));
    }
    let mut parent: HashMap<Coord, Coord> = HashMap::new();
    parent.insert(src, src);
    let mut frontier = vec![src];
    while !frontier.is_empty() {
        let mut next_frontier = Vec::new();
        for cur in frontier {
            for dir in productive_directions(t, cur, dst) {
                let Some(n) = t.neighbor(cur, dir).coord() else {
                    continue;
                };
                if !enabled.is_enabled(n) || parent.contains_key(&n) {
                    continue;
                }
                parent.insert(n, cur);
                if n == dst {
                    let mut hops = vec![dst];
                    let mut at = dst;
                    while at != src {
                        at = parent[&at];
                        hops.push(at);
                    }
                    hops.reverse();
                    let path = Path { hops };
                    debug_assert_eq!(path.len() as u32, t.distance(src, dst));
                    return Ok(path);
                }
                next_frontier.push(n);
            }
        }
        frontier = next_frontier;
    }
    Err(RoutingError::Unreachable)
}

/// Fraction of sampled enabled `(src, dst)` pairs that admit a minimal
/// path. The headline comparison of experiment E10': the disabled-region
/// model preserves (weakly) more minimal routability than the faulty-block
/// model because it disables fewer nodes.
pub fn minimal_routability<R: rand::Rng>(enabled: &EnabledMap, samples: usize, rng: &mut R) -> f64 {
    use rand::seq::SliceRandom;
    let nodes = enabled.enabled_coords();
    if nodes.len() < 2 || samples == 0 {
        return 1.0;
    }
    let mut ok = 0usize;
    for _ in 0..samples {
        let pick: Vec<&Coord> = nodes.choose_multiple(rng, 2).collect();
        if minimal_route(enabled, *pick[0], *pick[1]).is_ok() {
            ok += 1;
        }
    }
    ok as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_mesh::Grid;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn fault_free_minimal_everywhere() {
        let t = Topology::mesh(8, 8);
        let enabled = EnabledMap::all_enabled(t);
        for (s, d) in [(c(0, 0), c(7, 7)), (c(3, 6), c(3, 1)), (c(5, 2), c(0, 2))] {
            let p = minimal_route(&enabled, s, d).unwrap();
            assert_eq!(p.len() as u32, t.distance(s, d));
            p.validate(&enabled).unwrap();
        }
    }

    #[test]
    fn snakes_around_obstacle_inside_rectangle() {
        let t = Topology::mesh(8, 8);
        let mut grid = Grid::filled(t, true);
        grid.set(c(3, 0), false); // on the XY path but avoidable minimally
        let enabled = EnabledMap::from_grid(grid);
        let p = minimal_route(&enabled, c(0, 0), c(6, 2)).unwrap();
        assert_eq!(p.len(), 8);
        assert!(!p.hops.contains(&c(3, 0)));
        p.validate(&enabled).unwrap();
    }

    #[test]
    fn full_wall_kills_minimal_but_not_detour() {
        let t = Topology::mesh(8, 8);
        let mut grid = Grid::filled(t, true);
        // Wall spanning the whole src-dst rectangle's height.
        for y in 0..=3 {
            grid.set(c(3, y), false);
        }
        let enabled = EnabledMap::from_grid(grid);
        assert_eq!(
            minimal_route(&enabled, c(0, 0), c(6, 3)),
            Err(RoutingError::Unreachable)
        );
        // The pair is still reachable with a detour.
        assert!(crate::oracle::bfs_path(&enabled, c(0, 0), c(6, 3)).is_ok());
    }

    #[test]
    fn same_row_and_column_cases() {
        let t = Topology::mesh(8, 8);
        let mut grid = Grid::filled(t, true);
        grid.set(c(4, 4), false);
        let enabled = EnabledMap::from_grid(grid);
        // Same row, blocked midway: no minimal path (only one productive
        // direction).
        assert!(minimal_route(&enabled, c(2, 4), c(6, 4)).is_err());
        // Same column, unobstructed.
        let p = minimal_route(&enabled, c(2, 1), c(2, 6)).unwrap();
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn torus_minimal_goes_short_way() {
        let t = Topology::torus(8, 8);
        let enabled = EnabledMap::all_enabled(t);
        let p = minimal_route(&enabled, c(7, 7), c(1, 1)).unwrap();
        assert_eq!(p.len(), 4); // wraps both dimensions
        p.validate(&enabled).unwrap();
    }

    #[test]
    fn routability_metric_bounds() {
        let t = Topology::mesh(10, 10);
        let enabled = EnabledMap::all_enabled(t);
        let mut rng = SmallRng::seed_from_u64(5);
        let r = minimal_routability(&enabled, 50, &mut rng);
        assert_eq!(r, 1.0);

        let mut grid = Grid::filled(t, true);
        for y in 0..10 {
            grid.set(c(5, y), false); // severing wall halves routability
        }
        let holed = EnabledMap::from_grid(grid);
        let r = minimal_routability(&holed, 100, &mut rng);
        assert!(r < 1.0);
        assert!(r > 0.2);
    }
}
