//! Dimension-order (XY / e-cube) routing.

use crate::path::{EnabledMap, Path, RoutingError};
use ocp_mesh::{Coord, Direction, Topology, TopologyKind};

/// The XY-preferred next direction from `cur` toward `dst`: correct the x
/// offset first, then y. `None` when already at the destination.
///
/// On a torus the shorter way around each dimension is chosen (ties go to
/// the positive direction).
pub fn preferred_direction(topology: Topology, cur: Coord, dst: Coord) -> Option<Direction> {
    let dx = wrap_delta(topology, cur.x, dst.x, topology.width());
    if dx != 0 {
        return Some(if dx > 0 {
            Direction::East
        } else {
            Direction::West
        });
    }
    let dy = wrap_delta(topology, cur.y, dst.y, topology.height());
    if dy != 0 {
        return Some(if dy > 0 {
            Direction::North
        } else {
            Direction::South
        });
    }
    None
}

/// Signed offset from `a` to `b` along one dimension, wraparound-aware.
pub(crate) fn wrap_delta(topology: Topology, a: i32, b: i32, extent: u32) -> i32 {
    let raw = b - a;
    match topology.kind() {
        TopologyKind::Mesh => raw,
        TopologyKind::Torus => {
            let e = extent as i32;
            let m = raw.rem_euclid(e);
            if m * 2 > e {
                m - e
            } else {
                m
            }
        }
    }
}

/// Routes `src → dst` with pure XY routing, failing on the first disabled
/// node in the way. This is the fault-intolerant baseline.
pub fn route(enabled: &EnabledMap, src: Coord, dst: Coord) -> Result<Path, RoutingError> {
    let t = enabled.topology();
    for endpoint in [src, dst] {
        if !enabled.is_enabled(endpoint) {
            return Err(RoutingError::EndpointDisabled { node: endpoint });
        }
    }
    let mut path = Path::new(src);
    let mut cur = src;
    while let Some(dir) = preferred_direction(t, cur, dst) {
        let next = t
            .neighbor(cur, dir)
            .coord()
            .expect("XY never leaves the machine");
        if !enabled.is_enabled(next) {
            return Err(RoutingError::DisabledHop { node: next });
        }
        path.hops.push(next);
        cur = next;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_mesh::Grid;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn xy_is_minimal_on_fault_free_mesh() {
        let t = Topology::mesh(8, 8);
        let enabled = EnabledMap::all_enabled(t);
        for (src, dst) in [(c(0, 0), c(7, 7)), (c(3, 5), c(3, 5)), (c(6, 1), c(2, 4))] {
            let p = route(&enabled, src, dst).unwrap();
            assert_eq!(p.len() as u32, t.distance(src, dst));
            p.validate(&enabled).unwrap();
        }
    }

    #[test]
    fn x_is_corrected_before_y() {
        let t = Topology::mesh(8, 8);
        let enabled = EnabledMap::all_enabled(t);
        let p = route(&enabled, c(0, 0), c(2, 2)).unwrap();
        assert_eq!(p.hops, vec![c(0, 0), c(1, 0), c(2, 0), c(2, 1), c(2, 2)]);
    }

    #[test]
    fn torus_takes_short_way_round() {
        let t = Topology::torus(8, 8);
        let enabled = EnabledMap::all_enabled(t);
        let p = route(&enabled, c(0, 0), c(6, 0)).unwrap();
        assert_eq!(p.len(), 2); // west across the seam
        assert_eq!(p.hops[1], c(7, 0));
    }

    #[test]
    fn blocked_by_disabled_node() {
        let t = Topology::mesh(5, 5);
        let mut grid = Grid::filled(t, true);
        grid.set(c(2, 0), false);
        let enabled = EnabledMap::from_grid(grid);
        let err = route(&enabled, c(0, 0), c(4, 0)).unwrap_err();
        assert_eq!(err, RoutingError::DisabledHop { node: c(2, 0) });
    }

    #[test]
    fn disabled_endpoints_rejected() {
        let t = Topology::mesh(5, 5);
        let mut grid = Grid::filled(t, true);
        grid.set(c(4, 4), false);
        let enabled = EnabledMap::from_grid(grid);
        assert!(matches!(
            route(&enabled, c(0, 0), c(4, 4)),
            Err(RoutingError::EndpointDisabled { .. })
        ));
    }

    #[test]
    fn wrap_delta_tie_goes_positive() {
        let t = Topology::torus(4, 4);
        // distance 2 either way; positive direction wins.
        assert_eq!(wrap_delta(t, 0, 2, 4), 2);
        assert_eq!(wrap_delta(t, 2, 0, 4), 2);
        assert_eq!(wrap_delta(t, 0, 3, 4), -1);
    }
}
