//! Cache-packed table layout for the wide (multi-query) engine.
//!
//! The lane kernels in [`crate::wide`] stream per-snapshot tables
//! repacked here from the scalar index into flat 64-byte-aligned arenas,
//! so a batch touches the minimum number of cache lines and resolves the
//! traversal's dependent lookups with precomputed single loads:
//!
//! * [`WideSegments`] — the segment probe's sorted disabled keys as
//!   structure-of-arrays columns (keys in one arena, packed *hit words* —
//!   region code plus both possible ring-entry positions — in a parallel
//!   one), every line starting on a cache-line boundary, plus per-cell
//!   next-blocked tables that answer almost every probe — window clear,
//!   or the encounter distance and its hit word's location — with a
//!   single `u64` load.
//! * [`WideRings`] — each ring's exit candidates packed one-per-`u64`
//!   (`x | y << 15 | mask << 30 | pos << 34`), all rings in a single
//!   arena with each candidate block cache-line aligned. A batch's exit
//!   tasks are sorted by region, so consecutive tasks re-stream the same
//!   block while it is still resident.
//! * [`ExitDirectory`] — O(1) precomputed best exits (cell and cycle
//!   position in one word) for destinations strictly outside a ring's
//!   bounding box, replacing the candidate scan in the common case.
//!
//! Only *compact* rings (cycle positions ≤ 16 bits, extents summing under
//! 2^15 — see [`RingIndex::compact`]) are packed; the packed word needs 15
//! bits per coordinate and 16 per position. Non-compact rings keep
//! `packed == false` in their [`WideRingMeta`] and the scheduler falls back
//! to the scalar candidate columns with u64-lane reductions.
//!
//! Nothing here affects routing results: the packed tables hold exactly
//! the scalar index's values in the scalar index's order, and the scalar
//! tables stay untouched as the equivalence oracle.

use crate::fault_ring::{FaultRing, RingShape};
use crate::incremental::Fnv;
use crate::index::{CandidateColumns, RingIndex, SegmentIndex, NO_REGION};
use ocp_mesh::{Coord, Direction, Topology, TopologyKind};
use std::sync::Arc;

/// The cache-line size every arena base and table block aligns to.
pub(crate) const CACHE_LINE: usize = 64;

/// A flat arena whose payload starts on a [`CACHE_LINE`] boundary.
///
/// `ocp-routing` forbids `unsafe`, so alignment is arranged without
/// `alloc` tricks: the backing `Vec` over-allocates by one cache line and
/// the payload begins at the first aligned element. [`Self::as_slice`] is
/// correct regardless — alignment is a throughput property, not a
/// correctness one — and `Clone` re-aligns for the new allocation.
#[derive(Debug)]
pub(crate) struct AlignedArena<T> {
    buf: Vec<T>,
    base: usize,
}

impl<T: Copy + Default> AlignedArena<T> {
    /// Packs `data` into a freshly aligned arena.
    pub fn from_slice(data: &[T]) -> Self {
        let elem = std::mem::size_of::<T>().max(1);
        let pad = CACHE_LINE / elem.min(CACHE_LINE);
        let mut buf: Vec<T> = Vec::with_capacity(data.len() + pad);
        let addr = buf.as_ptr() as usize;
        let base = ((CACHE_LINE - addr % CACHE_LINE) % CACHE_LINE) / elem;
        // Both grows stay within the reserved capacity, so the base
        // computed from `as_ptr` above remains valid.
        buf.resize(base, T::default());
        buf.extend_from_slice(data);
        Self { buf, base }
    }

    /// The aligned payload.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.buf[self.base..]
    }
}

impl<T: Copy + Default> Clone for AlignedArena<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

/// Rounds `len` up so the next block starts cache-line aligned (given an
/// aligned arena base), in units of `T`-sized elements.
fn pad_to_line<T>(len: usize) -> usize {
    let per_line = CACHE_LINE / std::mem::size_of::<T>().max(1);
    len.div_ceil(per_line) * per_line
}

/// Entry-position sentinel in a hit word: not precomputable — resolve
/// with `RouteIndex::position` at query time (covers [`NO_REGION`] keys,
/// off-line entry cells that can never be probe origins, and ring
/// positions too large to pack).
pub(crate) const ENTRY_UNPACKED: u32 = 0xFFFF;

/// Entry-position sentinel in a hit word: the blocking ring is an open
/// chain — the traversal fails with `BoundaryFaultChain` without ever
/// loading the ring.
pub(crate) const ENTRY_CHAIN: u32 = 0xFFFE;

/// Structure-of-arrays repack of the [`SegmentIndex`] disabled-interval
/// tables: one arena of sorted keys (row lines then column lines, each
/// line cache-line aligned) and a parallel arena of *hit words* at the
/// same offsets. The probe kernels search `keys` only and touch `hits`
/// once per *blocked* probe.
///
/// A hit word packs everything a fault encounter needs, so resolving one
/// costs a single load instead of three dependent ones (region grid →
/// ring shape → position table):
///
/// * bits 0..32 — the region code ([`NO_REGION`] for stray disabled
///   cells, which the traversal's invariant assert rejects);
/// * bits 32..48 — the entry cell's cycle position when the probe ran in
///   the positive direction (the entry cell is then `key − 1` on the
///   walked axis, torus-wrapped);
/// * bits 48..64 — the same for negative probes (entry `key + 1`).
///
/// The position fields use [`ENTRY_CHAIN`] for chain rings and
/// [`ENTRY_UNPACKED`] where no position can be packed; both are produced
/// at build time from the very predicates (`FaultRing::is_cycle`,
/// `RingIndex::position`) the scalar traversal evaluates per query.
#[derive(Clone, Debug)]
pub(crate) struct WideSegments {
    /// `(start, len)` of each row's keys in the arenas, indexed by y.
    rows: Vec<(u32, u32)>,
    /// `(start, len)` of each column's keys, indexed by x.
    cols: Vec<(u32, u32)>,
    keys: AlignedArena<i32>,
    hits: AlignedArena<u64>,
    /// Per-cell next-blocked tables, one block per probe direction
    /// (east, west row-major; north, south column-major): each entry
    /// packs `distance to the first disabled cell in that direction |
    /// hit-word arena index << 16`. Distance is axis-cyclic on a torus
    /// (the seam wrap is baked in at build time) and [`NEXT_NONE`] when
    /// the line holds no disabled cell that way — so an entire probe
    /// resolves from one load: `dist > steps` means the window is clear,
    /// anything else is an encounter `dist − 1` hops out whose hit word
    /// sits at the packed index.
    next: AlignedArena<u64>,
    /// Start of each direction's block in `next` (E, W, N, S order).
    next_base: [u32; 4],
    /// Whether the next-blocked tables exist (extents below 2^16 so
    /// distances pack, and at most [`NEXT_CELL_CAP`] cells so the four
    /// per-cell blocks stay a bounded fraction of snapshot memory;
    /// absent tables fall back to the search kernels).
    have_next: bool,
}

/// Cell-count cap for building the per-direction next-blocked tables
/// (4 × 8 bytes per cell; 1M cells ⇒ 32 MiB).
const NEXT_CELL_CAP: u64 = 1 << 20;

/// Packs one next-blocked entry (see [`WideSegments::next`]).
#[inline(always)]
fn pack_next(dist: u32, idx: u32) -> u64 {
    u64::from(dist) | (u64::from(idx) << 16)
}

/// Next-blocked entry for "no disabled cell in this direction": distance
/// `0xFFFF` exceeds every probe window (`steps` is at most `extent − 1 ≤
/// 0xFFFE` on a mesh and `extent / 2` on a torus).
const NEXT_NONE: u64 = 0xFFFF;

/// One entry-position field of a hit word (see [`WideSegments`]): the
/// cycle position of `entry` on the ring of region `code`, or a sentinel.
/// `None` entries (off the mesh) belong to keys a probe can never hit
/// from that side.
fn entry_pos(
    fault_rings: &[FaultRing],
    ring_indexes: &[Arc<RingIndex>],
    code: u32,
    entry: Option<Coord>,
) -> u64 {
    let Some(entry) = entry else {
        return u64::from(ENTRY_UNPACKED);
    };
    if code == NO_REGION {
        return u64::from(ENTRY_UNPACKED);
    }
    if !fault_rings[code as usize].is_cycle() {
        return u64::from(ENTRY_CHAIN);
    }
    match ring_indexes[code as usize].position(entry) {
        Some(p) if p < ENTRY_CHAIN as usize => p as u64,
        _ => u64::from(ENTRY_UNPACKED),
    }
}

/// Appends one line's keys and hit words (no padding — the caller pads
/// both arenas to the cache line together).
#[allow(clippy::too_many_arguments)]
fn pack_line(
    keys: &mut Vec<i32>,
    hits: &mut Vec<u64>,
    slice: &[(i32, u32)],
    is_row: bool,
    li: usize,
    extent: i32,
    torus: bool,
    fault_rings: &[FaultRing],
    ring_indexes: &[Arc<RingIndex>],
) {
    for &(k, code) in slice {
        // The cell one step before the key from either probe direction,
        // on this line.
        let cell = |v: i32| -> Option<Coord> {
            let v = if torus { v.rem_euclid(extent) } else { v };
            (0..extent).contains(&v).then(|| {
                if is_row {
                    Coord::new(v, li as i32)
                } else {
                    Coord::new(li as i32, v)
                }
            })
        };
        keys.push(k);
        hits.push(
            u64::from(code)
                | (entry_pos(fault_rings, ring_indexes, code, cell(k - 1)) << 32)
                | (entry_pos(fault_rings, ring_indexes, code, cell(k + 1)) << 48),
        );
    }
}

/// Two-pointer next-blocked sweep of one line: fills the positive- and
/// negative-direction entries of its `extent` cells. `le` counts keys
/// ≤ v, `lt` keys < v.
fn sweep_line(
    line: &[i32],
    start: u32,
    extent: i32,
    torus: bool,
    fwd: &mut [u64],
    bwd: &mut [u64],
) {
    let n = line.len();
    let (mut le, mut lt) = (0usize, 0usize);
    for v in 0..extent {
        while le < n && line[le] <= v {
            le += 1;
        }
        while lt < n && line[lt] < v {
            lt += 1;
        }
        fwd[v as usize] = if le < n {
            pack_next((line[le] - v) as u32, start + le as u32)
        } else if torus && n > 0 {
            pack_next((line[0] + extent - v) as u32, start)
        } else {
            NEXT_NONE
        };
        bwd[v as usize] = if lt > 0 {
            pack_next((v - line[lt - 1]) as u32, start + lt as u32 - 1)
        } else if torus && n > 0 {
            pack_next((v + extent - line[n - 1]) as u32, start + n as u32 - 1)
        } else {
            NEXT_NONE
        };
    }
}

/// Sweeps every line of one orientation into its slots of the forward
/// and backward direction blocks, banded over `threads` scoped workers.
/// Each line owns a disjoint `extent`-entry window at `line_index ×
/// extent`, so bands write disjoint slices and the result is identical
/// for every thread count.
fn sweep_block(
    keys: &[i32],
    lines: &[(u32, u32)],
    extent: i32,
    torus: bool,
    threads: usize,
    fwd: &mut [u64],
    bwd: &mut [u64],
) {
    let e = extent as usize;
    let run = |li: usize, fwd: &mut [u64], bwd: &mut [u64]| {
        let (start, len) = lines[li];
        let line = &keys[start as usize..(start + len) as usize];
        sweep_line(line, start, extent, torus, fwd, bwd);
    };
    let n = lines.len();
    let threads = threads.min(n);
    if threads <= 1 {
        for li in 0..n {
            let (f, b) = (
                &mut fwd[li * e..(li + 1) * e],
                &mut bwd[li * e..(li + 1) * e],
            );
            run(li, f, b);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let (mut fw, mut bw) = (fwd, bwd);
        for band in 0..threads {
            let lo = band * chunk;
            let hi = n.min(lo + chunk);
            if lo >= hi {
                break;
            }
            let (f1, f2) = fw.split_at_mut((hi - lo) * e);
            let (b1, b2) = bw.split_at_mut((hi - lo) * e);
            (fw, bw) = (f2, b2);
            let run = &run;
            s.spawn(move || {
                for (k, li) in (lo..hi).enumerate() {
                    run(li, &mut f1[k * e..(k + 1) * e], &mut b1[k * e..(k + 1) * e]);
                }
            });
        }
    });
}

impl WideSegments {
    /// Repacks the scalar segment tables, resolving each disabled key's
    /// two possible ring-entry positions at build time (see the hit-word
    /// layout on [`WideSegments`]). The next-blocked sweeps are banded
    /// over `threads` scoped workers; output is identical for every
    /// thread count.
    pub fn build(
        index: &SegmentIndex,
        fault_rings: &[FaultRing],
        ring_indexes: &[Arc<RingIndex>],
        t: Topology,
        threads: usize,
    ) -> Self {
        let torus = t.kind() == TopologyKind::Torus;
        let mut keys: Vec<i32> = Vec::new();
        let mut hits: Vec<u64> = Vec::new();
        let mut pack = |off: &[u32], data: &[(i32, u32)], is_row: bool, extent: i32| {
            let mut lines = Vec::with_capacity(off.len() - 1);
            for (li, w) in off.windows(2).enumerate() {
                let slice = &data[w[0] as usize..w[1] as usize];
                lines.push((keys.len() as u32, slice.len() as u32));
                pack_line(
                    &mut keys,
                    &mut hits,
                    slice,
                    is_row,
                    li,
                    extent,
                    torus,
                    fault_rings,
                    ring_indexes,
                );
                // Keys the padding exposes are never searched; i32::MAX
                // keeps an out-of-window load harmless either way. The
                // hit arena pads to the same element count so the two
                // share line offsets (its lines land 128-byte aligned).
                keys.resize(pad_to_line::<i32>(keys.len()), i32::MAX);
                hits.resize(keys.len(), 0);
            }
            lines
        };
        let rows = pack(&index.row_off, &index.rows, true, t.width() as i32);
        let cols = pack(&index.col_off, &index.cols, false, t.height() as i32);
        let width = (index.col_off.len() - 1) as u32;
        let height = (index.row_off.len() - 1) as u32;
        let have_next = width < u32::from(u16::MAX)
            && height < u32::from(u16::MAX)
            && u64::from(width) * u64::from(height) <= NEXT_CELL_CAP;
        let mut next = Vec::new();
        let mut next_base = [0u32; 4];
        if have_next {
            let block = width as usize * height as usize;
            next = vec![0u64; 4 * block];
            next_base = [0, block as u32, 2 * block as u32, 3 * block as u32];
            let (ew, ns) = next.split_at_mut(2 * block);
            let (east, west) = ew.split_at_mut(block);
            let (north, south) = ns.split_at_mut(block);
            sweep_block(&keys, &rows, t.width() as i32, torus, threads, east, west);
            sweep_block(
                &keys,
                &cols,
                t.height() as i32,
                torus,
                threads,
                north,
                south,
            );
        }
        Self {
            rows,
            cols,
            next: AlignedArena::from_slice(&next),
            next_base,
            keys: AlignedArena::from_slice(&keys),
            hits: AlignedArena::from_slice(&hits),
            have_next,
        }
    }

    /// Incremental rebuild: untouched lines copy their key/hit slabs and
    /// rebase their next-blocked entries by the line's new arena start
    /// (the entries' distance fields are start-independent; [`NEXT_NONE`]
    /// carries no index and is copied as-is); renumbered lines do the
    /// same but remap each hit word's low-32-bit region code through
    /// `code_map` (keys, entry positions, and next entries depend only on
    /// cell geometry and ring content, which a renumbered group keeps);
    /// touched lines re-run the same per-line pack and sweep the cold
    /// build uses. Byte-identical to [`Self::build`] under the
    /// [`crate::incremental`] line contract.
    #[allow(clippy::too_many_arguments)]
    pub fn patch(
        prev: &Self,
        index: &SegmentIndex,
        fault_rings: &[FaultRing],
        ring_indexes: &[Arc<RingIndex>],
        t: Topology,
        touched_rows: &[bool],
        touched_cols: &[bool],
        renum_rows: &[bool],
        renum_cols: &[bool],
        code_map: &[u32],
    ) -> Self {
        let torus = t.kind() == TopologyKind::Torus;
        let (pkeys, phits) = (prev.keys.as_slice(), prev.hits.as_slice());
        let mut keys: Vec<i32> = Vec::with_capacity(pkeys.len());
        let mut hits: Vec<u64> = Vec::with_capacity(phits.len());
        let mut pack = |off: &[u32],
                        data: &[(i32, u32)],
                        prev_lines: &[(u32, u32)],
                        touched: &[bool],
                        renum: &[bool],
                        is_row: bool,
                        extent: i32| {
            let mut lines = Vec::with_capacity(off.len() - 1);
            for (li, w) in off.windows(2).enumerate() {
                let start = keys.len() as u32;
                if touched[li] {
                    let slice = &data[w[0] as usize..w[1] as usize];
                    lines.push((start, slice.len() as u32));
                    pack_line(
                        &mut keys,
                        &mut hits,
                        slice,
                        is_row,
                        li,
                        extent,
                        torus,
                        fault_rings,
                        ring_indexes,
                    );
                } else {
                    let (ps, pl) = prev_lines[li];
                    lines.push((start, pl));
                    keys.extend_from_slice(&pkeys[ps as usize..(ps + pl) as usize]);
                    let slab = &phits[ps as usize..(ps + pl) as usize];
                    if renum[li] {
                        hits.extend(slab.iter().map(|&hit| {
                            let code = hit as u32;
                            if code == NO_REGION {
                                hit
                            } else {
                                (hit & 0xFFFF_FFFF_0000_0000) | u64::from(code_map[code as usize])
                            }
                        }));
                    } else {
                        hits.extend_from_slice(slab);
                    }
                }
                keys.resize(pad_to_line::<i32>(keys.len()), i32::MAX);
                hits.resize(keys.len(), 0);
            }
            lines
        };
        let rows = pack(
            &index.row_off,
            &index.rows,
            &prev.rows,
            touched_rows,
            renum_rows,
            true,
            t.width() as i32,
        );
        let cols = pack(
            &index.col_off,
            &index.cols,
            &prev.cols,
            touched_cols,
            renum_cols,
            false,
            t.height() as i32,
        );
        let width = (index.col_off.len() - 1) as u32;
        let height = (index.row_off.len() - 1) as u32;
        let have_next = width < u32::from(u16::MAX)
            && height < u32::from(u16::MAX)
            && u64::from(width) * u64::from(height) <= NEXT_CELL_CAP;
        let mut next = Vec::new();
        let mut next_base = [0u32; 4];
        if have_next {
            let block = width as usize * height as usize;
            next = vec![0u64; 4 * block];
            next_base = [0, block as u32, 2 * block as u32, 3 * block as u32];
            let (ew, ns) = next.split_at_mut(2 * block);
            let (east, west) = ew.split_at_mut(block);
            let (north, south) = ns.split_at_mut(block);
            let patch_block = |lines: &[(u32, u32)],
                               prev_lines: &[(u32, u32)],
                               touched: &[bool],
                               prev_fwd_base: usize,
                               prev_bwd_base: usize,
                               extent: i32,
                               fwd: &mut [u64],
                               bwd: &mut [u64]| {
                let e = extent as usize;
                let prev_next = prev.next.as_slice();
                for (li, &(start, len)) in lines.iter().enumerate() {
                    let o = li * e;
                    if touched[li] || !prev.have_next {
                        let line = &keys[start as usize..(start + len) as usize];
                        sweep_line(
                            line,
                            start,
                            extent,
                            torus,
                            &mut fwd[o..o + e],
                            &mut bwd[o..o + e],
                        );
                    } else {
                        // The previous entries with the hit-word index
                        // shifted to the line's new start.
                        let shift = (i64::from(start) - i64::from(prev_lines[li].0)) << 16;
                        for v in 0..e {
                            let f = prev_next[prev_fwd_base + o + v];
                            fwd[o + v] = if f == NEXT_NONE {
                                f
                            } else {
                                (f as i64 + shift) as u64
                            };
                            let b = prev_next[prev_bwd_base + o + v];
                            bwd[o + v] = if b == NEXT_NONE {
                                b
                            } else {
                                (b as i64 + shift) as u64
                            };
                        }
                    }
                }
            };
            patch_block(
                &rows,
                &prev.rows,
                touched_rows,
                prev.next_base[0] as usize,
                prev.next_base[1] as usize,
                t.width() as i32,
                east,
                west,
            );
            patch_block(
                &cols,
                &prev.cols,
                touched_cols,
                prev.next_base[2] as usize,
                prev.next_base[3] as usize,
                t.height() as i32,
                north,
                south,
            );
        }
        Self {
            rows,
            cols,
            next: AlignedArena::from_slice(&next),
            next_base,
            keys: AlignedArena::from_slice(&keys),
            hits: AlignedArena::from_slice(&hits),
            have_next,
        }
    }

    /// Feeds every arena (including the next-blocked tables) into the
    /// router digest.
    pub fn digest(&self, h: &mut Fnv) {
        for &(s, l) in self.rows.iter().chain(self.cols.iter()) {
            h.u64((u64::from(s) << 32) | u64::from(l));
        }
        h.u64(self.keys.as_slice().len() as u64);
        for &k in self.keys.as_slice() {
            h.u64(u64::from(k as u32));
        }
        h.u64s(self.hits.as_slice());
        h.u64s(self.next.as_slice());
        h.u32s(&self.next_base);
        h.u64(u64::from(self.have_next));
    }

    /// Whether the next-blocked tables exist (see [`Self::next`]).
    #[inline(always)]
    pub fn have_next(&self) -> bool {
        self.have_next
    }

    /// The next-blocked arena.
    #[inline(always)]
    pub fn next(&self) -> &[u64] {
        self.next.as_slice()
    }

    /// Block offsets of the four per-direction tables in [`Self::next`],
    /// ordered East, West, North, South. Probe `(dir, c)`'s entry lives
    /// at `next_base[dir] + (row-major c)` for x-lines and
    /// `next_base[dir] + (column-major c)` for y-lines; exposing the
    /// offsets lets the batch scheduler form that address from a
    /// computed direction index without re-branching on the direction.
    /// Valid only when [`Self::have_next`].
    #[inline(always)]
    pub fn next_base(&self) -> &[u32; 4] {
        &self.next_base
    }

    /// `(start, len)` of the line a probe from `c` in `dir` walks along.
    #[inline(always)]
    pub fn line(&self, dir: Direction, c: Coord) -> (u32, u32) {
        match dir {
            Direction::East | Direction::West => self.rows[c.y as usize],
            Direction::North | Direction::South => self.cols[c.x as usize],
        }
    }

    /// The key arena (sorted coordinates per line).
    #[inline(always)]
    pub fn keys(&self) -> &[i32] {
        self.keys.as_slice()
    }

    /// The hit-word arena, parallel to [`Self::keys`].
    #[inline(always)]
    pub fn hits(&self) -> &[u64] {
        self.hits.as_slice()
    }
}

/// Packs one exit candidate into a scan word: `x` (15 bits) `| y << 15`
/// (15 bits) `| mask << 30` (4 bits) `| pos << 34` (16 bits). Valid for
/// compact rings only (checked by the caller).
#[inline(always)]
fn pack_word(x: i32, y: i32, mask: u8, pos: u32) -> u64 {
    (x as u64) | ((y as u64) << 15) | ((mask as u64) << 30) | ((pos as u64) << 34)
}

/// Per-ring directory entry of the packed candidate arena. `repr(align)`
/// keeps each ring's metadata on its own cache line, so concurrent
/// readers of different rings never false-share.
#[repr(align(64))]
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct WideRingMeta {
    /// Start of the static candidates (corners + blocked-bit transitions).
    pub static_start: u32,
    /// Number of static candidates.
    pub static_len: u32,
    /// Base of the per-column CSR block (add the ring's `col_off`).
    pub cols_start: u32,
    /// Base of the per-row CSR block (add the ring's `row_off`).
    pub rows_start: u32,
    /// Whether packed words exist for this ring (cycle + compact). When
    /// false the scheduler scans the scalar candidate columns instead.
    pub packed: bool,
}

/// All rings' packed exit-candidate words in one aligned arena, plus the
/// per-ring directory. Candidate order inside every block is exactly the
/// scalar [`CandidateColumns`] order, so a packed scan visits the same
/// candidates with the same tie-break positions.
#[derive(Clone, Debug)]
pub(crate) struct WideRings {
    /// Per-ring directory, in ring order.
    pub meta: Vec<WideRingMeta>,
    words: AlignedArena<u64>,
}

impl WideRings {
    /// Packs every compact cycle ring of `rings`.
    pub fn build(rings: &[Arc<RingIndex>]) -> Self {
        let mut words: Vec<u64> = Vec::new();
        let append = |words: &mut Vec<u64>, c: &CandidateColumns| -> (u32, u32) {
            let start = words.len() as u32;
            for i in 0..c.len() {
                words.push(pack_word(c.xs[i], c.ys[i], c.masks[i], c.poss[i]));
            }
            // Padding words sit between blocks and are never scanned.
            words.resize(pad_to_line::<u64>(words.len()), u64::MAX);
            (start, c.len() as u32)
        };
        let meta = rings
            .iter()
            .map(|ring| {
                if !ring.compact() || ring.is_empty() {
                    return WideRingMeta::default();
                }
                let (static_start, static_len) = append(&mut words, &ring.static_candidates);
                let (cols_start, _) = append(&mut words, &ring.cols);
                let (rows_start, _) = append(&mut words, &ring.rows);
                WideRingMeta {
                    static_start,
                    static_len,
                    cols_start,
                    rows_start,
                    packed: true,
                }
            })
            .collect();
        Self {
            meta,
            words: AlignedArena::from_slice(&words),
        }
    }

    /// The packed word arena.
    #[inline(always)]
    pub fn words(&self) -> &[u64] {
        self.words.as_slice()
    }

    /// Feeds the directory and word arena into the router digest.
    pub fn digest(&self, h: &mut Fnv) {
        h.u64(self.meta.len() as u64);
        for m in &self.meta {
            h.u64((u64::from(m.static_start) << 32) | u64::from(m.static_len));
            h.u64((u64::from(m.cols_start) << 32) | u64::from(m.rows_start));
            h.u64(u64::from(m.packed));
        }
        h.u64s(self.words.as_slice());
    }

    /// Calls `f` on every packed word range holding a candidate the exit
    /// objective for `dst` can minimize at — the same slices, in the same
    /// order, as the scalar [`RingIndex::candidate_slices`].
    pub fn packed_slices(
        meta: &WideRingMeta,
        ring: &RingIndex,
        t: Topology,
        dst: Coord,
        mut f: impl FnMut(core::ops::Range<usize>),
    ) {
        let col = |x: i32| {
            let lo = meta.cols_start + ring.col_off[x as usize];
            let hi = meta.cols_start + ring.col_off[x as usize + 1];
            lo as usize..hi as usize
        };
        let row = |y: i32| {
            let lo = meta.rows_start + ring.row_off[y as usize];
            let hi = meta.rows_start + ring.row_off[y as usize + 1];
            lo as usize..hi as usize
        };
        f(meta.static_start as usize..(meta.static_start + meta.static_len) as usize);
        f(col(dst.x));
        f(row(dst.y));
        if t.kind() == TopologyKind::Torus {
            let (w, h) = (t.width() as i32, t.height() as i32);
            for ax in [(dst.x + w / 2) % w, (dst.x + (w + 1) / 2) % w] {
                f(col(ax));
            }
            for ay in [(dst.y + h / 2) % h, (dst.y + (h + 1) / 2) % h] {
                f(row(ay));
            }
        }
    }
}

/// "No feasible exit" sentinel word in the [`ExitDirectory`] table. A
/// real entry's x field is at most `0x7FFE` (the directory requires mesh
/// extents ≤ `0x7FFF`), so the all-ones word is unambiguous.
const NO_EXIT_WORD: u64 = u64::MAX;

/// Per-ring directory entry: the ring-cell bounding box that classifies a
/// destination, and the four side tables' offsets into the shared table.
#[derive(Clone, Copy, Debug, Default)]
struct ExitDirMeta {
    minx: i32,
    maxx: i32,
    miny: i32,
    maxy: i32,
    /// `table[east + dst.y]` answers destinations with `dst.x > maxx`.
    east: u32,
    /// `table[west + dst.y]` answers destinations with `dst.x < minx`.
    west: u32,
    /// `table[north + dst.x]` answers destinations with `dst.y > maxy`.
    north: u32,
    /// `table[south + dst.x]` answers destinations with `dst.y < miny`.
    south: u32,
    /// Cycle length of the ring, so a directory hit can apply the
    /// shorter-walk arithmetic without loading the ring.
    ring_len: u32,
    /// Whether the directory covers this ring at all (cycle ring on a
    /// mesh with packable coordinates). Chains, empty indexes, and every
    /// torus ring stay false.
    valid: bool,
}

/// O(1) best-exit lookup for destinations strictly outside a ring's
/// bounding box — the common case, since a query that hits a ring is
/// usually aiming far past it.
///
/// **Why a 1-D table per side is exact.** Take `dst.x > maxx` (strictly
/// east of every ring cell). Then the candidate set the scalar scan
/// visits — static candidates ∪ column(`dst.x`) ∪ row(`dst.y`) — loses
/// its column slice (no ring cell has that x), leaving a set that depends
/// only on `dst.y`. For every candidate `c`, `dx = dst.x − c.x > 0`, so
/// `exit_bit` is East regardless of `dst.x`, and the L1 distance splits
/// as `(dst.x − c.x) + |dst.y − c.y|`: moving `dst.x` further east adds
/// the same constant to every candidate's packed key (never carrying into
/// the reject bit — compact rings bound distances below 2^15, the u64
/// objective below 2^31), so the argmin, its feasibility, and the
/// tie-break are all invariant along x. One scan per `dst.y` at the
/// representative `x = maxx + 1` therefore answers the whole half-plane
/// exactly. The north/south sides are symmetric with `dst.x` as the table
/// index (there `dx`'s *sign* varies per candidate, which is why the
/// table must be indexed by x, and `dy > 0` fixes the rest). Tori wrap —
/// no half-plane is ever strict — so they always take the scan fallback.
///
/// Entries are produced by [`crate::wide::exit_scan`] itself, so the
/// directory can never diverge from the scan it replaces. Each table word
/// packs the exit *cell* alongside its cycle position (`x | y << 15 |
/// pos << 32`; [`NO_EXIT_WORD`] when infeasible), so a hit hands the
/// traversal its next coordinate directly — no ring-cell load.
#[derive(Clone, Debug)]
pub(crate) struct ExitDirectory {
    meta: Vec<ExitDirMeta>,
    table: Vec<u64>,
}

/// Builds one ring's directory entry and its four side tables, with side
/// offsets relative to the returned table segment (the caller rebases
/// them by the segment's position in the shared table).
fn ring_exit_tables(
    t: Topology,
    cells: &[Coord],
    index: &RingIndex,
    meta: &WideRingMeta,
    words: &[u64],
) -> (ExitDirMeta, Vec<u64>) {
    let (w, h) = (t.width() as i32, t.height() as i32);
    let (mut minx, mut maxx, mut miny, mut maxy) = (i32::MAX, i32::MIN, i32::MAX, i32::MIN);
    for c in cells {
        minx = minx.min(c.x);
        maxx = maxx.max(c.x);
        miny = miny.min(c.y);
        maxy = maxy.max(c.y);
    }
    let encode = |dst: Coord| -> u64 {
        match crate::wide::exit_scan(t, index, meta, words, dst) {
            None => NO_EXIT_WORD,
            Some(pos) => {
                let c = cells[pos as usize];
                (c.x as u64) | ((c.y as u64) << 15) | (u64::from(pos) << 32)
            }
        }
    };
    let mut seg: Vec<u64> = Vec::new();
    let mut side = |rep: Option<Coord>, by_y: bool| -> u32 {
        let start = seg.len() as u32;
        if let Some(rep) = rep {
            if by_y {
                seg.extend((0..h).map(|y| encode(Coord::new(rep.x, y))));
            } else {
                seg.extend((0..w).map(|x| encode(Coord::new(x, rep.y))));
            }
        }
        start
    };
    let east = side((maxx + 1 < w).then(|| Coord::new(maxx + 1, 0)), true);
    let west = side((minx > 0).then(|| Coord::new(minx - 1, 0)), true);
    let north = side((maxy + 1 < h).then(|| Coord::new(0, maxy + 1)), false);
    let south = side((miny > 0).then(|| Coord::new(0, miny - 1)), false);
    (
        ExitDirMeta {
            minx,
            maxx,
            miny,
            maxy,
            east,
            west,
            north,
            south,
            ring_len: cells.len() as u32,
            valid: true,
        },
        seg,
    )
}

/// Length of the table segment a valid entry owns: its four side tables
/// sit contiguously starting at `meta.east`.
fn segment_len(m: &ExitDirMeta, w: i32, h: i32) -> usize {
    (usize::from(m.maxx + 1 < w) + usize::from(m.minx > 0)) * h as usize
        + (usize::from(m.maxy + 1 < h) + usize::from(m.miny > 0)) * w as usize
}

/// Shifts an entry's side offsets to the segment's absolute base.
fn rebase(mut m: ExitDirMeta, base: u32) -> ExitDirMeta {
    m.east += base;
    m.west += base;
    m.north += base;
    m.south += base;
    m
}

impl ExitDirectory {
    /// Whether the directory covers this topology at all (mesh with
    /// packable coordinates — larger extents would not fit the table
    /// word, and tori wrap so no half-plane is ever strict).
    fn covers(t: Topology) -> bool {
        t.kind() == TopologyKind::Mesh && t.width() <= 0x7FFF && t.height() <= 0x7FFF
    }

    /// Builds the directory for every cycle ring of a mesh snapshot. The
    /// per-ring side scans are banded over `threads` scoped workers and
    /// concatenated in ring order, so output is identical for every
    /// thread count.
    pub fn build(
        t: Topology,
        fault_rings: &[crate::fault_ring::FaultRing],
        indexes: &[Arc<RingIndex>],
        wide: &WideRings,
        threads: usize,
    ) -> Self {
        let mut dir = Self {
            meta: vec![ExitDirMeta::default(); indexes.len()],
            table: Vec::new(),
        };
        if !Self::covers(t) {
            return dir;
        }
        let words = wide.words();
        let per_ring = crate::incremental::par_map(fault_rings.len(), threads, |r| {
            let RingShape::Cycle(cells) = &fault_rings[r].shape else {
                return None;
            };
            if indexes[r].is_empty() {
                return None;
            }
            Some(ring_exit_tables(
                t,
                cells,
                &indexes[r],
                &wide.meta[r],
                words,
            ))
        });
        for (r, item) in per_ring.into_iter().enumerate() {
            if let Some((meta, seg)) = item {
                let base = dir.table.len() as u32;
                dir.meta[r] = rebase(meta, base);
                dir.table.extend(seg);
            }
        }
        dir
    }

    /// Incremental rebuild: a ring matched to a previous ring with the
    /// same cell set copies its table segment verbatim (entries depend
    /// only on ring content — `exit_scan` sees the same candidates and
    /// cycle positions) with the side offsets rebased to the segment's
    /// new position; unmatched rings scan fresh. Byte-identical to
    /// [`Self::build`].
    pub fn patch(
        prev: &Self,
        t: Topology,
        fault_rings: &[crate::fault_ring::FaultRing],
        indexes: &[Arc<RingIndex>],
        wide: &WideRings,
        matched: &[Option<usize>],
    ) -> Self {
        let mut dir = Self {
            meta: vec![ExitDirMeta::default(); indexes.len()],
            table: Vec::new(),
        };
        if !Self::covers(t) {
            return dir;
        }
        let (w, h) = (t.width() as i32, t.height() as i32);
        let words = wide.words();
        for (r, ring) in fault_rings.iter().enumerate() {
            if let Some(pm) = matched[r].map(|j| prev.meta[j]).filter(|pm| pm.valid) {
                let base = dir.table.len() as u32;
                let start = pm.east as usize;
                dir.table
                    .extend_from_slice(&prev.table[start..start + segment_len(&pm, w, h)]);
                // Rebase from the old segment base to the new one.
                let delta = base.wrapping_sub(pm.east);
                dir.meta[r] = ExitDirMeta {
                    east: pm.east.wrapping_add(delta),
                    west: pm.west.wrapping_add(delta),
                    north: pm.north.wrapping_add(delta),
                    south: pm.south.wrapping_add(delta),
                    ..pm
                };
            } else if matched[r].is_none() {
                let RingShape::Cycle(cells) = &ring.shape else {
                    continue;
                };
                if indexes[r].is_empty() {
                    continue;
                }
                let base = dir.table.len() as u32;
                let (meta, seg) = ring_exit_tables(t, cells, &indexes[r], &wide.meta[r], words);
                dir.meta[r] = rebase(meta, base);
                dir.table.extend(seg);
            }
        }
        dir
    }

    /// Feeds the directory and table into the router digest.
    pub fn digest(&self, h: &mut Fnv) {
        h.u64(self.meta.len() as u64);
        for m in &self.meta {
            h.coord(Coord::new(m.minx, m.miny));
            h.coord(Coord::new(m.maxx, m.maxy));
            h.u64((u64::from(m.east) << 32) | u64::from(m.west));
            h.u64((u64::from(m.north) << 32) | u64::from(m.south));
            h.u64((u64::from(m.ring_len) << 32) | u64::from(m.valid));
        }
        h.u64s(&self.table);
    }

    /// The precomputed exit of ring `region` for `dst` as `(packed exit
    /// word, ring length)`, or `None` when `dst` falls inside the
    /// bounding box (or the ring/topology is uncovered) and the caller
    /// must scan. The word is [`u64::MAX`] when no feasible exit exists;
    /// otherwise [`crate::wide::decode_exit_word`] unpacks it. Side
    /// classification is checked in a fixed order; a side the ring
    /// presses against the mesh edge on can never match, so its (unbuilt)
    /// table is never indexed.
    #[inline(always)]
    pub fn lookup(&self, region: usize, dst: Coord) -> Option<(u64, u32)> {
        let m = &self.meta[region];
        if !m.valid {
            return None;
        }
        let idx = if dst.x > m.maxx {
            m.east + dst.y as u32
        } else if dst.x < m.minx {
            m.west + dst.y as u32
        } else if dst.y > m.maxy {
            m.north + dst.x as u32
        } else if dst.y < m.miny {
            m.south + dst.x as u32
        } else {
            return None;
        };
        Some((self.table[idx as usize], m.ring_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_bases_are_cache_line_aligned() {
        for len in [0usize, 1, 7, 64, 1000] {
            let data: Vec<i32> = (0..len as i32).collect();
            let arena = AlignedArena::from_slice(&data);
            assert_eq!(arena.as_slice(), &data[..]);
            if len > 0 {
                assert_eq!(arena.as_slice().as_ptr() as usize % CACHE_LINE, 0);
            }
            let copy = arena.clone();
            assert_eq!(copy.as_slice(), &data[..]);
            if len > 0 {
                assert_eq!(copy.as_slice().as_ptr() as usize % CACHE_LINE, 0);
            }
        }
    }

    #[test]
    fn packed_word_round_trips() {
        let w = pack_word(0x7FFE, 0x7ABC, 0b1010, 0xFFFE);
        assert_eq!(w & 0x7FFF, 0x7FFE);
        assert_eq!((w >> 15) & 0x7FFF, 0x7ABC);
        assert_eq!((w >> 30) & 0xF, 0b1010);
        assert_eq!((w >> 34) & 0xFFFF, 0xFFFE);
        assert_eq!(w >> 50, 0, "word uses 50 bits");
    }
}
