//! Cache-packed table layout for the wide (multi-query) engine.
//!
//! The lane kernels in [`crate::wide`] stream per-snapshot tables
//! repacked here from the scalar index into flat 64-byte-aligned arenas,
//! so a batch touches the minimum number of cache lines and resolves the
//! traversal's dependent lookups with precomputed single loads:
//!
//! * [`WideSegments`] — the segment probe's sorted disabled keys as
//!   structure-of-arrays columns (keys in one arena, packed *hit words* —
//!   region code plus both possible ring-entry positions — in a parallel
//!   one), every line starting on a cache-line boundary, plus per-cell
//!   next-blocked tables that answer almost every probe — window clear,
//!   or the encounter distance and its hit word's location — with a
//!   single `u64` load.
//! * [`WideRings`] — each ring's exit candidates packed one-per-`u64`
//!   (`x | y << 15 | mask << 30 | pos << 34`), all rings in a single
//!   arena with each candidate block cache-line aligned. A batch's exit
//!   tasks are sorted by region, so consecutive tasks re-stream the same
//!   block while it is still resident.
//! * [`ExitDirectory`] — O(1) precomputed best exits (cell and cycle
//!   position in one word) for destinations strictly outside a ring's
//!   bounding box, replacing the candidate scan in the common case.
//!
//! Only *compact* rings (cycle positions ≤ 16 bits, extents summing under
//! 2^15 — see [`RingIndex::compact`]) are packed; the packed word needs 15
//! bits per coordinate and 16 per position. Non-compact rings keep
//! `packed == false` in their [`WideRingMeta`] and the scheduler falls back
//! to the scalar candidate columns with u64-lane reductions.
//!
//! Nothing here affects routing results: the packed tables hold exactly
//! the scalar index's values in the scalar index's order, and the scalar
//! tables stay untouched as the equivalence oracle.

use crate::fault_ring::{FaultRing, RingShape};
use crate::index::{CandidateColumns, RingIndex, SegmentIndex, NO_REGION};
use ocp_mesh::{Coord, Direction, Topology, TopologyKind};

/// The cache-line size every arena base and table block aligns to.
pub(crate) const CACHE_LINE: usize = 64;

/// A flat arena whose payload starts on a [`CACHE_LINE`] boundary.
///
/// `ocp-routing` forbids `unsafe`, so alignment is arranged without
/// `alloc` tricks: the backing `Vec` over-allocates by one cache line and
/// the payload begins at the first aligned element. [`Self::as_slice`] is
/// correct regardless — alignment is a throughput property, not a
/// correctness one — and `Clone` re-aligns for the new allocation.
#[derive(Debug)]
pub(crate) struct AlignedArena<T> {
    buf: Vec<T>,
    base: usize,
}

impl<T: Copy + Default> AlignedArena<T> {
    /// Packs `data` into a freshly aligned arena.
    pub fn from_slice(data: &[T]) -> Self {
        let elem = std::mem::size_of::<T>().max(1);
        let pad = CACHE_LINE / elem.min(CACHE_LINE);
        let mut buf: Vec<T> = Vec::with_capacity(data.len() + pad);
        let addr = buf.as_ptr() as usize;
        let base = ((CACHE_LINE - addr % CACHE_LINE) % CACHE_LINE) / elem;
        // Both grows stay within the reserved capacity, so the base
        // computed from `as_ptr` above remains valid.
        buf.resize(base, T::default());
        buf.extend_from_slice(data);
        Self { buf, base }
    }

    /// The aligned payload.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.buf[self.base..]
    }
}

impl<T: Copy + Default> Clone for AlignedArena<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

/// Rounds `len` up so the next block starts cache-line aligned (given an
/// aligned arena base), in units of `T`-sized elements.
fn pad_to_line<T>(len: usize) -> usize {
    let per_line = CACHE_LINE / std::mem::size_of::<T>().max(1);
    len.div_ceil(per_line) * per_line
}

/// Entry-position sentinel in a hit word: not precomputable — resolve
/// with `RouteIndex::position` at query time (covers [`NO_REGION`] keys,
/// off-line entry cells that can never be probe origins, and ring
/// positions too large to pack).
pub(crate) const ENTRY_UNPACKED: u32 = 0xFFFF;

/// Entry-position sentinel in a hit word: the blocking ring is an open
/// chain — the traversal fails with `BoundaryFaultChain` without ever
/// loading the ring.
pub(crate) const ENTRY_CHAIN: u32 = 0xFFFE;

/// Structure-of-arrays repack of the [`SegmentIndex`] disabled-interval
/// tables: one arena of sorted keys (row lines then column lines, each
/// line cache-line aligned) and a parallel arena of *hit words* at the
/// same offsets. The probe kernels search `keys` only and touch `hits`
/// once per *blocked* probe.
///
/// A hit word packs everything a fault encounter needs, so resolving one
/// costs a single load instead of three dependent ones (region grid →
/// ring shape → position table):
///
/// * bits 0..32 — the region code ([`NO_REGION`] for stray disabled
///   cells, which the traversal's invariant assert rejects);
/// * bits 32..48 — the entry cell's cycle position when the probe ran in
///   the positive direction (the entry cell is then `key − 1` on the
///   walked axis, torus-wrapped);
/// * bits 48..64 — the same for negative probes (entry `key + 1`).
///
/// The position fields use [`ENTRY_CHAIN`] for chain rings and
/// [`ENTRY_UNPACKED`] where no position can be packed; both are produced
/// at build time from the very predicates (`FaultRing::is_cycle`,
/// `RingIndex::position`) the scalar traversal evaluates per query.
#[derive(Clone, Debug)]
pub(crate) struct WideSegments {
    /// `(start, len)` of each row's keys in the arenas, indexed by y.
    rows: Vec<(u32, u32)>,
    /// `(start, len)` of each column's keys, indexed by x.
    cols: Vec<(u32, u32)>,
    keys: AlignedArena<i32>,
    hits: AlignedArena<u64>,
    /// Per-cell next-blocked tables, one block per probe direction
    /// (east, west row-major; north, south column-major): each entry
    /// packs `distance to the first disabled cell in that direction |
    /// hit-word arena index << 16`. Distance is axis-cyclic on a torus
    /// (the seam wrap is baked in at build time) and [`NEXT_NONE`] when
    /// the line holds no disabled cell that way — so an entire probe
    /// resolves from one load: `dist > steps` means the window is clear,
    /// anything else is an encounter `dist − 1` hops out whose hit word
    /// sits at the packed index.
    next: AlignedArena<u64>,
    /// Start of each direction's block in `next` (E, W, N, S order).
    next_base: [u32; 4],
    /// Whether the next-blocked tables exist (extents below 2^16 so
    /// distances pack, and at most [`NEXT_CELL_CAP`] cells so the four
    /// per-cell blocks stay a bounded fraction of snapshot memory;
    /// absent tables fall back to the search kernels).
    have_next: bool,
}

/// Cell-count cap for building the per-direction next-blocked tables
/// (4 × 8 bytes per cell; 1M cells ⇒ 32 MiB).
const NEXT_CELL_CAP: u64 = 1 << 20;

/// Packs one next-blocked entry (see [`WideSegments::next`]).
#[inline(always)]
fn pack_next(dist: u32, idx: u32) -> u64 {
    u64::from(dist) | (u64::from(idx) << 16)
}

/// Next-blocked entry for "no disabled cell in this direction": distance
/// `0xFFFF` exceeds every probe window (`steps` is at most `extent − 1 ≤
/// 0xFFFE` on a mesh and `extent / 2` on a torus).
const NEXT_NONE: u64 = 0xFFFF;

impl WideSegments {
    /// Repacks the scalar segment tables, resolving each disabled key's
    /// two possible ring-entry positions at build time (see the hit-word
    /// layout on [`WideSegments`]).
    pub fn build(
        index: &SegmentIndex,
        fault_rings: &[FaultRing],
        ring_indexes: &[RingIndex],
        t: Topology,
    ) -> Self {
        let torus = t.kind() == TopologyKind::Torus;
        // One entry-position field: the cycle position of `entry` on the
        // key's ring, or a sentinel. `None` entries (off the mesh) belong
        // to keys a probe can never hit from that side.
        let epos = |code: u32, entry: Option<Coord>| -> u64 {
            let Some(entry) = entry else {
                return u64::from(ENTRY_UNPACKED);
            };
            if code == NO_REGION {
                return u64::from(ENTRY_UNPACKED);
            }
            if !fault_rings[code as usize].is_cycle() {
                return u64::from(ENTRY_CHAIN);
            }
            match ring_indexes[code as usize].position(entry) {
                Some(p) if p < ENTRY_CHAIN as usize => p as u64,
                _ => u64::from(ENTRY_UNPACKED),
            }
        };
        let mut keys: Vec<i32> = Vec::new();
        let mut hits: Vec<u64> = Vec::new();
        let mut pack = |off: &[u32], data: &[(i32, u32)], is_row: bool, extent: i32| {
            let mut lines = Vec::with_capacity(off.len() - 1);
            for (li, w) in off.windows(2).enumerate() {
                let slice = &data[w[0] as usize..w[1] as usize];
                lines.push((keys.len() as u32, slice.len() as u32));
                for &(k, code) in slice {
                    // The cell one step before the key from either probe
                    // direction, on this line.
                    let cell = |v: i32| -> Option<Coord> {
                        let v = if torus { v.rem_euclid(extent) } else { v };
                        (0..extent).contains(&v).then(|| {
                            if is_row {
                                Coord::new(v, li as i32)
                            } else {
                                Coord::new(li as i32, v)
                            }
                        })
                    };
                    keys.push(k);
                    hits.push(
                        u64::from(code)
                            | (epos(code, cell(k - 1)) << 32)
                            | (epos(code, cell(k + 1)) << 48),
                    );
                }
                // Keys the padding exposes are never searched; i32::MAX
                // keeps an out-of-window load harmless either way. The
                // hit arena pads to the same element count so the two
                // share line offsets (its lines land 128-byte aligned).
                keys.resize(pad_to_line::<i32>(keys.len()), i32::MAX);
                hits.resize(keys.len(), 0);
            }
            lines
        };
        let rows = pack(&index.row_off, &index.rows, true, t.width() as i32);
        let cols = pack(&index.col_off, &index.cols, false, t.height() as i32);
        let width = (index.col_off.len() - 1) as u32;
        let height = (index.row_off.len() - 1) as u32;
        let have_next = width < u32::from(u16::MAX)
            && height < u32::from(u16::MAX)
            && u64::from(width) * u64::from(height) <= NEXT_CELL_CAP;
        // Two-pointer sweep producing, for every cell of every line, the
        // positive- and negative-direction next-blocked entries.
        let sweep = |lines: &[(u32, u32)], extent: i32| -> (Vec<u64>, Vec<u64>) {
            let mut fwd = Vec::with_capacity(lines.len() * extent as usize);
            let mut bwd = Vec::with_capacity(lines.len() * extent as usize);
            for &(start, len) in lines {
                let line = &keys[start as usize..(start + len) as usize];
                let n = line.len();
                // `le` counts keys ≤ v, `lt` keys < v.
                let (mut le, mut lt) = (0usize, 0usize);
                for v in 0..extent {
                    while le < n && line[le] <= v {
                        le += 1;
                    }
                    while lt < n && line[lt] < v {
                        lt += 1;
                    }
                    fwd.push(if le < n {
                        pack_next((line[le] - v) as u32, start + le as u32)
                    } else if torus && n > 0 {
                        pack_next((line[0] + extent - v) as u32, start)
                    } else {
                        NEXT_NONE
                    });
                    bwd.push(if lt > 0 {
                        pack_next((v - line[lt - 1]) as u32, start + lt as u32 - 1)
                    } else if torus && n > 0 {
                        pack_next((v + extent - line[n - 1]) as u32, start + n as u32 - 1)
                    } else {
                        NEXT_NONE
                    });
                }
            }
            (fwd, bwd)
        };
        let mut next = Vec::new();
        let mut next_base = [0u32; 4];
        if have_next {
            let (east, west) = sweep(&rows, t.width() as i32);
            let (north, south) = sweep(&cols, t.height() as i32);
            let block = east.len() as u32;
            next_base = [0, block, 2 * block, 3 * block];
            next = east;
            next.extend(west);
            next.extend(north);
            next.extend(south);
        }
        Self {
            rows,
            cols,
            next: AlignedArena::from_slice(&next),
            next_base,
            keys: AlignedArena::from_slice(&keys),
            hits: AlignedArena::from_slice(&hits),
            have_next,
        }
    }

    /// Whether the next-blocked tables exist (see [`Self::next`]).
    #[inline(always)]
    pub fn have_next(&self) -> bool {
        self.have_next
    }

    /// The next-blocked arena.
    #[inline(always)]
    pub fn next(&self) -> &[u64] {
        self.next.as_slice()
    }

    /// Block offsets of the four per-direction tables in [`Self::next`],
    /// ordered East, West, North, South. Probe `(dir, c)`'s entry lives
    /// at `next_base[dir] + (row-major c)` for x-lines and
    /// `next_base[dir] + (column-major c)` for y-lines; exposing the
    /// offsets lets the batch scheduler form that address from a
    /// computed direction index without re-branching on the direction.
    /// Valid only when [`Self::have_next`].
    #[inline(always)]
    pub fn next_base(&self) -> &[u32; 4] {
        &self.next_base
    }

    /// `(start, len)` of the line a probe from `c` in `dir` walks along.
    #[inline(always)]
    pub fn line(&self, dir: Direction, c: Coord) -> (u32, u32) {
        match dir {
            Direction::East | Direction::West => self.rows[c.y as usize],
            Direction::North | Direction::South => self.cols[c.x as usize],
        }
    }

    /// The key arena (sorted coordinates per line).
    #[inline(always)]
    pub fn keys(&self) -> &[i32] {
        self.keys.as_slice()
    }

    /// The hit-word arena, parallel to [`Self::keys`].
    #[inline(always)]
    pub fn hits(&self) -> &[u64] {
        self.hits.as_slice()
    }
}

/// Packs one exit candidate into a scan word: `x` (15 bits) `| y << 15`
/// (15 bits) `| mask << 30` (4 bits) `| pos << 34` (16 bits). Valid for
/// compact rings only (checked by the caller).
#[inline(always)]
fn pack_word(x: i32, y: i32, mask: u8, pos: u32) -> u64 {
    (x as u64) | ((y as u64) << 15) | ((mask as u64) << 30) | ((pos as u64) << 34)
}

/// Per-ring directory entry of the packed candidate arena. `repr(align)`
/// keeps each ring's metadata on its own cache line, so concurrent
/// readers of different rings never false-share.
#[repr(align(64))]
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct WideRingMeta {
    /// Start of the static candidates (corners + blocked-bit transitions).
    pub static_start: u32,
    /// Number of static candidates.
    pub static_len: u32,
    /// Base of the per-column CSR block (add the ring's `col_off`).
    pub cols_start: u32,
    /// Base of the per-row CSR block (add the ring's `row_off`).
    pub rows_start: u32,
    /// Whether packed words exist for this ring (cycle + compact). When
    /// false the scheduler scans the scalar candidate columns instead.
    pub packed: bool,
}

/// All rings' packed exit-candidate words in one aligned arena, plus the
/// per-ring directory. Candidate order inside every block is exactly the
/// scalar [`CandidateColumns`] order, so a packed scan visits the same
/// candidates with the same tie-break positions.
#[derive(Clone, Debug)]
pub(crate) struct WideRings {
    /// Per-ring directory, in ring order.
    pub meta: Vec<WideRingMeta>,
    words: AlignedArena<u64>,
}

impl WideRings {
    /// Packs every compact cycle ring of `rings`.
    pub fn build(rings: &[RingIndex]) -> Self {
        let mut words: Vec<u64> = Vec::new();
        let append = |words: &mut Vec<u64>, c: &CandidateColumns| -> (u32, u32) {
            let start = words.len() as u32;
            for i in 0..c.len() {
                words.push(pack_word(c.xs[i], c.ys[i], c.masks[i], c.poss[i]));
            }
            // Padding words sit between blocks and are never scanned.
            words.resize(pad_to_line::<u64>(words.len()), u64::MAX);
            (start, c.len() as u32)
        };
        let meta = rings
            .iter()
            .map(|ring| {
                if !ring.compact() || ring.is_empty() {
                    return WideRingMeta::default();
                }
                let (static_start, static_len) = append(&mut words, &ring.static_candidates);
                let (cols_start, _) = append(&mut words, &ring.cols);
                let (rows_start, _) = append(&mut words, &ring.rows);
                WideRingMeta {
                    static_start,
                    static_len,
                    cols_start,
                    rows_start,
                    packed: true,
                }
            })
            .collect();
        Self {
            meta,
            words: AlignedArena::from_slice(&words),
        }
    }

    /// The packed word arena.
    #[inline(always)]
    pub fn words(&self) -> &[u64] {
        self.words.as_slice()
    }

    /// Calls `f` on every packed word range holding a candidate the exit
    /// objective for `dst` can minimize at — the same slices, in the same
    /// order, as the scalar [`RingIndex::candidate_slices`].
    pub fn packed_slices(
        meta: &WideRingMeta,
        ring: &RingIndex,
        t: Topology,
        dst: Coord,
        mut f: impl FnMut(core::ops::Range<usize>),
    ) {
        let col = |x: i32| {
            let lo = meta.cols_start + ring.col_off[x as usize];
            let hi = meta.cols_start + ring.col_off[x as usize + 1];
            lo as usize..hi as usize
        };
        let row = |y: i32| {
            let lo = meta.rows_start + ring.row_off[y as usize];
            let hi = meta.rows_start + ring.row_off[y as usize + 1];
            lo as usize..hi as usize
        };
        f(meta.static_start as usize..(meta.static_start + meta.static_len) as usize);
        f(col(dst.x));
        f(row(dst.y));
        if t.kind() == TopologyKind::Torus {
            let (w, h) = (t.width() as i32, t.height() as i32);
            for ax in [(dst.x + w / 2) % w, (dst.x + (w + 1) / 2) % w] {
                f(col(ax));
            }
            for ay in [(dst.y + h / 2) % h, (dst.y + (h + 1) / 2) % h] {
                f(row(ay));
            }
        }
    }
}

/// "No feasible exit" sentinel word in the [`ExitDirectory`] table. A
/// real entry's x field is at most `0x7FFE` (the directory requires mesh
/// extents ≤ `0x7FFF`), so the all-ones word is unambiguous.
const NO_EXIT_WORD: u64 = u64::MAX;

/// Per-ring directory entry: the ring-cell bounding box that classifies a
/// destination, and the four side tables' offsets into the shared table.
#[derive(Clone, Copy, Debug, Default)]
struct ExitDirMeta {
    minx: i32,
    maxx: i32,
    miny: i32,
    maxy: i32,
    /// `table[east + dst.y]` answers destinations with `dst.x > maxx`.
    east: u32,
    /// `table[west + dst.y]` answers destinations with `dst.x < minx`.
    west: u32,
    /// `table[north + dst.x]` answers destinations with `dst.y > maxy`.
    north: u32,
    /// `table[south + dst.x]` answers destinations with `dst.y < miny`.
    south: u32,
    /// Cycle length of the ring, so a directory hit can apply the
    /// shorter-walk arithmetic without loading the ring.
    ring_len: u32,
    /// Whether the directory covers this ring at all (cycle ring on a
    /// mesh with packable coordinates). Chains, empty indexes, and every
    /// torus ring stay false.
    valid: bool,
}

/// O(1) best-exit lookup for destinations strictly outside a ring's
/// bounding box — the common case, since a query that hits a ring is
/// usually aiming far past it.
///
/// **Why a 1-D table per side is exact.** Take `dst.x > maxx` (strictly
/// east of every ring cell). Then the candidate set the scalar scan
/// visits — static candidates ∪ column(`dst.x`) ∪ row(`dst.y`) — loses
/// its column slice (no ring cell has that x), leaving a set that depends
/// only on `dst.y`. For every candidate `c`, `dx = dst.x − c.x > 0`, so
/// `exit_bit` is East regardless of `dst.x`, and the L1 distance splits
/// as `(dst.x − c.x) + |dst.y − c.y|`: moving `dst.x` further east adds
/// the same constant to every candidate's packed key (never carrying into
/// the reject bit — compact rings bound distances below 2^15, the u64
/// objective below 2^31), so the argmin, its feasibility, and the
/// tie-break are all invariant along x. One scan per `dst.y` at the
/// representative `x = maxx + 1` therefore answers the whole half-plane
/// exactly. The north/south sides are symmetric with `dst.x` as the table
/// index (there `dx`'s *sign* varies per candidate, which is why the
/// table must be indexed by x, and `dy > 0` fixes the rest). Tori wrap —
/// no half-plane is ever strict — so they always take the scan fallback.
///
/// Entries are produced by [`crate::wide::exit_scan`] itself, so the
/// directory can never diverge from the scan it replaces. Each table word
/// packs the exit *cell* alongside its cycle position (`x | y << 15 |
/// pos << 32`; [`NO_EXIT_WORD`] when infeasible), so a hit hands the
/// traversal its next coordinate directly — no ring-cell load.
#[derive(Clone, Debug)]
pub(crate) struct ExitDirectory {
    meta: Vec<ExitDirMeta>,
    table: Vec<u64>,
}

impl ExitDirectory {
    /// Builds the directory for every cycle ring of a mesh snapshot.
    pub fn build(
        t: Topology,
        fault_rings: &[crate::fault_ring::FaultRing],
        indexes: &[RingIndex],
        wide: &WideRings,
    ) -> Self {
        let mut dir = Self {
            meta: vec![ExitDirMeta::default(); indexes.len()],
            table: Vec::new(),
        };
        if t.kind() == TopologyKind::Torus {
            return dir;
        }
        let (w, h) = (t.width() as i32, t.height() as i32);
        if w > 0x7FFF || h > 0x7FFF {
            // Coordinates would not fit the packed table word; such
            // meshes always take the scan fallback.
            return dir;
        }
        let words = wide.words();
        for (r, ring) in fault_rings.iter().enumerate() {
            let RingShape::Cycle(cells) = &ring.shape else {
                continue;
            };
            if indexes[r].is_empty() {
                continue;
            }
            let (mut minx, mut maxx, mut miny, mut maxy) = (i32::MAX, i32::MIN, i32::MAX, i32::MIN);
            for c in cells {
                minx = minx.min(c.x);
                maxx = maxx.max(c.x);
                miny = miny.min(c.y);
                maxy = maxy.max(c.y);
            }
            let encode = |dst: Coord| -> u64 {
                match crate::wide::exit_scan(t, &indexes[r], &wide.meta[r], words, dst) {
                    None => NO_EXIT_WORD,
                    Some(pos) => {
                        let c = cells[pos as usize];
                        (c.x as u64) | ((c.y as u64) << 15) | (u64::from(pos) << 32)
                    }
                }
            };
            let side = |table: &mut Vec<u64>, rep: Option<Coord>, by_y: bool| -> u32 {
                let start = table.len() as u32;
                if let Some(rep) = rep {
                    if by_y {
                        table.extend((0..h).map(|y| encode(Coord::new(rep.x, y))));
                    } else {
                        table.extend((0..w).map(|x| encode(Coord::new(x, rep.y))));
                    }
                }
                start
            };
            let east = side(
                &mut dir.table,
                (maxx + 1 < w).then(|| Coord::new(maxx + 1, 0)),
                true,
            );
            let west = side(
                &mut dir.table,
                (minx > 0).then(|| Coord::new(minx - 1, 0)),
                true,
            );
            let north = side(
                &mut dir.table,
                (maxy + 1 < h).then(|| Coord::new(0, maxy + 1)),
                false,
            );
            let south = side(
                &mut dir.table,
                (miny > 0).then(|| Coord::new(0, miny - 1)),
                false,
            );
            dir.meta[r] = ExitDirMeta {
                minx,
                maxx,
                miny,
                maxy,
                east,
                west,
                north,
                south,
                ring_len: cells.len() as u32,
                valid: true,
            };
        }
        dir
    }

    /// The precomputed exit of ring `region` for `dst` as `(packed exit
    /// word, ring length)`, or `None` when `dst` falls inside the
    /// bounding box (or the ring/topology is uncovered) and the caller
    /// must scan. The word is [`u64::MAX`] when no feasible exit exists;
    /// otherwise [`crate::wide::decode_exit_word`] unpacks it. Side
    /// classification is checked in a fixed order; a side the ring
    /// presses against the mesh edge on can never match, so its (unbuilt)
    /// table is never indexed.
    #[inline(always)]
    pub fn lookup(&self, region: usize, dst: Coord) -> Option<(u64, u32)> {
        let m = &self.meta[region];
        if !m.valid {
            return None;
        }
        let idx = if dst.x > m.maxx {
            m.east + dst.y as u32
        } else if dst.x < m.minx {
            m.west + dst.y as u32
        } else if dst.y > m.maxy {
            m.north + dst.x as u32
        } else if dst.y < m.miny {
            m.south + dst.x as u32
        } else {
            return None;
        };
        Some((self.table[idx as usize], m.ring_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_bases_are_cache_line_aligned() {
        for len in [0usize, 1, 7, 64, 1000] {
            let data: Vec<i32> = (0..len as i32).collect();
            let arena = AlignedArena::from_slice(&data);
            assert_eq!(arena.as_slice(), &data[..]);
            if len > 0 {
                assert_eq!(arena.as_slice().as_ptr() as usize % CACHE_LINE, 0);
            }
            let copy = arena.clone();
            assert_eq!(copy.as_slice(), &data[..]);
            if len > 0 {
                assert_eq!(copy.as_slice().as_ptr() as usize % CACHE_LINE, 0);
            }
        }
    }

    #[test]
    fn packed_word_round_trips() {
        let w = pack_word(0x7FFE, 0x7ABC, 0b1010, 0xFFFE);
        assert_eq!(w & 0x7FFF, 0x7FFE);
        assert_eq!((w >> 15) & 0x7FFF, 0x7ABC);
        assert_eq!((w >> 30) & 0xF, 0b1010);
        assert_eq!((w >> 34) & 0xFFFF, 0xFFFE);
        assert_eq!(w >> 50, 0, "word uses 50 bits");
    }
}
