//! Exhaustive acceptance suite for k-disjoint routes and the deadlock
//! prover.
//!
//! On the 12×12 mesh and 10×10 torus fixtures (the same snapshot class
//! the equivalence suite pins), **every ordered enabled pair** is checked:
//!
//! * `route_disjoint(src, dst, 1)` is byte-identical to `route`;
//! * `route_disjoint(src, dst, 2)` returns pairwise vertex-disjoint
//!   paths, each valid over the enabled map, each within the asserted
//!   stretch bound, and errors exactly when `route` errors;
//! * the channel dependency graph of the full all-pairs route set is
//!   acyclic under the `DetourVcModel` (Dally–Seitz deadlock freedom);
//! * mutation-negative cases — the torus wrap layer dropped, the ring
//!   dateline dropped, the quadrant classes folded to f-cube4's four,
//!   everything collapsed to a single VC, and a hand-seeded four-cycle —
//!   are rejected by the same checker, so the prover cannot pass
//!   vacuously.

use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology};
use ocp_routing::cdg::{assign_single_vc, DependencyGraph};
use ocp_routing::deadlock::{prove_paths, prove_router_all_pairs, DetourVcModel};
use ocp_routing::{EnabledMap, FaultTolerantRouter, Path};

/// Router over the disabled regions of a pipeline-labeled machine.
fn labeled_router(topology: Topology, faults: &[Coord]) -> FaultTolerantRouter {
    let map = FaultMap::new(topology, faults.iter().copied());
    let out = run_pipeline(&map, &PipelineConfig::default());
    let enabled = EnabledMap::from_outcome(&out);
    let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();
    FaultTolerantRouter::new(enabled, &regions)
}

/// Interior faults only, so every ring is a closed cycle and the vertex
/// min-cut between any two enabled cells stays ≥ 2 — the regime where the
/// CW/CCW split must always produce a pair.
const MESH_FAULTS: [(i32, i32); 5] = [(5, 4), (6, 5), (9, 9), (3, 9), (2, 2)];
const TORUS_FAULTS: [(i32, i32); 5] = [(0, 5), (9, 0), (5, 9), (4, 4), (5, 5)];

fn coords(spec: &[(i32, i32)]) -> Vec<Coord> {
    spec.iter().map(|&(x, y)| Coord::new(x, y)).collect()
}

fn all_pairs_check(router: &FaultTolerantRouter) -> (usize, usize) {
    let enabled = router.enabled();
    let cells = enabled.enabled_coords();
    let mut routed = 0usize;
    let mut split = 0usize;
    for &src in &cells {
        for &dst in &cells {
            let reference = router.route(src, dst);
            let k1 = router.route_disjoint(src, dst, 1);
            let k2 = router.route_disjoint(src, dst, 2);
            match reference {
                Ok(ref path) => {
                    let k1 = k1.unwrap_or_else(|e| panic!("k1 {src}->{dst}: {e:?}"));
                    assert_eq!(
                        k1.paths,
                        vec![path.clone()],
                        "k=1 byte-identity {src}->{dst}"
                    );
                    let k2 = k2.unwrap_or_else(|e| panic!("k2 {src}->{dst}: {e:?}"));
                    assert!(k2.pairwise_disjoint(), "disjointness {src}->{dst}");
                    let bound = router.disjoint_len_bound(src, dst, 2);
                    for p in &k2.paths {
                        assert_eq!(p.src(), src);
                        assert_eq!(p.dst(), dst);
                        p.validate(enabled)
                            .unwrap_or_else(|e| panic!("invalid path {src}->{dst}: {e:?}"));
                        assert!(
                            p.len() <= bound,
                            "stretch bound {src}->{dst}: len {} > bound {bound}",
                            p.len()
                        );
                    }
                    if src == dst {
                        assert_eq!(k2.paths.len(), 1, "self pair {src}");
                        assert_eq!(k2.stretch, 1.0);
                    } else {
                        assert_eq!(
                            k2.paths.len(),
                            2,
                            "interior faults keep min-cut >= 2, {src}->{dst}"
                        );
                        let d = router.topology().distance(src, dst) as usize;
                        let expect = k2.max_len() as f64 / d as f64;
                        assert_eq!(k2.stretch, expect, "stretch {src}->{dst}");
                        split += 1;
                    }
                    routed += 1;
                }
                Err(ref e) => {
                    assert_eq!(k1.as_ref().err(), Some(e), "k=1 error parity {src}->{dst}");
                    assert_eq!(k2.as_ref().err(), Some(e), "k=2 error parity {src}->{dst}");
                }
            }
        }
    }
    (routed, split)
}

#[test]
fn mesh_12x12_all_pairs_k2_disjoint_and_valid() {
    let router = labeled_router(Topology::mesh(12, 12), &coords(&MESH_FAULTS));
    let (routed, split) = all_pairs_check(&router);
    assert!(
        routed > 10_000,
        "expected most pairs routable, got {routed}"
    );
    assert!(split > 10_000, "expected k=2 splits, got {split}");
}

#[test]
fn torus_10x10_all_pairs_k2_disjoint_and_valid() {
    let router = labeled_router(Topology::torus(10, 10), &coords(&TORUS_FAULTS));
    let (routed, split) = all_pairs_check(&router);
    assert!(routed > 7_000, "expected most pairs routable, got {routed}");
    assert!(split > 7_000, "expected k=2 splits, got {split}");
}

#[test]
fn fault_free_mesh_k_up_to_min_cut() {
    let router = labeled_router(Topology::mesh(8, 8), &[]);
    // Interior pair: min-cut 4 on a fault-free mesh.
    let r = router
        .route_disjoint(Coord::new(1, 1), Coord::new(6, 5), 4)
        .unwrap();
    assert_eq!(r.paths.len(), 4);
    assert!(r.pairwise_disjoint());
    // Corner source: degree 2 caps the cut at 2 even for k = 4.
    let r = router
        .route_disjoint(Coord::new(0, 0), Coord::new(6, 5), 4)
        .unwrap();
    assert_eq!(r.paths.len(), 2);
    assert!(r.pairwise_disjoint());
    // Adjacent pair: the direct link plus detours.
    let r = router
        .route_disjoint(Coord::new(3, 3), Coord::new(4, 3), 2)
        .unwrap();
    assert_eq!(r.paths.len(), 2);
    assert!(r.pairwise_disjoint());
    assert_eq!(r.hop_counts()[0].min(r.hop_counts()[1]), 1);
}

#[test]
fn single_ring_k2_is_the_cw_ccw_split() {
    // One interior region squarely between src and dst: the two returned
    // paths must pass on opposite sides of the ring (one strictly above,
    // one strictly below the fault row), which is exactly the CW/CCW
    // detour pair.
    let router = labeled_router(Topology::mesh(9, 9), &coords(&[(4, 4), (5, 4), (3, 4)]));
    let r = router
        .route_disjoint(Coord::new(0, 4), Coord::new(8, 4), 2)
        .unwrap();
    assert_eq!(r.paths.len(), 2);
    assert!(r.pairwise_disjoint());
    let sides: Vec<i32> = r
        .paths
        .iter()
        .map(|p| {
            let above = p.hops.iter().any(|c| c.y < 4);
            let below = p.hops.iter().any(|c| c.y > 4);
            assert!(above != below, "a detour stays on one side of the ring");
            if above {
                -1
            } else {
                1
            }
        })
        .collect();
    assert_eq!(
        sides[0] * sides[1],
        -1,
        "paths split CW/CCW around the ring"
    );
}

#[test]
fn deadlock_prover_green_on_every_suite_snapshot() {
    for (topology, faults) in [
        (Topology::mesh(12, 12), coords(&MESH_FAULTS)),
        (Topology::torus(10, 10), coords(&TORUS_FAULTS)),
        (Topology::mesh(8, 8), Vec::new()),
        (Topology::torus(8, 8), Vec::new()),
        (Topology::mesh(9, 9), coords(&[(4, 4), (5, 4), (3, 4)])),
    ] {
        let router = labeled_router(topology, &faults);
        let proof = prove_router_all_pairs(&router);
        assert!(
            proof.is_free(),
            "{topology:?} {faults:?}: {} back edges over {} channels",
            proof.back_edges,
            proof.channels
        );
        assert!(proof.paths > 0 && proof.channels > 0 && proof.dependencies > 0);
        let expected_vcs = if topology.kind() == ocp_mesh::TopologyKind::Torus {
            81
        } else {
            27
        };
        assert_eq!(proof.vcs, expected_vcs);
        // The per-link hardware cost is far below the label-space size.
        assert!(
            (1..=12).contains(&proof.max_link_vcs),
            "{topology:?}: {} labels on one link",
            proof.max_link_vcs
        );
    }
}

// ---- mutation negatives: the checker must reject seeded cycles ----

fn all_pairs_routes(router: &FaultTolerantRouter) -> Vec<Path> {
    let cells = router.enabled().enabled_coords();
    let mut paths = Vec::new();
    for &src in &cells {
        for &dst in &cells {
            if src != dst {
                if let Ok(p) = router.route(src, dst) {
                    paths.push(p);
                }
            }
        }
    }
    paths
}

#[test]
fn mutation_dropped_torus_dateline_is_rejected() {
    // Collapse the sticky wrap layer (fold every label to layer 0) on the
    // torus all-pairs route set: the wrap-around rings reappear as CDG
    // cycles — the torus-dateline mutation, in this model's terms.
    let router = labeled_router(Topology::torus(10, 10), &coords(&TORUS_FAULTS));
    let model = DetourVcModel::new(&router);
    let paths = all_pairs_routes(&router);
    let no_layer = |p: &Path, hop: usize| model.assign(p, hop) % 27;
    let graph = DependencyGraph::from_paths(paths.iter(), &no_layer);
    assert!(
        !graph.is_acyclic(),
        "dropping the wrap layer must reintroduce wrap cycles"
    );
    // Control: the full model on the same path set stays acyclic.
    let full = DependencyGraph::from_paths(paths.iter(), &model.assignment());
    assert!(full.is_acyclic());
}

#[test]
fn mutation_dropped_ring_dateline_is_rejected() {
    // Fold the high detour copy back into the low one on the torus
    // fixture: a walk arc can chain all the way around a fault ring and
    // the detour sub-channel cycles.
    let router = labeled_router(Topology::torus(10, 10), &coords(&TORUS_FAULTS));
    let model = DetourVcModel::new(&router);
    let paths = all_pairs_routes(&router);
    let no_ring_dateline = |p: &Path, hop: usize| {
        let v = model.assign(p, hop);
        if v % 3 == ocp_routing::deadlock::vc::SUB_WALK_HIGH {
            v - 1
        } else {
            v
        }
    };
    let graph = DependencyGraph::from_paths(paths.iter(), &no_ring_dateline);
    assert!(
        !graph.is_acyclic(),
        "dropping the ring datelines must let walk arcs close the loop"
    );
    let full = DependencyGraph::from_paths(paths.iter(), &model.assignment());
    assert!(full.is_acyclic());
}

#[test]
fn mutation_folded_quadrant_classes_are_rejected() {
    // Fold the eight quadrant classes down to f-cube4's four (x-movers
    // keep only their x sign) on the mesh fixture: an EW class's y-phases
    // run both directions on one layer and the ring walks supply the
    // reversal turns a cycle needs.
    let router = labeled_router(Topology::mesh(12, 12), &coords(&MESH_FAULTS));
    let model = DetourVcModel::new(&router);
    let paths = all_pairs_routes(&router);
    let folded = |p: &Path, hop: usize| {
        let v = model.assign(p, hop);
        let (layer, class, sub) = (v / 27, (v % 27) / 3, v % 3);
        let class = if class / 3 != 1 {
            3 * (class / 3) + 1
        } else {
            class
        };
        27 * layer + 3 * class + sub
    };
    let graph = DependencyGraph::from_paths(paths.iter(), &folded);
    assert!(
        !graph.is_acyclic(),
        "four f-cube4 classes are not enough under free walk orientation"
    );
    let full = DependencyGraph::from_paths(paths.iter(), &model.assignment());
    assert!(full.is_acyclic());
}

#[test]
fn mutation_single_vc_detours_are_rejected() {
    // Collapsing both classes to one VC on a fault-free torus leaves the
    // classic wrap-around cycle that datelines exist to cut.
    let router = labeled_router(Topology::torus(8, 8), &[]);
    let paths = all_pairs_routes(&router);
    let graph = DependencyGraph::from_paths(paths.iter(), &assign_single_vc);
    assert!(!graph.is_acyclic(), "single-VC torus XY must cycle");
}

#[test]
fn mutation_hand_seeded_four_cycle_is_rejected() {
    // Four worms chasing each other around a unit square on one VC: the
    // canonical Dally–Seitz cycle, independent of any router.
    let square = [
        Coord::new(1, 1),
        Coord::new(2, 1),
        Coord::new(2, 2),
        Coord::new(1, 2),
    ];
    let mut paths = Vec::new();
    for i in 0..4 {
        paths.push(Path {
            hops: vec![square[i], square[(i + 1) % 4], square[(i + 2) % 4]],
        });
    }
    let graph = DependencyGraph::from_paths(paths.iter(), &assign_single_vc);
    assert!(!graph.is_acyclic(), "seeded four-cycle must be rejected");
    // The quadrant classes break exactly this chase (each worm heads a
    // different way), so the detour model rightly clears it...
    let router = labeled_router(Topology::mesh(4, 4), &[]);
    assert!(prove_paths(&router, &paths).is_free());
    // ...but a chase by four worms of the *same* quadrant class — each a
    // wandering non-XY path the production router never emits — shares
    // one label, and the checker still catches the cycle.
    let c = |x, y| Coord::new(x, y);
    let same_class = vec![
        Path {
            hops: vec![c(0, 1), c(1, 1), c(2, 1), c(2, 2)],
        },
        Path {
            hops: vec![
                c(2, 0),
                c(2, 1),
                c(2, 2),
                c(1, 2),
                c(1, 3),
                c(2, 3),
                c(3, 3),
            ],
        },
        Path {
            hops: vec![
                c(2, 2),
                c(1, 2),
                c(1, 1),
                c(2, 1),
                c(3, 1),
                c(3, 2),
                c(3, 3),
            ],
        },
        Path {
            hops: vec![c(0, 2), c(1, 2), c(1, 1), c(2, 1), c(2, 2), c(2, 3)],
        },
    ];
    let model = DetourVcModel::new(&router);
    for p in &same_class {
        assert_eq!(model.message_class(p), 8, "all four worms head north-east");
    }
    let proof = prove_paths(&router, &same_class);
    assert!(!proof.is_free(), "same-class seeded chase must be rejected");
}
