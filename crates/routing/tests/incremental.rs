//! Incremental ≡ cold equivalence of the delta-driven epoch build.
//!
//! `FaultTolerantRouter::rebuild_from` must produce a router whose every
//! table is byte-identical to a cold `FaultTolerantRouter::new` of the
//! same labeled machine — pinned here by `table_digest` equality across
//! scripted and randomized fault/repair churn sequences, on meshes and
//! tori, chaining warm rebuilds epoch over epoch (so copy-then-patch
//! errors compound instead of washing out). Spot route checks confirm the
//! digest is standing in for real query behavior.

use ocp_core::prelude::*;
use ocp_geometry::Region;
use ocp_mesh::{Coord, Topology, TopologyKind};
use ocp_routing::{EnabledMap, FaultTolerantRouter};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn c(x: i32, y: i32) -> Coord {
    Coord::new(x, y)
}

/// `(enabled, regions)` of the pipeline-labeled machine for a fault set.
fn labeled(t: Topology, faults: &BTreeSet<Coord>) -> (EnabledMap, Vec<Region>) {
    let map = FaultMap::new(t, faults.iter().copied());
    let out = run_pipeline(&map, &PipelineConfig::default());
    let enabled = EnabledMap::from_outcome(&out);
    let regions = out.regions.iter().map(|r| r.cells.clone()).collect();
    (enabled, regions)
}

/// Runs a churn sequence: epoch 0 is a cold build, every later epoch is a
/// warm `rebuild_from` of the previous *warm* router, checked
/// digest-identical to an independent cold build of the same machine.
/// Returns the final warm router.
fn check_churn(t: Topology, epochs: &[BTreeSet<Coord>]) -> FaultTolerantRouter {
    let (e0, r0) = labeled(t, &epochs[0]);
    let mut warm = FaultTolerantRouter::new(e0, &r0);
    for (i, faults) in epochs.iter().enumerate().skip(1) {
        let (enabled, regions) = labeled(t, faults);
        let (next, stats) = FaultTolerantRouter::rebuild_from(&warm, enabled.clone(), &regions);
        let cold = FaultTolerantRouter::new(enabled, &regions);
        assert_eq!(
            next.table_digest(),
            cold.table_digest(),
            "epoch {i} warm rebuild diverged from cold (faults {faults:?})"
        );
        assert!(stats.incremental, "epoch {i} must report incremental");
        assert!(
            stats.phase_ns() <= stats.total_ns,
            "epoch {i} phase accounting"
        );
        warm = next;
    }
    warm
}

/// Routes a handful of deterministic pairs on the warm router and a cold
/// rebuild of the same machine and compares outcomes — the digest's claim
/// made concrete at the query level.
fn spot_check_routes(warm: &FaultTolerantRouter, seed: u64) {
    let (enabled, regions) = (warm.enabled().clone(), warm.groups().to_vec());
    let cold = FaultTolerantRouter::new(enabled, &regions);
    let nodes = warm.enabled().enabled_coords();
    if nodes.is_empty() {
        return;
    }
    let pick = |k: u64| nodes[(seed.wrapping_mul(k + 1) % nodes.len() as u64) as usize];
    for k in 0..16u64 {
        let (src, dst) = (pick(2 * k), pick(2 * k + 1));
        assert_eq!(
            warm.route(src, dst),
            cold.route(src, dst),
            "route {src}->{dst}"
        );
        assert_eq!(
            warm.route_len(src, dst),
            cold.route_len(src, dst),
            "route_len {src}->{dst}"
        );
    }
}

/// Scripted mesh churn covering the reuse-analysis edge cases: grow a
/// region (touched lines), add an isolated fault far away (ring reuse),
/// merge two regions diagonally (group identity changes), repair cells
/// (regions shrink and vanish), and drain back to fault-free.
#[test]
fn scripted_mesh_churn_stays_digest_identical() {
    let t = Topology::mesh(16, 16);
    let epochs: Vec<BTreeSet<Coord>> = vec![
        [c(4, 4), c(10, 11)].into(),
        [c(4, 4), c(4, 5), c(10, 11)].into(),
        [c(4, 4), c(4, 5), c(10, 11), c(13, 2)].into(),
        // Diagonal contact: (5, 6) bridges the (4, 4) group toward (6, 7).
        [c(4, 4), c(4, 5), c(5, 6), c(6, 7), c(10, 11), c(13, 2)].into(),
        // Repair the bridge; the merged group splits again.
        [c(4, 4), c(4, 5), c(6, 7), c(10, 11), c(13, 2)].into(),
        [c(10, 11)].into(),
        BTreeSet::new(),
        [c(0, 0), c(15, 15)].into(),
    ];
    let warm = check_churn(t, &epochs);
    spot_check_routes(&warm, 0x9E37_79B9_7F4A_7C15);
}

/// Scripted torus churn: seam-hugging regions exercise the wraparound
/// prefilter, wrap-aware halos, and the no-exit-directory path.
#[test]
fn scripted_torus_churn_stays_digest_identical() {
    let t = Topology::torus(14, 12);
    let epochs: Vec<BTreeSet<Coord>> = vec![
        [c(0, 0), c(13, 11)].into(),
        [c(0, 0), c(13, 11), c(6, 5)].into(),
        [c(0, 0), c(13, 0), c(13, 11), c(6, 5)].into(),
        [c(13, 11), c(6, 5), c(6, 6), c(7, 5)].into(),
        [c(6, 5), c(6, 6), c(7, 5)].into(),
        BTreeSet::new(),
    ];
    let warm = check_churn(t, &epochs);
    spot_check_routes(&warm, 0xC2B2_AE3D_27D4_EB4F);
}

/// A fault-free previous epoch has nothing to reuse; the rebuild must
/// still be exact (everything is "touched" from the group diff side).
#[test]
fn rebuild_from_fault_free_previous_epoch() {
    let t = Topology::mesh(10, 10);
    let (e0, r0) = labeled(t, &BTreeSet::new());
    let prev = FaultTolerantRouter::new(e0, &r0);
    let faults: BTreeSet<Coord> = [c(3, 3), c(3, 4), c(7, 7)].into();
    let (e1, r1) = labeled(t, &faults);
    let (warm, _) = FaultTolerantRouter::rebuild_from(&prev, e1.clone(), &r1);
    let cold = FaultTolerantRouter::new(e1, &r1);
    assert_eq!(warm.table_digest(), cold.table_digest());
}

/// Random churn: an initial fault set plus a sequence of toggle batches
/// (a toggled cell flips between faulty and repaired), applied
/// cumulatively.
fn churn_pattern() -> impl Strategy<Value = (u32, Vec<Coord>, Vec<Vec<Coord>>, u64)> {
    (8u32..=16).prop_flat_map(|side| {
        let cell = move || (0..side as i32, 0..side as i32).prop_map(|(x, y)| Coord::new(x, y));
        let initial = proptest::collection::btree_set(cell(), 0..10)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>());
        let batches = proptest::collection::vec(proptest::collection::vec(cell(), 0..6), 1..5);
        (Just(side), initial, batches, any::<u64>())
    })
}

fn check_random_churn(
    kind: TopologyKind,
    side: u32,
    initial: Vec<Coord>,
    batches: Vec<Vec<Coord>>,
    seed: u64,
) {
    let t = Topology::new(kind, side, side);
    let mut faults: BTreeSet<Coord> = initial.into_iter().collect();
    let mut epochs = vec![faults.clone()];
    for batch in batches {
        for cell in batch {
            if !faults.remove(&cell) {
                faults.insert(cell);
            }
        }
        epochs.push(faults.clone());
    }
    let warm = check_churn(t, &epochs);
    spot_check_routes(&warm, seed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Warm chains == cold on random mesh churn (boundary chains,
    /// merges, and repairs included).
    #[test]
    fn random_mesh_churn_matches_cold(
        (side, initial, batches, seed) in churn_pattern()
    ) {
        check_random_churn(TopologyKind::Mesh, side, initial, batches, seed);
    }

    /// Warm chains == cold on random torus churn (seam wraps included).
    #[test]
    fn random_torus_churn_matches_cold(
        (side, initial, batches, seed) in churn_pattern()
    ) {
        check_random_churn(TopologyKind::Torus, side, initial, batches, seed);
    }
}
