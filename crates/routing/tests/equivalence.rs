//! Byte-identical equivalence of the indexed query path and the reference
//! per-hop router.
//!
//! The indexed traversal (`route` / `route_len` / `route_into` /
//! `route_len_with`) must reproduce the pre-index algorithm
//! (`route_reference` / `route_len_reference`) *exactly*: same cell-for-cell
//! paths, same hop counts, and same errors — on meshes (including boundary
//! fault chains) and on tori (including seam-crossing segments and rings).
//! Anything less would change what `ocp-serve` returns across a release.
//!
//! The wide batch engine (`route_len_batch` / `route_len_batch_with`) is
//! pinned to the same contract: every result in a batch must equal the
//! scalar indexed *and* reference result for that pair, for every batch
//! size — including partial final lanes (batch % lane width ≠ 0),
//! single-pair batches, and batches mixing every outcome class.

use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology, TopologyKind};
use ocp_routing::{EnabledMap, FaultTolerantRouter, Path, RouteScratch};
use proptest::prelude::*;

/// Router over the disabled regions of a pipeline-labeled machine.
fn labeled_router(topology: Topology, faults: &[Coord]) -> FaultTolerantRouter {
    let map = FaultMap::new(topology, faults.iter().copied());
    let out = run_pipeline(&map, &PipelineConfig::default());
    let enabled = EnabledMap::from_outcome(&out);
    let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();
    FaultTolerantRouter::new(enabled, &regions)
}

/// Asserts full equivalence for one pair across all four entry points.
fn assert_pair_equivalent(
    router: &FaultTolerantRouter,
    src: Coord,
    dst: Coord,
    path_buf: &mut Path,
    scratch: &mut RouteScratch,
) {
    let reference = router.route_reference(src, dst);
    let indexed = router.route(src, dst);
    assert_eq!(indexed, reference, "route {src}->{dst}");
    assert_eq!(
        router.route_len(src, dst),
        router.route_len_reference(src, dst),
        "route_len {src}->{dst}"
    );
    let via_into = router.route_into(src, dst, path_buf, scratch);
    match &reference {
        Ok(p) => {
            assert_eq!(
                via_into.as_ref().ok(),
                Some(&p.len()),
                "route_into {src}->{dst}"
            );
            assert_eq!(path_buf, p, "route_into path {src}->{dst}");
            assert_eq!(
                router.route_len_with(src, dst, scratch),
                Ok(p.len()),
                "route_len_with {src}->{dst}"
            );
        }
        Err(e) => {
            assert_eq!(
                via_into.as_ref().err(),
                Some(e),
                "route_into err {src}->{dst}"
            );
            assert_eq!(
                router.route_len_with(src, dst, scratch).as_ref().err(),
                Some(e),
                "route_len_with err {src}->{dst}"
            );
        }
    }
}

/// Asserts the wide batch engine agrees with the scalar indexed path and
/// the reference on every pair of `pairs`, splitting the workload into
/// batches of `width` (the final batch is usually partial, exercising
/// `batch % LANES != 0` lane tails).
fn assert_batches_equivalent(
    router: &FaultTolerantRouter,
    pairs: &[(Coord, Coord)],
    width: usize,
    scratch: &mut RouteScratch,
) {
    let mut out = Vec::new();
    for batch in pairs.chunks(width) {
        router.route_len_batch_with(batch, scratch, &mut out);
        assert_eq!(out.len(), batch.len());
        for (&(src, dst), got) in batch.iter().zip(&out) {
            assert_eq!(
                *got,
                router.route_len_with(src, dst, scratch),
                "wide vs scalar {src}->{dst} (width {width})"
            );
            assert_eq!(
                *got,
                router.route_len_reference(src, dst),
                "wide vs reference {src}->{dst} (width {width})"
            );
        }
    }
}

/// Exhaustive all-pairs equivalence on a mixed mesh workload: open space,
/// a merged diagonal block, a lone fault, and a boundary chain — every
/// router outcome class, with one shared path buffer and scratch reused
/// across every query.
#[test]
fn all_pairs_equivalent_on_mesh() {
    let c = Coord::new;
    let router = labeled_router(
        Topology::mesh(12, 12),
        &[c(5, 4), c(6, 5), c(9, 9), c(0, 6), c(2, 2)],
    );
    let nodes = router.enabled().enabled_coords();
    let mut path_buf = Path::new(c(0, 0));
    let mut scratch = RouteScratch::new();
    let mut pairs = Vec::new();
    for &src in &nodes {
        for &dst in &nodes {
            assert_pair_equivalent(&router, src, dst, &mut path_buf, &mut scratch);
            pairs.push((src, dst));
        }
    }
    // The same all-pairs workload through the wide engine: one partial
    // final lane per 7-wide batch, then everything in a single batch.
    assert_batches_equivalent(&router, &pairs, 7, &mut scratch);
    assert_batches_equivalent(&router, &pairs, pairs.len(), &mut scratch);
}

/// Exhaustive all-pairs equivalence on a torus with faults hugging the
/// seam, so segments and ring walks wrap in both dimensions.
#[test]
fn all_pairs_equivalent_on_torus_seam() {
    let c = Coord::new;
    let router = labeled_router(
        Topology::torus(10, 10),
        &[c(0, 5), c(9, 0), c(5, 9), c(4, 4), c(5, 5)],
    );
    let nodes = router.enabled().enabled_coords();
    let mut path_buf = Path::new(c(0, 0));
    let mut scratch = RouteScratch::new();
    let mut pairs = Vec::new();
    for &src in &nodes {
        for &dst in &nodes {
            assert_pair_equivalent(&router, src, dst, &mut path_buf, &mut scratch);
            pairs.push((src, dst));
        }
    }
    assert_batches_equivalent(&router, &pairs, 7, &mut scratch);
    assert_batches_equivalent(&router, &pairs, pairs.len(), &mut scratch);
}

/// Two pairs of unmerged fault regions exactly two apart: the cell between
/// each pair sits on *both* rings, so the wide engine's position lookups
/// exercise the grid-fallback path (`ring_pos` can only encode the first
/// ring). All pairs, every batch width class — including width 1 and a
/// width that leaves a partial final lane.
#[test]
fn batch_handles_multi_ring_cells() {
    let c = Coord::new;
    let router = labeled_router(
        Topology::mesh(12, 12),
        &[c(4, 4), c(4, 6), c(8, 3), c(8, 5)],
    );
    let nodes = router.enabled().enabled_coords();
    let mut scratch = RouteScratch::new();
    let pairs: Vec<(Coord, Coord)> = nodes
        .iter()
        .flat_map(|&src| nodes.iter().map(move |&dst| (src, dst)))
        .collect();
    for width in [1, 3, 8, 13, pairs.len()] {
        assert_batches_equivalent(&router, &pairs, width, &mut scratch);
    }
}

/// A machine too wide for the next-blocked probe tables (extent ≥ 2^16,
/// so blocked distances would not pack): the wide engine must fall back
/// to the search kernels — `count_below` on the short column lines and
/// the lockstep lane search on the long rows, whose interval tables here
/// exceed the count-kernel cutoff. Equivalence on straight, detouring,
/// multi-encounter, and infeasible-endpoint pairs, at widths exercising
/// partial lockstep blocks.
#[test]
fn batch_falls_back_to_search_kernels_on_wide_mesh() {
    let c = Coord::new;
    // 100 isolated faults along y = 1: row 1 carries 100 disabled
    // intervals (> the count cutoff of 64), while every column carries
    // at most one.
    let faults: Vec<Coord> = (0..100).map(|k| c(300 + 650 * k, 1)).collect();
    let router = labeled_router(Topology::mesh(65_535, 4), &faults);
    let mut scratch = RouteScratch::new();
    let mut pairs: Vec<(Coord, Coord)> = Vec::new();
    // West-to-east sweeps along the faulty row hit many rings in one
    // query; cross-row pairs mix in column probes; short pairs stay
    // straight.
    for k in 0..12 {
        let x = 120 + 5_000 * k;
        pairs.push((c(x, 1), c(x + 4_800, 1)));
        pairs.push((c(x + 4_800, 2), c(x, 0)));
        pairs.push((c(x, 3), c(x + 37, 3)));
    }
    pairs.push((c(0, 1), c(65_534, 1))); // full-width, every ring en route
    pairs.push((c(300, 0), c(300, 3))); // column probe straight past a ring
    pairs.push((c(300, 1), c(5, 2))); // starts on a disabled cell
    for width in [1, 5, pairs.len()] {
        assert_batches_equivalent(&router, &pairs, width, &mut scratch);
    }
}

/// Strategy: a side, fault cells anywhere in the machine (boundary chains
/// included on meshes), and an endpoint-sampling seed.
fn pattern() -> impl Strategy<Value = (u32, Vec<Coord>, u64)> {
    (8u32..=16).prop_flat_map(|side| {
        let cells = proptest::collection::btree_set(
            (0..side as i32, 0..side as i32).prop_map(|(x, y)| Coord::new(x, y)),
            0..14,
        );
        (
            Just(side),
            cells.prop_map(|s| s.into_iter().collect()),
            any::<u64>(),
        )
    })
}

/// Shared proptest body: build the labeled router and compare sampled
/// pairs (plus every fault-adjacent endpoint pairing, the ring-heavy
/// cases) across implementations.
fn check_random_machine(
    kind: TopologyKind,
    side: u32,
    faults: Vec<Coord>,
    seed: u64,
) -> Result<(), TestCaseError> {
    let topology = Topology::new(kind, side, side);
    let router = labeled_router(topology, &faults);
    let nodes = router.enabled().enabled_coords();
    if nodes.is_empty() {
        return Ok(());
    }
    let mut path_buf = Path::new(Coord::new(0, 0));
    let mut scratch = RouteScratch::new();
    let pick = |k: u64| nodes[(seed.wrapping_mul(k + 1) % nodes.len() as u64) as usize];
    let mut pairs = Vec::new();
    for k in 0..24u64 {
        let (src, dst) = (pick(2 * k), pick(2 * k + 1));
        assert_pair_equivalent(&router, src, dst, &mut path_buf, &mut scratch);
        pairs.push((src, dst));
    }
    // Endpoints right next to the fault regions force immediate ring
    // entries and multi-ring detours.
    let ring_cells: Vec<Coord> = router
        .rings()
        .iter()
        .flat_map(|r| r.cells().iter().copied())
        .collect();
    for (i, &src) in ring_cells.iter().enumerate() {
        let dst = pick(i as u64);
        assert_pair_equivalent(&router, src, dst, &mut path_buf, &mut scratch);
        assert_pair_equivalent(&router, dst, src, &mut path_buf, &mut scratch);
        pairs.push((src, dst));
        pairs.push((dst, src));
    }
    // The same workload through the wide engine, at a width that leaves a
    // partial final lane and as one full-size batch.
    assert_batches_equivalent(&router, &pairs, 5, &mut scratch);
    assert_batches_equivalent(&router, &pairs, pairs.len(), &mut scratch);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Indexed == reference on random meshes (boundary chains included).
    #[test]
    fn indexed_matches_reference_on_mesh(
        (side, faults, seed) in pattern()
    ) {
        check_random_machine(TopologyKind::Mesh, side, faults, seed)?;
    }

    /// Indexed == reference on random tori (seam-crossing segments and
    /// wrap-around rings included).
    #[test]
    fn indexed_matches_reference_on_torus(
        (side, faults, seed) in pattern()
    ) {
        check_random_machine(TopologyKind::Torus, side, faults, seed)?;
    }
}
