//! End-to-end tests of the `repro` binary itself.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn example_sec3_prints_expected_structure() {
    let out = repro().arg("example-sec3").output().expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Section 3 worked example"));
    assert!(stdout.contains("blocks: 1  regions: 3"));
    assert!(stdout.contains("all Section 4 invariants verified"));
}

#[test]
fn quick_verify_campaign_passes_and_writes_json() {
    let dir = std::env::temp_dir().join(format!("repro-test-{}", std::process::id()));
    let out = repro()
        .args(["--quick", "--out"])
        .arg(&dir)
        .arg("verify")
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("violations"));
    let json = std::fs::read_to_string(dir.join("verify.json")).expect("json written");
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid json");
    assert_eq!(parsed["violations"], 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = repro().arg("nonsense").output().expect("repro runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_lists_all_commands() {
    let out = repro().arg("--help").output().expect("repro runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "fig5a",
        "models",
        "routing",
        "verify",
        "partition",
        "async",
        "chaos",
        "durability",
        "durability-smoke",
    ] {
        assert!(stdout.contains(cmd), "help missing {cmd}");
    }
}
