//! `repro` — regenerates every exhibit of the paper's evaluation.
//!
//! ```text
//! repro [--quick] [--trials N] [--seed S] [--out DIR] <command>
//!
//! Commands:
//!   fig5a         rounds to form faulty blocks vs faults (mesh & torus)
//!   fig5b         rounds to form disabled regions vs faults
//!   fig5c         enabled ratio vs faults (mesh)
//!   fig5d         enabled ratio vs faults (torus)
//!   models        Def-2a vs Def-2b vs disabled-region cost table (E9)
//!   routing       routing-model comparison + CDG + wormhole (E10)
//!   verify        theorem-checking campaign (E8)
//!   maintenance   warm vs cold relabeling rounds
//!   partition     disabled regions vs exact optimal polygon cover (E11)
//!   async         asynchronous execution vs lock-step fixpoint (E12)
//!   chaos         lossy-link overhead vs drop rate (E13)
//!   serve         mesh-state service: throughput/tail latency/staleness (E14)
//!   serve-smoke   ~2s TCP service smoke run (CI gate)
//!   scaling       labeling-engine speedups: size x density x engine (E15)
//!   routeperf     wide/indexed vs reference route_len throughput (E17)
//!   routeperf-smoke  quick E17 sweep with a relaxed speedup bar (CI gate)
//!   rebuild       incremental vs cold epoch builds, digest-pinned (E22)
//!   rebuild-smoke quick E22 sweep: digest-identical + modest speedup (CI gate)
//!   obs           observability overhead sweep, on vs off (E16)
//!   obs-smoke     TCP scrape of the metrics/obs endpoints (CI gate)
//!   durability    publish-path cost of certificates + WAL, on vs off (E18)
//!   durability-smoke  crash/recover replay gate over a real WAL (CI gate)
//!   fleet         reactor + fleet at connection scale: sweep, 2x bar, 10k sustain (E19)
//!   fleet-smoke   512 pipelined conns x 4 tenants, oracle-verified, 2x bar (CI gate)
//!   disjoint      k-disjoint serving: all-to-all oracle-verified + CDG prover (E21)
//!   disjoint-smoke  all-pairs k=2 over the reactor, verified + sampled CDG (CI gate)
//!   bench-check   --in <log>: bench-smoke names vs results/bench_baseline.json
//!   example-sec3  the paper's Section 3 worked example, rendered
//!   all           everything above
//! ```
//!
//! Tables print to stdout; JSON records land in `--out` (default
//! `results/`).

use ocp_analysis::to_json;
use ocp_bench::experiments::{
    self, asynchrony, chaos, disjoint, durability, fig5, fleet, maintenance, models, observability,
    partition_gap, rebuild, routeperf, routing_eval, scaling, serve_load, verification, Settings,
};
use std::path::PathBuf;

struct Args {
    settings: Settings,
    out_dir: PathBuf,
    command: String,
    in_file: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut settings = Settings::default();
    let mut out_dir = PathBuf::from("results");
    let mut command = String::from("all");
    let mut in_file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => settings = Settings::quick(),
            "--trials" => {
                settings.trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trials needs a number");
            }
            "--seed" => {
                settings.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--side" => {
                settings.side = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--side needs a number");
            }
            "--out" => {
                out_dir = args.next().map(PathBuf::from).expect("--out needs a path");
            }
            "--in" => {
                in_file = args.next().map(PathBuf::from);
                assert!(in_file.is_some(), "--in needs a path");
            }
            "--help" | "-h" => {
                println!("see module docs: repro [--quick] [--trials N] [--seed S] [--side N] [--out DIR] [--in FILE] <fig5a|fig5b|fig5c|fig5d|models|routing|verify|maintenance|partition|async|chaos|serve|serve-smoke|scaling|routeperf|routeperf-smoke|rebuild|rebuild-smoke|obs|obs-smoke|durability|durability-smoke|fleet|fleet-smoke|disjoint|disjoint-smoke|bench-check|example-sec3|all>");
                std::process::exit(0);
            }
            other => command = other.to_string(),
        }
    }
    Args {
        settings,
        out_dir,
        command,
        in_file,
    }
}

fn save(out_dir: &PathBuf, name: &str, json: String) {
    std::fs::create_dir_all(out_dir).expect("create results dir");
    let path = out_dir.join(format!("{name}.json"));
    std::fs::write(&path, json).expect("write results");
    println!("[saved {}]", path.display());
}

fn run_fig5(args: &Args, which: &str) {
    println!(
        "Figure 5 reproduction: {}x{} machine, f in {{10%..100%}} of side, {} trials",
        args.settings.side, args.settings.side, args.settings.trials
    );
    let fig = fig5::run(&args.settings);
    match which {
        "fig5a" => {
            let t = fig5::panel_table(&[&fig.rounds_fb_mesh, &fig.rounds_fb_torus]);
            println!(
                "{}",
                experiments::render_section("Fig 5(a): rounds to form faulty blocks", &t)
            );
        }
        "fig5b" => {
            let t = fig5::panel_table(&[&fig.rounds_dr_mesh, &fig.rounds_dr_torus]);
            println!(
                "{}",
                experiments::render_section("Fig 5(b): rounds to form disabled regions", &t)
            );
        }
        "fig5c" => {
            let t = fig5::panel_table(&[&fig.ratio_mesh]);
            println!(
                "{}",
                experiments::render_section(
                    "Fig 5(c): % enabled among unsafe-nonfaulty (mesh)",
                    &t
                )
            );
        }
        "fig5d" => {
            let t = fig5::panel_table(&[&fig.ratio_torus]);
            println!(
                "{}",
                experiments::render_section(
                    "Fig 5(d): % enabled among unsafe-nonfaulty (torus)",
                    &t
                )
            );
        }
        _ => {
            let ta = fig5::panel_table(&[&fig.rounds_fb_mesh, &fig.rounds_fb_torus]);
            let tb = fig5::panel_table(&[&fig.rounds_dr_mesh, &fig.rounds_dr_torus]);
            let tc = fig5::panel_table(&[&fig.ratio_mesh]);
            let td = fig5::panel_table(&[&fig.ratio_torus]);
            println!(
                "{}",
                experiments::render_section("Fig 5(a): rounds to form faulty blocks", &ta)
            );
            println!(
                "{}",
                experiments::render_section("Fig 5(b): rounds to form disabled regions", &tb)
            );
            println!(
                "{}",
                experiments::render_section("Fig 5(c): % enabled (mesh)", &tc)
            );
            println!(
                "{}",
                experiments::render_section("Fig 5(d): % enabled (torus)", &td)
            );
        }
    }
    save(&args.out_dir, "fig5", to_json(&fig));
}

fn run_models(args: &Args) {
    let ab = models::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E9: nonfaulty nodes sacrificed per model (means)",
            &models::table(&ab)
        )
    );
    save(&args.out_dir, "models", to_json(&ab));
}

fn run_routing(args: &Args) {
    let rows = routing_eval::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E10: routing under FB vs DR fault models (32x32 mesh)",
            &routing_eval::table(&rows)
        )
    );
    save(&args.out_dir, "routing", to_json(&rows));
}

fn run_verify(args: &Args) {
    let report = verification::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E8: theorem verification campaign",
            &verification::table(&report)
        )
    );
    for s in &report.samples {
        println!("  VIOLATION: {s}");
    }
    save(&args.out_dir, "verify", to_json(&report));
    if report.violations > 0 {
        std::process::exit(1);
    }
}

fn run_maintenance(args: &Args) {
    let result = maintenance::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "Maintenance: phase-1 rounds after one new fault",
            &maintenance::table(&result)
        )
    );
    save(&args.out_dir, "maintenance", to_json(&result));
}

fn run_partition(args: &Args) {
    let rows = partition_gap::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E11: disabled regions vs exact optimal polygon cover (open problem)",
            &partition_gap::table(&rows)
        )
    );
    save(&args.out_dir, "partition", to_json(&rows));
}

fn run_async_exp(args: &Args) {
    let rows = asynchrony::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E12: asynchronous execution vs lock-step fixpoint",
            &asynchrony::table(&rows)
        )
    );
    save(&args.out_dir, "async", to_json(&rows));
}

fn run_chaos_exp(args: &Args) {
    let rows = chaos::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E13: lossy-link overhead vs drop rate (chaos executor)",
            &chaos::table(&rows)
        )
    );
    save(&args.out_dir, "chaos", to_json(&rows));
}

fn run_serve(args: &Args) {
    let report = serve_load::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E14: mesh-state service, closed-loop load",
            &serve_load::load_table(&report.closed_loop)
        )
    );
    println!(
        "{}",
        experiments::render_section(
            "E14: mesh-state service, open-loop load (latency from scheduled arrival)",
            &serve_load::load_table(&report.open_loop)
        )
    );
    println!(
        "{}",
        experiments::render_section(
            "E14: read staleness vs writer coalescing window",
            &serve_load::staleness_table(&report.staleness)
        )
    );
    save(&args.out_dir, "serve", to_json(&report));
}

fn run_scaling(args: &Args) {
    let report = scaling::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E15: two-phase labeling cost per engine (cold)",
            &scaling::labeling_table(&report)
        )
    );
    println!(
        "{}",
        experiments::render_section(
            "E15: warm relabel latency per engine (serve writer path)",
            &scaling::relabel_table(&report)
        )
    );
    save(&args.out_dir, "scaling", to_json(&report));
}

fn run_routeperf(args: &Args) {
    let report = routeperf::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E17: route_len throughput, indexed vs reference query path",
            &routeperf::table(&report)
        )
    );
    println!(
        "{}",
        experiments::render_section(
            "E17: cold-baseline router + index construction cost (E22 patches it incrementally)",
            &routeperf::build_table(&report)
        )
    );
    save(&args.out_dir, "routeperf", to_json(&report));
    let flagship = routeperf::flagship_speedup(&report).expect("batch64 rows");
    println!(
        "flagship: {}x{} d={:.2} batch=64 speedup {:.2}x",
        flagship.side, flagship.side, flagship.density, flagship.speedup
    );
    // The acceptance bar applies to the full shape (256² / 10% clustered):
    // the wide engine at batch=64 must deliver >= 7x the reference
    // traversal's throughput (measured ~9.2x on the baseline machine;
    // EXPERIMENTS.md E20 documents the measured ceiling).
    if args.settings.side >= 100 && flagship.speedup < 7.0 {
        eprintln!(
            "FAIL: flagship wide-batch64 speedup {:.2}x below the 7x acceptance bar",
            flagship.speedup
        );
        std::process::exit(1);
    }
}

fn run_routeperf_smoke(args: &Args) {
    let mut settings = args.settings;
    if settings.side >= 100 {
        settings = Settings::quick();
    }
    let report = routeperf::run(&settings);
    let flagship = routeperf::flagship_speedup(&report).expect("batch64 rows");
    println!(
        "routeperf smoke: {} cells, flagship {}x{} d={:.2} batch=64 speedup {:.2}x",
        report.rows.len(),
        flagship.side,
        flagship.side,
        flagship.density,
        flagship.speedup
    );
    // Relaxed bar: small machines under CI noise still must show a clear
    // win (the quick shape measures ~4.8x); the 7x bar is enforced by
    // the full `routeperf` run.
    assert!(
        flagship.speedup >= 3.0,
        "smoke wide-batch64 speedup {:.2}x below the 3x smoke bar",
        flagship.speedup
    );
    println!("routeperf smoke: wide engine clears the 3x smoke bar");
}

fn run_rebuild(args: &Args) {
    let report = rebuild::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E22: incremental vs cold epoch builds (digest-pinned)",
            &rebuild::table(&report)
        )
    );
    save(&args.out_dir, "rebuild", to_json(&report));
    for r in &report.rows {
        if !r.digest_match {
            eprintln!(
                "FAIL: incremental rebuild diverged from the cold build at \
                 {}x{} d={:.2} batch={}",
                r.side, r.side, r.density, r.batch
            );
            std::process::exit(1);
        }
    }
    let flagship = rebuild::flagship(&report).expect("rebuild rows");
    println!(
        "flagship: {}x{} d={:.2} batch={} incremental {:.1}x, parallel cold {:.2}x ({} threads)",
        flagship.side,
        flagship.side,
        flagship.density,
        flagship.batch,
        flagship.speedup_incremental,
        flagship.speedup_parallel,
        report.threads
    );
    // Acceptance bars apply to the full shape (256² / 10% clustered,
    // batch <= 64): the incremental rebuild must beat the cold build by
    // >= 5x, and the banded cold build must reach >= 2x when the machine
    // actually has cores to band over.
    if args.settings.side >= 100 && flagship.speedup_incremental < 5.0 {
        eprintln!(
            "FAIL: flagship incremental speedup {:.2}x below the 5x acceptance bar",
            flagship.speedup_incremental
        );
        std::process::exit(1);
    }
    if args.settings.side >= 100 && report.threads >= 2 && flagship.speedup_parallel < 2.0 {
        eprintln!(
            "FAIL: parallel cold-build speedup {:.2}x below the 2x acceptance bar \
             at {} threads",
            flagship.speedup_parallel, report.threads
        );
        std::process::exit(1);
    }
    if report.threads < 2 {
        println!(
            "parallel cold-build bar skipped: only {} core available",
            report.threads
        );
    }
}

fn run_rebuild_smoke(args: &Args) {
    let mut settings = args.settings;
    if settings.side >= 100 {
        settings = Settings::quick();
    }
    let report = rebuild::run(&settings);
    // On the quick machines a 16-fault batch is a large fraction of the
    // mesh, so the speedup bar gates on the single-fault flagship; the
    // full-shape bars live in the full `rebuild` run.
    let flagship = report
        .rows
        .iter()
        .filter(|r| r.batch == 1)
        .max_by(|a, b| {
            (a.side, a.density)
                .partial_cmp(&(b.side, b.density))
                .expect("finite densities")
        })
        .expect("batch=1 rows");
    println!(
        "rebuild smoke: {} cells, flagship {}x{} d={:.2} batch={} incremental {:.1}x reuse {:.2}",
        report.rows.len(),
        flagship.side,
        flagship.side,
        flagship.density,
        flagship.batch,
        flagship.speedup_incremental,
        flagship.reuse_ratio
    );
    // Digest equality is the hard gate at every size.
    for r in &report.rows {
        assert!(
            r.digest_match,
            "incremental rebuild diverged from cold at {}x{} d={:.2} batch={}",
            r.side, r.side, r.density, r.batch
        );
    }
    assert!(
        flagship.speedup_incremental >= 1.5,
        "smoke incremental speedup {:.2}x below the 1.5x smoke bar",
        flagship.speedup_incremental
    );
    println!("rebuild smoke: digest-identical everywhere, clears the 1.5x smoke bar");
}

fn run_obs(args: &Args) {
    let report = observability::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E16: observability overhead, instrumentation on vs off",
            &observability::table(&report)
        )
    );
    println!(
        "aggregate overhead: {:+.2}% ({} metric families, {} spans recorded)",
        report.aggregate_overhead_pct, report.metric_families, report.spans_recorded
    );
    save(&args.out_dir, "obs", to_json(&report));
    if report.aggregate_overhead_pct > 5.0 {
        eprintln!(
            "FAIL: observability overhead {:.2}% exceeds the 5% acceptance bar",
            report.aggregate_overhead_pct
        );
        std::process::exit(1);
    }
    println!("observability overhead within the 5% acceptance bar");
}

fn run_obs_smoke(args: &Args) {
    let report = observability::obs_smoke(args.settings.seed);
    println!(
        "obs smoke: {}-byte Prometheus scrape, {} metric families, {} spans, {} epoch(s) published",
        report.scrape_bytes, report.registry_families, report.spans, report.epochs_published
    );
    println!("obs smoke: all three exposure surfaces OK");
}

/// Compares the benchmark names in a `cargo bench` log against the keys of
/// `results/bench_baseline.json`, so the committed baseline can never
/// silently drift from the bench suites again (it went stale once already).
fn run_bench_check(args: &Args) {
    use std::collections::BTreeSet;
    let log_path = args
        .in_file
        .as_ref()
        .expect("bench-check needs --in <bench log>");
    let log = std::fs::read_to_string(log_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", log_path.display()));
    let measured: BTreeSet<String> = log
        .lines()
        .filter_map(|line| line.trim_start().strip_prefix("bench: "))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(str::to_string)
        .collect();
    assert!(
        !measured.is_empty(),
        "no `bench:` lines in {} — is it a `cargo bench -p ocp-bench` log?",
        log_path.display()
    );

    let baseline_path = args.out_dir.join("bench_baseline.json");
    let baseline_text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_path.display()));
    let parsed = serde_json::from_str::<serde_json::Value>(&baseline_text).expect("valid JSON");
    let mut baseline: BTreeSet<String> = BTreeSet::new();
    let suites = parsed
        .get("suites")
        .and_then(|s| s.as_object())
        .expect("baseline has a `suites` object");
    for (_suite, body) in suites {
        let benchmarks = body
            .get("benchmarks")
            .and_then(|b| b.as_object())
            .expect("suite has a `benchmarks` object");
        for (name, _value) in benchmarks {
            baseline.insert(name.clone());
        }
    }

    let missing: Vec<&String> = baseline.difference(&measured).collect();
    let unknown: Vec<&String> = measured.difference(&baseline).collect();
    println!(
        "bench-check: {} measured, {} baselined",
        measured.len(),
        baseline.len()
    );
    for name in &missing {
        eprintln!("  baseline key never ran: {name}");
    }
    for name in &unknown {
        eprintln!("  bench has no baseline:  {name}");
    }
    if !missing.is_empty() || !unknown.is_empty() {
        eprintln!(
            "FAIL: bench suites and {} disagree; regenerate the baseline",
            baseline_path.display()
        );
        std::process::exit(1);
    }
    println!("bench-check: baseline keys match the bench suites");
}

fn run_durability(args: &Args) {
    let report = durability::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E18: publish-path cost of certificates + WAL (bare vs durable)",
            &durability::table(&report)
        )
    );
    save(&args.out_dir, "durability", to_json(&report));
    let flagship = durability::flagship_overhead(&report).expect("10% density rows");
    println!(
        "flagship: {}x{} d={:.2} durability overhead {:+.2}%",
        flagship.side, flagship.side, flagship.density, flagship.overhead_pct
    );
    // The acceptance bar applies to the full shape (256² / 10% clustered).
    if args.settings.side >= 100 && flagship.overhead_pct > 10.0 {
        eprintln!(
            "FAIL: durability overhead {:+.2}% exceeds the 10% acceptance bar",
            flagship.overhead_pct
        );
        std::process::exit(1);
    }
}

fn run_durability_smoke(args: &Args) {
    let report = durability::smoke(args.settings.seed);
    println!(
        "durability smoke: {} epochs replayed, {}/{} crash images recovered to verified prefixes",
        report.epochs, report.cuts_recovered, report.cuts_tested
    );
    assert!(
        report.cuts_recovered >= 1,
        "no crash image recovered: {report:?}"
    );
    println!("durability smoke: crash/recover replay OK");
}

fn run_serve_smoke(args: &Args) {
    let report = serve_load::smoke(std::time::Duration::from_secs(2), args.settings.seed);
    println!(
        "serve smoke: {} TCP requests in {} ms, {} epochs published",
        report.served, report.duration_ms, report.epochs_published
    );
    assert!(report.served > 0, "smoke run served zero requests");
    println!("serve smoke: clean shutdown OK");
}

fn run_fleet(args: &Args) {
    println!(
        "E19: reactor + fleet at connection scale ({} mode)",
        if args.settings.side < 100 {
            "quick"
        } else {
            "full"
        }
    );
    let report = fleet::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E19: fleet load sweep (connections x tenants x depth)",
            &fleet::table(&report.sweep)
        )
    );
    println!(
        "{}",
        experiments::render_section(
            "E19: blocking vs reactor serve transports",
            &fleet::table(&report.comparison)
        )
    );
    println!(
        "{}",
        experiments::render_section(
            "E19: pipelined connection sustain",
            &fleet::sustain_table(&report.sustain)
        )
    );
    println!("reactor/blocking speedup: {:.2}x", report.speedup_at_1k);
    save(&args.out_dir, "fleet", to_json(&report));
    let quick = args.settings.side < 100;
    let mismatches: u64 = report.sweep.iter().map(|r| r.mismatches).sum::<u64>()
        + report.comparison.iter().map(|r| r.mismatches).sum::<u64>()
        + report.sustain.mismatches;
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} replies differed from the in-process oracle");
        std::process::exit(1);
    }
    if !quick {
        if report.sustain.connections < 10_000
            || report.sustain.conns_served < report.sustain.connections
            || report.sustain.conns_lost > 0
        {
            eprintln!(
                "FAIL: sustain bar not met: {}/{} connections served, {} lost",
                report.sustain.conns_served, report.sustain.connections, report.sustain.conns_lost
            );
            std::process::exit(1);
        }
        if report.speedup_at_1k < 2.0 {
            eprintln!(
                "FAIL: reactor speedup {:.2}x is below the 2x acceptance bar",
                report.speedup_at_1k
            );
            std::process::exit(1);
        }
    }
}

fn run_fleet_smoke(args: &Args) {
    let report = fleet::smoke(args.settings.seed);
    println!(
        "fleet smoke: {} conns x {} tenants, {} verified replies ({} mismatches), {} served / {} lost",
        report.connections,
        report.tenants,
        report.verified,
        report.mismatches,
        report.conns_served,
        report.conns_lost
    );
    println!(
        "fleet smoke: blocking {:.0} req/s vs reactor {:.0} req/s ({:.2}x)",
        report.blocking_throughput, report.reactor_throughput, report.speedup
    );
    assert!(report.connections >= 512, "smoke ran too few connections");
    assert!(report.tenants >= 4, "smoke ran too few tenants");
    assert_eq!(
        report.mismatches, 0,
        "replies differed from the in-process oracle"
    );
    assert_eq!(
        report.conns_served, report.connections,
        "some connections never completed a verified reply"
    );
    assert_eq!(report.conns_lost, 0, "connections were lost mid-run");
    assert!(
        report.speedup >= 2.0,
        "reactor speedup {:.2}x is below the 2x bar",
        report.speedup
    );
    println!("fleet smoke: multi-tenant pipelined serving OK");
}

fn run_disjoint(args: &Args) {
    let report = disjoint::run(&args.settings);
    println!(
        "{}",
        experiments::render_section(
            "E21: k-disjoint serving, all-to-all oracle-verified over TCP",
            &disjoint::table(&report)
        )
    );
    println!(
        "{}",
        experiments::render_section(
            "E21: virtual-channel deadlock prover (CDG acyclicity, all pairs)",
            &disjoint::deadlock_table(&report)
        )
    );
    save(&args.out_dir, "disjoint", to_json(&report));
    if report.total_mismatches > 0 {
        eprintln!(
            "FAIL: {} replies differed from the cold oracle",
            report.total_mismatches
        );
        std::process::exit(1);
    }
    if let Some(stuck) = report.deadlock.iter().find(|d| !d.free) {
        eprintln!(
            "FAIL: CDG has {} back edges on {}",
            stuck.back_edges, stuck.scenario
        );
        std::process::exit(1);
    }
    println!("disjoint: 0 oracle mismatches, every scenario CDG-acyclic");
}

fn run_disjoint_smoke(args: &Args) {
    let report = disjoint::smoke(args.settings.seed);
    println!(
        "disjoint smoke: {} all-pairs k=2 queries over the reactor, {} delivered, {} mismatches",
        report.queries, report.delivered, report.mismatches
    );
    println!(
        "disjoint smoke: CDG {} back edges over {} vcs (max {} labels/link)",
        report.back_edges, report.vcs, report.max_link_vcs
    );
    println!("disjoint smoke: k-disjoint serving + deadlock model OK");
}

fn run_example_sec3() {
    use ocp_core::prelude::*;
    let fx = ocp_workloads::fixtures::sec3_example();
    let map = FaultMap::new(fx.topology, fx.faults.iter().copied());
    let out = run_pipeline(&map, &PipelineConfig::default());
    println!("\n== Section 3 worked example ==\n");
    println!("{}", fx.description);
    let render = |title: &str, s: String| println!("{title}:\n{s}");
    render(
        "faults (#)",
        ocp_mesh::render(&out.safety, |c, _| if map.is_faulty(c) { '#' } else { '.' }),
    );
    render(
        "unsafe after phase 1 (u)",
        ocp_mesh::render(&out.safety, |c, s| match s {
            SafetyState::Unsafe if map.is_faulty(c) => '#',
            SafetyState::Unsafe => 'u',
            SafetyState::Safe => '.',
        }),
    );
    render(
        "disabled after phase 2 (d)",
        ocp_mesh::render(&out.activation, |c, a| match a {
            ActivationState::Disabled if map.is_faulty(c) => '#',
            ActivationState::Disabled => 'd',
            ActivationState::Enabled => '.',
        }),
    );
    println!(
        "blocks: {}  regions: {}  rounds: {} + {}",
        out.blocks.len(),
        out.regions.len(),
        out.safety_trace.rounds(),
        out.enablement_trace.rounds()
    );
    ocp_core::verify::verify(&map, &out).expect("invariants");
    println!("all Section 4 invariants verified");
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "fig5a" | "fig5b" | "fig5c" | "fig5d" | "fig5" => run_fig5(&args, &args.command),
        "models" => run_models(&args),
        "routing" => run_routing(&args),
        "verify" => run_verify(&args),
        "maintenance" => run_maintenance(&args),
        "partition" => run_partition(&args),
        "async" => run_async_exp(&args),
        "chaos" => run_chaos_exp(&args),
        "serve" => run_serve(&args),
        "serve-smoke" => run_serve_smoke(&args),
        "scaling" => run_scaling(&args),
        "routeperf" => run_routeperf(&args),
        "routeperf-smoke" => run_routeperf_smoke(&args),
        "rebuild" => run_rebuild(&args),
        "rebuild-smoke" => run_rebuild_smoke(&args),
        "obs" => run_obs(&args),
        "obs-smoke" => run_obs_smoke(&args),
        "durability" => run_durability(&args),
        "durability-smoke" => run_durability_smoke(&args),
        "fleet" => run_fleet(&args),
        "fleet-smoke" => run_fleet_smoke(&args),
        "disjoint" => run_disjoint(&args),
        "disjoint-smoke" => run_disjoint_smoke(&args),
        // Internal: the out-of-process load driver the fleet sustain
        // exhibit re-execs (stdout carries exactly one JSON object).
        "fleet-driver" => {
            let spec = args
                .in_file
                .as_ref()
                .expect("fleet-driver needs --in <spec>");
            println!("{}", fleet::drive_spec_file(spec));
        }
        "bench-check" => run_bench_check(&args),
        "example-sec3" => run_example_sec3(),
        "all" => {
            run_fig5(&args, "fig5");
            run_models(&args);
            run_routing(&args);
            run_maintenance(&args);
            run_partition(&args);
            run_async_exp(&args);
            run_chaos_exp(&args);
            run_serve(&args);
            run_scaling(&args);
            run_routeperf(&args);
            run_rebuild(&args);
            run_obs(&args);
            run_durability(&args);
            run_fleet(&args);
            run_disjoint(&args);
            run_verify(&args);
            run_example_sec3();
        }
        other => {
            eprintln!("unknown command: {other} (try --help)");
            std::process::exit(2);
        }
    }
}
