//! Figure 5 (a)–(d): the paper's simulation study.
//!
//! Setting (Section 5): an `n × n` machine with `n = 100`, `f` faults
//! placed uniformly at random, `0 ≤ f ≤ 100`, averaged over independent
//! trials. Measured quantities:
//!
//! * (a)/(b): "the averages of the maximum numbers of rounds needed to
//!   determine faulty blocks and disabled regions (after the formation of
//!   faulty blocks)";
//! * (c)/(d): "the average percentage of enabled nodes among unsafe but
//!   nonfaulty nodes" in blocks that have any.
//!
//! We run each quantity on both the mesh (with ghost boundary) and the
//! torus; the paper's subfigure pairs are interpreted as that topology
//! split (the OCR'd figure is ambiguous — recorded in DESIGN.md §3).

use super::Settings;
use ocp_analysis::{Series, Table};
use ocp_core::prelude::*;
use ocp_mesh::TopologyKind;
use ocp_workloads::{uniform_faults, SweepConfig};
use serde::Serialize;

/// All series of the Figure 5 reproduction.
#[derive(Clone, Debug, Serialize)]
pub struct Figure5 {
    /// Fig 5(a): rounds to form faulty blocks (mesh).
    pub rounds_fb_mesh: Series,
    /// Fig 5(b): rounds to form disabled regions (mesh).
    pub rounds_dr_mesh: Series,
    /// Fig 5(a)/(b) torus companions.
    pub rounds_fb_torus: Series,
    /// Rounds for disabled regions on the torus.
    pub rounds_dr_torus: Series,
    /// Fig 5(c): enabled / (unsafe ∧ nonfaulty) ratio (mesh).
    pub ratio_mesh: Series,
    /// Fig 5(d): the same ratio on the torus.
    pub ratio_torus: Series,
}

/// Runs the Figure 5 sweep for one topology kind.
fn sweep(kind: TopologyKind, settings: &Settings) -> (Series, Series, Series) {
    let cfg = SweepConfig {
        kind,
        width: settings.side,
        height: settings.side,
        fault_counts: (1..=10)
            .map(|i| (i * settings.side as usize) / 10)
            .collect(),
        trials: settings.trials,
        base_seed: settings.seed,
    };
    let label = match kind {
        TopologyKind::Mesh => "mesh",
        TopologyKind::Torus => "torus",
    };
    let mut rounds_fb = Series::new(format!("rounds to form FBs ({label})"), "faults");
    let mut rounds_dr = Series::new(format!("rounds to form DRs ({label})"), "faults");
    let mut ratio = Series::new(
        format!("enabled/unsafe-nonfaulty ratio ({label})"),
        "faults",
    );
    let topology = cfg.topology();
    for &f in &cfg.fault_counts {
        let mut fb_samples = Vec::new();
        let mut dr_samples = Vec::new();
        let mut ratio_samples = Vec::new();
        for point in cfg.points().into_iter().filter(|p| p.faults == f) {
            let mut rng = cfg.rng(point);
            let faults = uniform_faults(topology, f, &mut rng);
            let map = FaultMap::new(topology, faults);
            let out = run_pipeline(&map, &PipelineConfig::default());
            let stats = ModelStats::collect(&map, &out);
            fb_samples.push(stats.rounds_phase1 as f64);
            dr_samples.push(stats.rounds_phase2 as f64);
            if let Some(r) = stats.enabled_ratio() {
                ratio_samples.push(r * 100.0);
            }
        }
        rounds_fb.push(f as f64, &fb_samples);
        rounds_dr.push(f as f64, &dr_samples);
        ratio.push(f as f64, &ratio_samples);
    }
    (rounds_fb, rounds_dr, ratio)
}

/// Runs the full Figure 5 reproduction.
pub fn run(settings: &Settings) -> Figure5 {
    let (rounds_fb_mesh, rounds_dr_mesh, ratio_mesh) = sweep(TopologyKind::Mesh, settings);
    let (rounds_fb_torus, rounds_dr_torus, ratio_torus) = sweep(TopologyKind::Torus, settings);
    Figure5 {
        rounds_fb_mesh,
        rounds_dr_mesh,
        rounds_fb_torus,
        rounds_dr_torus,
        ratio_mesh,
        ratio_torus,
    }
}

/// Renders one rounds-or-ratio panel as a table.
pub fn panel_table(series: &[&Series]) -> Table {
    let mut headers = vec!["faults".to_string()];
    for s in series {
        headers.push(format!("{} mean", s.label));
        headers.push("sd".to_string());
    }
    let mut table = Table::new(headers);
    if series.is_empty() {
        return table;
    }
    for (i, p) in series[0].points.iter().enumerate() {
        let mut row = vec![format!("{}", p.x)];
        for s in series {
            let q = &s.points[i];
            if q.summary.n == 0 {
                // Undefined at this point (e.g. no block had any unsafe
                // nonfaulty node) — the paper averages only defined cases.
                row.push("-".to_string());
                row.push("-".to_string());
            } else {
                row.push(format!("{:.2}", q.summary.mean));
                row.push(format!("{:.2}", q.summary.std_dev));
            }
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_paper_shape() {
        let fig = run(&Settings::quick());
        // Rounds are small and far below the mesh diameter (paper's main
        // qualitative claim).
        for s in [&fig.rounds_fb_mesh, &fig.rounds_dr_mesh] {
            assert!(s.max_mean().unwrap() < 10.0, "{}: {:?}", s.label, s.means());
        }
        // DR formation needs no more rounds than FB formation on average
        // ("the average number for disabled regions is lower than the
        // number for faulty blocks").
        let fb = fig.rounds_fb_mesh.means();
        let dr = fig.rounds_dr_mesh.means();
        let fb_avg: f64 = fb.iter().sum::<f64>() / fb.len() as f64;
        let dr_avg: f64 = dr.iter().sum::<f64>() / dr.len() as f64;
        assert!(dr_avg <= fb_avg + 0.25, "dr {dr_avg} vs fb {fb_avg}");
        // The ratio stays very high where defined (with few faults many
        // trials have no unsafe-nonfaulty node at all, so the point may be
        // undefined — the paper averages only defined cases).
        let defined: Vec<f64> = fig
            .ratio_mesh
            .points
            .iter()
            .filter(|p| p.summary.n > 0)
            .map(|p| p.summary.mean)
            .collect();
        assert!(!defined.is_empty());
        assert!(defined.iter().all(|&r| r > 60.0), "{defined:?}");
    }

    #[test]
    fn panel_table_dimensions() {
        let fig = run(&Settings::quick());
        let t = panel_table(&[&fig.rounds_fb_mesh, &fig.rounds_fb_torus]);
        assert_eq!(t.headers.len(), 5);
        assert_eq!(t.len(), fig.rounds_fb_mesh.points.len());
    }
}
