//! E8: machine-checking the paper's theorems at scale.

use super::Settings;
use ocp_analysis::Table;
use ocp_core::prelude::*;
use ocp_core::verify::verify;
use ocp_mesh::{Topology, TopologyKind};
use ocp_workloads::{clustered_faults, uniform_faults};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

/// Outcome of the verification campaign.
#[derive(Clone, Debug, Default, Serialize)]
pub struct VerificationReport {
    /// Fault patterns checked.
    pub patterns: usize,
    /// Total disabled regions whose convexity/minimality was verified.
    pub regions_checked: usize,
    /// Total faulty blocks whose rectangularity was verified.
    pub blocks_checked: usize,
    /// Violations found (must be 0 for the reproduction to stand).
    pub violations: usize,
    /// Human-readable violation samples (first few).
    pub samples: Vec<String>,
}

/// Verifies Theorems 1–2, Lemma 1, the Corollary and the distance bounds
/// over randomized uniform and clustered patterns on meshes and tori,
/// under both safety rules.
pub fn run(settings: &Settings) -> VerificationReport {
    let mut report = VerificationReport::default();
    let side = settings.side.min(40);
    let topologies = [
        Topology::new(TopologyKind::Mesh, side, side),
        Topology::new(TopologyKind::Torus, side, side),
    ];
    let rules = [SafetyRule::TwoUnsafeNeighbors, SafetyRule::BothDimensions];
    let fault_counts = [1usize, 5, 15, 30, 60];
    for (ti, &topology) in topologies.iter().enumerate() {
        for (ri, &rule) in rules.iter().enumerate() {
            for (fi, &f) in fault_counts.iter().enumerate() {
                for trial in 0..settings.trials {
                    let seed = settings.seed
                        ^ ((ti as u64) << 40)
                        ^ ((ri as u64) << 32)
                        ^ ((fi as u64) << 16)
                        ^ trial as u64;
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let faults = if trial % 2 == 0 {
                        uniform_faults(topology, f, &mut rng)
                    } else {
                        clustered_faults(topology, f, (f / 8).max(1), &mut rng)
                    };
                    let map = FaultMap::new(topology, faults);
                    let out = run_pipeline(
                        &map,
                        &PipelineConfig {
                            rule,
                            ..PipelineConfig::default()
                        },
                    );
                    report.patterns += 1;
                    report.regions_checked += out.regions.len();
                    report.blocks_checked += out.blocks.len();
                    if let Err(violations) = verify(&map, &out) {
                        report.violations += violations.len();
                        for v in violations.into_iter().take(3) {
                            if report.samples.len() < 10 {
                                report.samples.push(format!(
                                    "{topology:?} {rule:?} f={f} trial={trial}: {v}"
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    report
}

/// Renders the report as a table.
pub fn table(report: &VerificationReport) -> Table {
    let mut t = Table::new(["metric", "value"]);
    t.push_row([
        "fault patterns checked".to_string(),
        report.patterns.to_string(),
    ]);
    t.push_row([
        "faulty blocks checked".to_string(),
        report.blocks_checked.to_string(),
    ]);
    t.push_row([
        "disabled regions checked".to_string(),
        report.regions_checked.to_string(),
    ]);
    t.push_row(["violations".to_string(), report.violations.to_string()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_violations_on_quick_campaign() {
        let report = run(&Settings::quick());
        assert!(report.patterns >= 100);
        assert!(report.regions_checked > 50);
        assert_eq!(report.violations, 0, "samples: {:?}", report.samples);
    }
}
