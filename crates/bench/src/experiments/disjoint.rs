//! E21: k-disjoint route serving, adversarially verified end to end.
//!
//! The tentpole consumer of `route_disjoint`: an **all-to-all open-loop
//! generator** drives the serve stack over real TCP — every enabled
//! `(src, dst)` pair at `k = 2`, plus an adversarial sweep that aims
//! `k` past the min-cut from fault-ring cells — and checks **every
//! reply** against an in-process cold oracle:
//!
//! * delivered path sets must match the oracle **bit for bit** (the flow
//!   decomposition is deterministic, so replays are exact),
//! * every delivered set must be pairwise vertex-disjoint away from the
//!   endpoints and within the API's own length bound,
//! * failures must carry exactly the error the oracle's `route` returns.
//!
//! Arrivals are scheduled (open loop), so reported latency includes
//! queueing delay — no coordinated omission. Each scenario runs over
//! both the blocking and the reactor transport.
//!
//! The same scenarios then pass through the virtual-channel deadlock
//! prover ([`ocp_routing::deadlock`]): the channel-dependency graph over
//! all-pairs production routes must be acyclic under the detour VC
//! model. A single mismatch or a single CDG back edge fails the run.

use super::Settings;
use ocp_analysis::{Percentiles, Table};
use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology};
use ocp_routing::deadlock::{prove_router_all_pairs, prove_router_sampled};
use ocp_routing::{EnabledMap, FaultTolerantRouter};
use ocp_serve::{
    MeshService, PipelinedApiClient, RouteDisjointOutcome, RouteDisjointReply, ServeConfig,
    TcpFront, Transport,
};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workers (connections) per measured cell.
const WORKERS: usize = 4;
/// Open-loop arrival interval per worker: 4 workers x 2 kHz = 8 k/s
/// offered, comfortably under the measured ~10-14 k/s service capacity
/// so the schedule stays feasible and the tail reflects service jitter,
/// not a standing queue.
const ARRIVAL: Duration = Duration::from_micros(500);

/// One scenario of the sweep: a fixed labeled machine.
struct Scenario {
    name: &'static str,
    topology: Topology,
    faults: &'static [(i32, i32)],
}

/// The two acceptance fixtures: the same fault patterns the routing
/// crate's disjoint/deadlock suites pin down.
fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "mesh-12x12",
            topology: Topology::mesh(12, 12),
            faults: &[(5, 4), (6, 5), (9, 9), (3, 9), (2, 2)],
        },
        Scenario {
            name: "torus-10x10",
            topology: Topology::torus(10, 10),
            faults: &[(0, 5), (9, 0), (5, 9), (4, 4), (5, 5)],
        },
    ]
}

/// One measured (scenario, transport) cell.
#[derive(Clone, Debug, Serialize)]
pub struct DisjointRow {
    /// Scenario name (`mesh-12x12`, `torus-10x10`).
    pub scenario: String,
    /// `"blocking"` or `"reactor"`.
    pub transport: String,
    /// Queries issued (all-to-all k=2 plus the adversarial k-sweep).
    pub queries: u64,
    /// Replies that delivered a route set.
    pub delivered: u64,
    /// Replies that failed (verified to match the oracle's error).
    pub failed: u64,
    /// Replies differing from the cold oracle in any field.
    pub mismatches: u64,
    /// Worst stretch over all delivered sets.
    pub max_stretch: f64,
    /// Queries per second over the measurement window.
    pub throughput: f64,
    /// Latency from *scheduled arrival*, microseconds.
    pub latency_us: Percentiles,
}

/// Deadlock-prover verdict for one scenario.
#[derive(Clone, Debug, Serialize)]
pub struct DeadlockRow {
    /// Scenario name.
    pub scenario: String,
    /// Production routes the CDG was built from.
    pub paths: usize,
    /// Distinct (link, vc) channels observed.
    pub channels: usize,
    /// CDG edges.
    pub dependencies: usize,
    /// Dependency edges closing a cycle — 0 proves deadlock freedom.
    pub back_edges: usize,
    /// Label-space size of the VC model (27 mesh / 81 torus).
    pub vcs: u8,
    /// Worst-case distinct labels on any one physical link.
    pub max_link_vcs: usize,
    /// `back_edges == 0`.
    pub free: bool,
}

/// The full E21 report, serialized to `results/disjoint.json`.
#[derive(Clone, Debug, Serialize)]
pub struct DisjointReport {
    /// Per-(scenario, transport) load + verification rows.
    pub rows: Vec<DisjointRow>,
    /// Per-scenario CDG acyclicity results.
    pub deadlock: Vec<DeadlockRow>,
    /// Sum of mismatches over all rows (acceptance bar: 0).
    pub total_mismatches: u64,
}

/// Builds the in-process cold oracle for a scenario — the exact
/// construction `ocp-serve` performs per epoch, minus the serving layer.
fn oracle_router(topology: Topology, faults: &[(i32, i32)]) -> FaultTolerantRouter {
    let map = FaultMap::new(topology, faults.iter().map(|&(x, y)| Coord::new(x, y)));
    let out = run_pipeline(&map, &PipelineConfig::default());
    let enabled = EnabledMap::from_outcome(&out);
    let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();
    FaultTolerantRouter::new(enabled, &regions)
}

/// The query list: exhaustive all-to-all at `k = 2`, then the adversarial
/// sweep — from every fault-ring cell to the four extreme corners with
/// `k` in `{1, 3, 4}`, deliberately crossing the min-cut so the partial
/// (fewer-than-k) and `k = 1` byte-identity contracts are exercised over
/// the wire too.
fn query_list(router: &FaultTolerantRouter, seed: u64) -> Vec<(Coord, Coord, usize)> {
    let cells = router.enabled().enabled_coords();
    let mut queries = Vec::new();
    for &src in &cells {
        for &dst in &cells {
            if src != dst {
                queries.push((src, dst, 2));
            }
        }
    }
    let corners: Vec<Coord> = {
        let t = router.topology();
        let (w, h) = (t.width() as i32 - 1, t.height() as i32 - 1);
        [(0, 0), (w, 0), (0, h), (w, h)]
            .into_iter()
            .map(|(x, y)| Coord::new(x, y))
            .filter(|&c| router.enabled().is_enabled(c))
            .collect()
    };
    for ring in router.rings() {
        for &cell in ring.cells() {
            for &corner in &corners {
                if cell == corner {
                    continue;
                }
                for k in [1usize, 3, 4] {
                    queries.push((cell, corner, k));
                }
            }
        }
    }
    queries.shuffle(&mut SmallRng::seed_from_u64(seed));
    queries
}

/// Checks one wire reply against the oracle. Returns `Err` with a
/// description on any divergence; `Ok(true)` when a set was delivered.
fn verify_reply(
    router: &FaultTolerantRouter,
    src: Coord,
    dst: Coord,
    k: usize,
    reply: &RouteDisjointReply,
) -> Result<Option<f64>, String> {
    if reply.epoch != 0 {
        return Err(format!(
            "reply tagged epoch {} on a static machine",
            reply.epoch
        ));
    }
    match (router.route_disjoint(src, dst, k), &reply.outcome) {
        (Ok(routes), RouteDisjointOutcome::Delivered { paths, stretch }) => {
            let want: Vec<Vec<Coord>> = routes.paths.iter().map(|p| p.hops.clone()).collect();
            if &want != paths {
                return Err(format!("{src}->{dst} k={k}: path set differs from oracle"));
            }
            if routes.stretch != *stretch {
                return Err(format!(
                    "{src}->{dst} k={k}: stretch {} vs oracle {}",
                    stretch, routes.stretch
                ));
            }
            if !routes.pairwise_disjoint() {
                return Err(format!("{src}->{dst} k={k}: paths share an interior cell"));
            }
            let bound = router.disjoint_len_bound(src, dst, k);
            if routes.paths.iter().any(|p| p.len() > bound) {
                return Err(format!(
                    "{src}->{dst} k={k}: a path exceeds the length bound"
                ));
            }
            if k == 1 {
                let single = router
                    .route(src, dst)
                    .map_err(|e| format!("{src}->{dst}: oracle route failed: {e}"))?;
                if paths[0] != single.hops {
                    return Err(format!("{src}->{dst} k=1: not the production route"));
                }
            }
            Ok(Some(*stretch))
        }
        (Err(expected), RouteDisjointOutcome::Failed { error }) => {
            if &expected != error {
                return Err(format!(
                    "{src}->{dst} k={k}: error {error:?} vs oracle {expected:?}"
                ));
            }
            Ok(None)
        }
        (oracle_says, served) => Err(format!(
            "{src}->{dst} k={k}: oracle {oracle_says:?} vs served {served:?}"
        )),
    }
}

/// Per-worker tallies, merged into a [`DisjointRow`].
struct WorkerTally {
    samples: Vec<f64>,
    delivered: u64,
    failed: u64,
    mismatches: u64,
    max_stretch: f64,
}

/// Drives one (scenario, transport) cell: open-loop all-to-all over TCP,
/// every reply oracle-verified in the worker that received it.
fn run_cell(
    scenario: &Scenario,
    transport: Transport,
    oracle: &Arc<FaultTolerantRouter>,
    seed: u64,
) -> DisjointRow {
    let faults: Vec<Coord> = scenario
        .faults
        .iter()
        .map(|&(x, y)| Coord::new(x, y))
        .collect();
    let service = MeshService::start(scenario.topology, faults, ServeConfig::default())
        .expect("service starts");
    let front = TcpFront::start(&service, "127.0.0.1:0", transport).expect("transport binds");
    let addr = front.local_addr();

    let queries = query_list(oracle, seed);
    let total = queries.len() as u64;
    let reported = Arc::new(AtomicU64::new(0));
    let begun = Instant::now();
    let workers: Vec<_> = queries
        .chunks(queries.len().div_ceil(WORKERS))
        .map(|chunk| {
            let chunk = chunk.to_vec();
            let oracle = oracle.clone();
            let reported = reported.clone();
            std::thread::spawn(move || {
                // One wire client per worker, matching the transport.
                let mut blocking = None;
                let mut pipelined = None;
                match transport {
                    Transport::Blocking => {
                        blocking = Some(ocp_serve::Client::connect(addr).expect("client connects"));
                    }
                    Transport::Reactor => {
                        pipelined =
                            Some(PipelinedApiClient::connect(addr).expect("client connects"));
                    }
                }
                let mut tally = WorkerTally {
                    samples: Vec::with_capacity(chunk.len()),
                    delivered: 0,
                    failed: 0,
                    mismatches: 0,
                    max_stretch: 0.0,
                };
                let mut next_arrival = Instant::now();
                for (src, dst, k) in chunk {
                    // Open loop: the query arrives at the scheduled
                    // instant whether or not the pipe is ready; latency is
                    // measured from that instant (no coordinated omission).
                    let now = Instant::now();
                    if now < next_arrival {
                        std::thread::sleep(next_arrival - now);
                    }
                    let arrival = next_arrival;
                    next_arrival += ARRIVAL;
                    let reply = match (&mut blocking, &mut pipelined) {
                        (Some(c), _) => c.route_disjoint(src, dst, k).expect("blocking rpc"),
                        (_, Some(c)) => c.route_disjoint(src, dst, k).expect("reactor rpc"),
                        _ => unreachable!(),
                    };
                    tally
                        .samples
                        .push(arrival.elapsed().as_nanos() as f64 / 1_000.0);
                    match verify_reply(&oracle, src, dst, k, &reply) {
                        Ok(Some(stretch)) => {
                            tally.delivered += 1;
                            tally.max_stretch = tally.max_stretch.max(stretch);
                        }
                        Ok(None) => tally.failed += 1,
                        Err(message) => {
                            tally.mismatches += 1;
                            if reported.fetch_add(1, Ordering::Relaxed) < 5 {
                                eprintln!("  MISMATCH[{}]: {message}", transport_name(transport));
                            }
                        }
                    }
                }
                tally
            })
        })
        .collect();

    let mut samples = Vec::new();
    let (mut delivered, mut failed, mut mismatches) = (0u64, 0u64, 0u64);
    let mut max_stretch = 0.0f64;
    for w in workers {
        let tally = w.join().expect("load worker panicked");
        samples.extend(tally.samples);
        delivered += tally.delivered;
        failed += tally.failed;
        mismatches += tally.mismatches;
        max_stretch = max_stretch.max(tally.max_stretch);
    }
    let elapsed = begun.elapsed();
    front.shutdown();
    service.quiesce(Duration::from_secs(10));
    service.shutdown();

    DisjointRow {
        scenario: scenario.name.to_string(),
        transport: transport_name(transport).to_string(),
        queries: total,
        delivered,
        failed,
        mismatches,
        max_stretch,
        throughput: total as f64 / elapsed.as_secs_f64(),
        latency_us: Percentiles::of(&samples),
    }
}

fn transport_name(transport: Transport) -> &'static str {
    match transport {
        Transport::Blocking => "blocking",
        Transport::Reactor => "reactor",
    }
}

fn deadlock_row(name: &str, proof: ocp_routing::DeadlockProof) -> DeadlockRow {
    DeadlockRow {
        scenario: name.to_string(),
        paths: proof.paths,
        channels: proof.channels,
        dependencies: proof.dependencies,
        back_edges: proof.back_edges,
        vcs: proof.vcs,
        max_link_vcs: proof.max_link_vcs,
        free: proof.is_free(),
    }
}

/// Runs the full E21 sweep: both scenarios x both transports, then the
/// deadlock prover over each scenario's all-pairs production routes.
pub fn run(settings: &Settings) -> DisjointReport {
    let mut rows = Vec::new();
    let mut deadlock = Vec::new();
    for scenario in scenarios() {
        let oracle = Arc::new(oracle_router(scenario.topology, scenario.faults));
        for transport in [Transport::Blocking, Transport::Reactor] {
            rows.push(run_cell(&scenario, transport, &oracle, settings.seed));
        }
        deadlock.push(deadlock_row(scenario.name, prove_router_all_pairs(&oracle)));
    }
    let total_mismatches = rows.iter().map(|r| r.mismatches).sum();
    DisjointReport {
        rows,
        deadlock,
        total_mismatches,
    }
}

/// Renders the load/verification sweep as a table.
pub fn table(report: &DisjointReport) -> Table {
    let mut t = Table::new([
        "scenario",
        "transport",
        "queries",
        "delivered",
        "failed",
        "mismatch",
        "max stretch",
        "req/s",
        "p50 us",
        "p99 us",
    ]);
    for r in &report.rows {
        t.push_row([
            r.scenario.clone(),
            r.transport.clone(),
            r.queries.to_string(),
            r.delivered.to_string(),
            r.failed.to_string(),
            r.mismatches.to_string(),
            format!("{:.3}", r.max_stretch),
            format!("{:.0}", r.throughput),
            format!("{:.1}", r.latency_us.p50),
            format!("{:.1}", r.latency_us.p99),
        ]);
    }
    t
}

/// Renders the deadlock-prover verdicts as a table.
pub fn deadlock_table(report: &DisjointReport) -> Table {
    let mut t = Table::new([
        "scenario",
        "paths",
        "channels",
        "deps",
        "back edges",
        "vcs",
        "max link vcs",
        "free",
    ]);
    for r in &report.deadlock {
        t.push_row([
            r.scenario.clone(),
            r.paths.to_string(),
            r.channels.to_string(),
            r.dependencies.to_string(),
            r.back_edges.to_string(),
            r.vcs.to_string(),
            r.max_link_vcs.to_string(),
            r.free.to_string(),
        ]);
    }
    t
}

/// The CI smoke gate: one small mesh over the reactor transport, all
/// pairs at `k = 2`, every reply oracle-verified, plus a sampled CDG
/// acyclicity check — a few seconds end to end.
#[derive(Clone, Debug, Serialize)]
pub struct SmokeReport {
    /// Queries issued (all-to-all k=2).
    pub queries: u64,
    /// Delivered route sets.
    pub delivered: u64,
    /// Oracle mismatches (bar: 0).
    pub mismatches: u64,
    /// CDG back edges over sampled all-pairs routes (bar: 0).
    pub back_edges: usize,
    /// VC label-space size of the model.
    pub vcs: u8,
    /// Worst-case distinct labels on one physical link.
    pub max_link_vcs: usize,
}

/// Runs the smoke gate. Panics on any oracle mismatch or CDG back edge.
pub fn smoke(seed: u64) -> SmokeReport {
    let scenario = Scenario {
        name: "smoke-mesh-10x10",
        topology: Topology::mesh(10, 10),
        faults: &[(3, 3), (6, 6), (6, 7)],
    };
    let oracle = Arc::new(oracle_router(scenario.topology, scenario.faults));
    let row = run_cell(&scenario, Transport::Reactor, &oracle, seed);
    let proof = prove_router_sampled(&oracle, 2_000);
    assert_eq!(row.mismatches, 0, "wire replies diverged from the oracle");
    assert!(
        proof.is_free(),
        "CDG has {} back edges on the smoke snapshot",
        proof.back_edges
    );
    SmokeReport {
        queries: row.queries,
        delivered: row.delivered,
        mismatches: row.mismatches,
        back_edges: proof.back_edges,
        vcs: proof.vcs,
        max_link_vcs: proof.max_link_vcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_verifies_all_pairs_and_cdg() {
        let report = smoke(9);
        assert!(report.queries > 1_000, "all-to-all ran too few queries");
        assert!(report.delivered > 0);
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.back_edges, 0);
        assert_eq!(report.vcs, 27u8);
        assert!((1..=12).contains(&report.max_link_vcs));
    }
}
