//! E11: the open problem's optimality gap.
//!
//! The paper leaves open (conjectured NP-complete) the *minimum* cover of
//! a faulty block's faults by orthogonal convex polygons. Our exact solver
//! (`ocp_core::partition`) handles blocks with up to ~10 faults, which at
//! the paper's densities is nearly all of them — so we can measure how far
//! the distributed disabled-region construction is from optimal.

use super::Settings;
use ocp_analysis::Table;
use ocp_core::partition::{optimality_gap, EXACT_FAULT_LIMIT};
use ocp_core::prelude::*;
use ocp_mesh::{Topology, TopologyKind};
use ocp_workloads::{clustered_faults, uniform_faults};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

/// Aggregate gap statistics for one workload family.
#[derive(Clone, Debug, Default, Serialize)]
pub struct GapRow {
    /// Workload label.
    pub workload: String,
    /// Faulty blocks measured.
    pub blocks: usize,
    /// Blocks skipped (more faults than the exact solver's limit).
    pub skipped: usize,
    /// Total nonfaulty nodes in disabled regions across measured blocks.
    pub dr_cost: usize,
    /// Total nonfaulty nodes in the optimal partitions.
    pub optimal_cost: usize,
    /// Blocks where the distributed construction was strictly suboptimal.
    pub suboptimal_blocks: usize,
}

/// Runs the gap measurement over uniform and clustered patterns.
pub fn run(settings: &Settings) -> Vec<GapRow> {
    let side = settings.side.min(48);
    let topology = Topology::new(TopologyKind::Mesh, side, side);
    let mut rows = Vec::new();
    for (label, clustered) in [("uniform", false), ("clustered", true)] {
        let mut row = GapRow {
            workload: label.to_string(),
            ..GapRow::default()
        };
        for trial in 0..settings.trials * 4 {
            let mut rng = SmallRng::seed_from_u64(settings.seed ^ 0xE11 ^ trial as u64);
            let f = (side as usize) / 2;
            let faults = if clustered {
                clustered_faults(topology, f, (f / 6).max(1), &mut rng)
            } else {
                uniform_faults(topology, f, &mut rng)
            };
            let map = FaultMap::new(topology, faults);
            let out = run_pipeline(&map, &PipelineConfig::default());
            let grouped = out.regions_per_block();
            for (block, regions) in out.blocks.iter().zip(&grouped) {
                match optimality_gap(block, regions, EXACT_FAULT_LIMIT) {
                    Some(gap) => {
                        row.blocks += 1;
                        row.dr_cost += gap.dr_cost;
                        row.optimal_cost += gap.optimal_cost;
                        if gap.excess() > 0 {
                            row.suboptimal_blocks += 1;
                        }
                    }
                    None => row.skipped += 1,
                }
            }
        }
        rows.push(row);
    }
    rows
}

/// Renders the gap rows as a table.
pub fn table(rows: &[GapRow]) -> Table {
    let mut t = Table::new([
        "workload",
        "blocks",
        "skipped",
        "DR cost",
        "optimal",
        "suboptimal blocks",
    ]);
    for r in rows {
        t.push_row([
            r.workload.clone(),
            r.blocks.to_string(),
            r.skipped.to_string(),
            r.dr_cost.to_string(),
            r.optimal_cost.to_string(),
            r.suboptimal_blocks.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_never_exceeds_dr_cost() {
        let rows = run(&Settings::quick());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.blocks > 0, "{}: no blocks measured", r.workload);
            assert!(
                r.optimal_cost <= r.dr_cost,
                "{}: optimal {} > DR {}",
                r.workload,
                r.optimal_cost,
                r.dr_cost
            );
        }
    }
}
