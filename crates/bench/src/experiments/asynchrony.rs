//! E12: asynchrony robustness.
//!
//! The paper assumes lock-step synchrony "to simplify our discussion".
//! This experiment executes the same protocols under an event-driven model
//! with random per-message delays and confirms the fixpoint is identical —
//! the monotone rules are confluent — while measuring the message-count
//! and virtual-time cost of asynchrony.

use super::Settings;
use ocp_analysis::Table;
use ocp_core::labeling::enablement::EnablementProtocol;
use ocp_core::labeling::safety::{SafetyProtocol, SafetyRule};
use ocp_core::prelude::*;
use ocp_distsim::{try_run_async, Executor};
use ocp_mesh::{Topology, TopologyKind};
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

/// One row: synchronous vs asynchronous execution of both phases.
#[derive(Clone, Debug, Serialize)]
pub struct AsyncRow {
    /// Maximum per-message delay of the async run.
    pub max_delay: u64,
    /// Trials in which the async fixpoint matched the synchronous one
    /// (must equal `trials`).
    pub matching: u32,
    /// Trials run.
    pub trials: u32,
    /// Mean messages delivered by the async phase-1 run.
    pub async_messages: f64,
    /// Mean messages of the synchronous phase-1 run.
    pub sync_messages: f64,
    /// Mean async virtual completion time of phase 1.
    pub virtual_time: f64,
}

/// Runs the comparison across delay bounds.
pub fn run(settings: &Settings) -> Vec<AsyncRow> {
    let side = settings.side.min(40);
    let topology = Topology::new(TopologyKind::Mesh, side, side);
    let f = (side as usize) / 2;
    let mut rows = Vec::new();
    for max_delay in [1u64, 4, 16] {
        let mut row = AsyncRow {
            max_delay,
            matching: 0,
            trials: settings.trials,
            async_messages: 0.0,
            sync_messages: 0.0,
            virtual_time: 0.0,
        };
        for trial in 0..settings.trials {
            let mut rng =
                SmallRng::seed_from_u64(settings.seed ^ 0xE12 ^ (max_delay << 32) ^ trial as u64);
            let faults = uniform_faults(topology, f, &mut rng);
            let map = FaultMap::new(topology, faults);

            // Synchronous reference.
            let sync = run_pipeline(
                &map,
                &PipelineConfig {
                    engine: ocp_core::LabelEngine::Lockstep(Executor::Sequential),
                    ..PipelineConfig::default()
                },
            );

            // Async phase 1.
            let p1 = SafetyProtocol::new(&map, SafetyRule::BothDimensions);
            let a1 = try_run_async(&p1, settings.seed ^ trial as u64, max_delay, 50_000_000)
                .unwrap_or_else(|e| panic!("{}", e.with_label("E12 async phase 1")));
            // Async phase 2 on the async phase-1 fixpoint.
            let p2 = EnablementProtocol::new(&map, &a1.states);
            let a2 = try_run_async(&p2, settings.seed ^ trial as u64 ^ 1, max_delay, 50_000_000)
                .unwrap_or_else(|e| panic!("{}", e.with_label("E12 async phase 2")));

            let matches = a1.states == sync.safety && a2.states == sync.activation;
            if matches {
                row.matching += 1;
            }
            row.async_messages += a1.messages_delivered as f64 / settings.trials as f64;
            row.sync_messages += sync.safety_trace.messages_sent as f64 / settings.trials as f64;
            row.virtual_time += a1.virtual_time as f64 / settings.trials as f64;
        }
        rows.push(row);
    }
    rows
}

/// Renders the comparison as a table.
pub fn table(rows: &[AsyncRow]) -> Table {
    let mut t = Table::new([
        "max delay",
        "fixpoint matches",
        "async msgs (p1)",
        "sync msgs (p1)",
        "virtual time",
    ]);
    for r in rows {
        t.push_row([
            r.max_delay.to_string(),
            format!("{}/{}", r.matching, r.trials),
            format!("{:.0}", r.async_messages),
            format!("{:.0}", r.sync_messages),
            format!("{:.0}", r.virtual_time),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_always_reaches_sync_fixpoint() {
        let rows = run(&Settings::quick());
        for r in &rows {
            assert_eq!(
                r.matching, r.trials,
                "delay {}: async diverged from synchronous fixpoint",
                r.max_delay
            );
        }
    }
}
