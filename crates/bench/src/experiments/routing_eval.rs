//! E10: the routing payoff of the paper's fault model.
//!
//! On the same fault patterns, compare routing under the classical
//! faulty-block model (all unsafe nodes disabled) and under the paper's
//! disabled-region model: enabled node counts, delivery rate, path stretch,
//! CDG acyclicity, and flit-level wormhole latency.

use super::Settings;
use ocp_analysis::Table;
use ocp_core::prelude::*;
use ocp_mesh::Topology;
use ocp_routing::cdg::{assign_detour_vc, assign_single_vc, DependencyGraph};
use ocp_routing::wormhole::{simulate, PacketSpec, WormholeConfig};
use ocp_routing::{compare_models, EnabledMap, FaultTolerantRouter, Path};
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

/// One row of the routing evaluation.
#[derive(Clone, Debug, Serialize)]
pub struct RoutingRow {
    /// Number of injected faults.
    pub faults: usize,
    /// Enabled nodes: faulty-block model.
    pub fb_enabled: f64,
    /// Enabled nodes: disabled-region model.
    pub dr_enabled: f64,
    /// Delivery rate (delivered / attempted): FB model.
    pub fb_delivery: f64,
    /// Delivery rate: DR model.
    pub dr_delivery: f64,
    /// Mean stretch of delivered routes: FB model.
    pub fb_stretch: f64,
    /// Mean stretch: DR model.
    pub dr_stretch: f64,
    /// Fraction of sampled pairs with a *minimal* enabled path: FB model.
    pub fb_minimal: f64,
    /// Minimal routability: DR model.
    pub dr_minimal: f64,
    /// Back edges in the empirical CDG of DR-model routes on one VC.
    pub cdg_cycles_1vc: usize,
    /// Back edges with the detour-VC discipline.
    pub cdg_cycles_2vc: usize,
    /// Mean wormhole latency (cycles) under the DR model.
    pub wormhole_latency: f64,
    /// Whether the wormhole run deadlocked (2 VC detour discipline).
    pub wormhole_deadlocked: bool,
}

/// Runs the routing evaluation on a 32×32 mesh across fault counts.
pub fn run(settings: &Settings) -> Vec<RoutingRow> {
    let side = 32u32;
    let topology = Topology::mesh(side, side);
    let fault_counts = [4usize, 8, 16, 24, 32];
    let mut rows = Vec::new();
    for (fi, &f) in fault_counts.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(settings.seed ^ (0xE10 + fi as u64));
        let faults = uniform_faults(topology, f, &mut rng);
        let map = FaultMap::new(topology, faults);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let cmp = compare_models(&out, 200, &mut rng);

        // Collect DR-model routes for CDG and wormhole analysis.
        let enabled = EnabledMap::from_outcome(&out);
        let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();
        let router = FaultTolerantRouter::new(enabled.clone(), &regions);
        let nodes = enabled.enabled_coords();
        let mut paths: Vec<Path> = Vec::new();
        for _ in 0..150 {
            let pick: Vec<_> = nodes.choose_multiple(&mut rng, 2).collect();
            if let Ok(p) = router.route(*pick[0], *pick[1]) {
                if !p.is_empty() {
                    paths.push(p);
                }
            }
        }
        let g1 = DependencyGraph::from_paths(paths.iter(), &assign_single_vc);
        let g2 = DependencyGraph::from_paths(paths.iter(), &assign_detour_vc);

        // Wormhole: inject the same routes over time with the detour-VC
        // discipline.
        let specs: Vec<PacketSpec> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                PacketSpec::with_assignment(p.clone(), (i as u64 / 4) * 2, &assign_detour_vc)
            })
            .collect();
        let stats = simulate(
            &specs,
            &WormholeConfig {
                vcs: 2,
                ..WormholeConfig::default()
            },
        );

        // Minimal routability under each model (the paper's progressive/
        // minimal-routing motivation).
        let fb_enabled_map = EnabledMap::from_safety(&out);
        let fb_minimal = ocp_routing::minimal_routability(&fb_enabled_map, 300, &mut rng);
        let dr_minimal = ocp_routing::minimal_routability(&enabled, 300, &mut rng);

        let rate = |m: &ocp_routing::metrics::ModelMetrics| {
            if m.pairs == 0 {
                1.0
            } else {
                m.delivered as f64 / m.pairs as f64
            }
        };
        rows.push(RoutingRow {
            faults: f,
            fb_enabled: cmp.faulty_block.enabled_nodes as f64,
            dr_enabled: cmp.disabled_region.enabled_nodes as f64,
            fb_delivery: rate(&cmp.faulty_block),
            dr_delivery: rate(&cmp.disabled_region),
            fb_stretch: cmp.faulty_block.avg_stretch,
            dr_stretch: cmp.disabled_region.avg_stretch,
            fb_minimal,
            dr_minimal,
            cdg_cycles_1vc: g1.count_back_edges(),
            cdg_cycles_2vc: g2.count_back_edges(),
            wormhole_latency: stats.avg_latency,
            wormhole_deadlocked: stats.deadlocked,
        });
    }
    rows
}

/// Renders the evaluation as a table.
pub fn table(rows: &[RoutingRow]) -> Table {
    let mut t = Table::new([
        "faults",
        "FB enabled",
        "DR enabled",
        "FB deliv",
        "DR deliv",
        "FB stretch",
        "DR stretch",
        "FB minimal",
        "DR minimal",
        "CDG 1vc",
        "CDG 2vc",
        "WH latency",
    ]);
    for r in rows {
        t.push_row([
            format!("{}", r.faults),
            format!("{:.0}", r.fb_enabled),
            format!("{:.0}", r.dr_enabled),
            format!("{:.2}", r.fb_delivery),
            format!("{:.2}", r.dr_delivery),
            format!("{:.3}", r.fb_stretch),
            format!("{:.3}", r.dr_stretch),
            format!("{:.3}", r.fb_minimal),
            format!("{:.3}", r.dr_minimal),
            format!("{}", r.cdg_cycles_1vc),
            format!("{}", r.cdg_cycles_2vc),
            format!("{:.1}", r.wormhole_latency),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dr_model_never_enables_fewer_nodes() {
        let rows = run(&Settings::quick());
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.dr_enabled >= r.fb_enabled,
                "f={}: DR {} < FB {}",
                r.faults,
                r.dr_enabled,
                r.fb_enabled
            );
            assert!(
                r.dr_delivery > 0.5,
                "f={}: delivery {}",
                r.faults,
                r.dr_delivery
            );
            if r.dr_stretch > 0.0 {
                assert!(r.dr_stretch >= 1.0);
            }
            assert!(!r.wormhole_deadlocked, "f={} deadlocked", r.faults);
        }
    }
}
