//! Incremental maintenance experiment: warm-started relabeling after one
//! additional fault vs relabeling from scratch ("faulty blocks can be
//! easily established and maintained", Section 1).

use super::Settings;
use ocp_analysis::{Series, Table};
use ocp_core::maintenance::relabel_after_fault;
use ocp_core::prelude::*;
use ocp_mesh::{Topology, TopologyKind};
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

/// Mean rounds for cold vs warm phase-1 runs per fault count.
#[derive(Clone, Debug, Serialize)]
pub struct MaintenanceResult {
    /// Rounds of a from-scratch phase 1 after the new fault.
    pub cold_rounds: Series,
    /// Rounds of the warm-started phase 1.
    pub warm_rounds: Series,
}

/// Runs the maintenance comparison on a mesh.
pub fn run(settings: &Settings) -> MaintenanceResult {
    let topology = Topology::new(TopologyKind::Mesh, settings.side, settings.side);
    let fault_counts = [10usize, 30, 50, 70, 90];
    let cfg = PipelineConfig::default();
    let mut cold_rounds = Series::new("cold relabel rounds", "faults");
    let mut warm_rounds = Series::new("warm relabel rounds", "faults");
    for (fi, &f) in fault_counts.iter().enumerate() {
        let mut cold = Vec::new();
        let mut warm = Vec::new();
        for trial in 0..settings.trials {
            let seed = settings.seed ^ 0xAA17 ^ ((fi as u64) << 24) ^ trial as u64;
            let mut rng = SmallRng::seed_from_u64(seed);
            let faults = uniform_faults(topology, f, &mut rng);
            let map = FaultMap::new(topology, faults);
            let before = run_pipeline(&map, &cfg);
            // New fault at a random healthy node.
            let healthy: Vec<_> = topology.coords().filter(|&c| !map.is_faulty(c)).collect();
            let &new_fault = healthy.choose(&mut rng).expect("healthy nodes exist");

            let (updated, warm_out) = relabel_after_fault(&map, new_fault, &before, &cfg);
            let cold_out = run_pipeline(&updated, &cfg);
            cold.push(cold_out.safety_trace.rounds() as f64);
            warm.push(warm_out.incremental_safety_trace.rounds() as f64);
        }
        cold_rounds.push(f as f64, &cold);
        warm_rounds.push(f as f64, &warm);
    }
    MaintenanceResult {
        cold_rounds,
        warm_rounds,
    }
}

/// Renders the comparison as a table.
pub fn table(result: &MaintenanceResult) -> Table {
    let mut t = Table::new(["faults", "cold rounds", "warm rounds"]);
    for (i, p) in result.cold_rounds.points.iter().enumerate() {
        t.push_row([
            format!("{}", p.x),
            format!("{:.2}", p.summary.mean),
            format!("{:.2}", result.warm_rounds.points[i].summary.mean),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_never_needs_more_rounds_on_average() {
        let r = run(&Settings::quick());
        for i in 0..r.cold_rounds.points.len() {
            let cold = r.cold_rounds.points[i].summary.mean;
            let warm = r.warm_rounds.points[i].summary.mean;
            assert!(
                warm <= cold + 1e-9,
                "f={}: warm {warm} > cold {cold}",
                r.cold_rounds.points[i].x
            );
        }
    }
}
