//! E16: observability overhead — wall-clock cost of the two labeling
//! phases with instrumentation on vs off, across mesh sizes, fault
//! densities and engines.
//!
//! The observability layer promises a near-zero disabled path (one relaxed
//! atomic load per run) and a cheap enabled path (hoisted metric handles,
//! lock-free recording). This sweep quantifies both: per-cell best-of-trials
//! on/off timings from interleaved trials, and an aggregate overhead ratio
//! held at ≤ 5% (the acceptance bar `repro -- obs` enforces).

use super::Settings;
use ocp_analysis::Table;
use ocp_core::labeling::enablement::compute_enablement_with;
use ocp_core::labeling::safety::compute_safety_with;
use ocp_core::labeling::{default_round_cap, LabelEngine};
use ocp_core::prelude::*;
use ocp_distsim::Executor;
use ocp_mesh::Topology;
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// One measured (mesh size, fault density, engine) cell.
#[derive(Clone, Debug, Serialize)]
pub struct ObsRow {
    /// Mesh side length (the machine is `side x side`).
    pub side: u32,
    /// Fraction of nodes faulty.
    pub density: f64,
    /// Engine label.
    pub engine: String,
    /// Best wall time of both phases with observability off, ms.
    pub off_ms: f64,
    /// Best wall time of both phases with observability on, ms.
    pub on_ms: f64,
    /// Per-cell overhead, percent ((on - off) / off).
    pub overhead_pct: f64,
}

/// Everything E16 produces (`results/obs.json`).
#[derive(Clone, Debug, Serialize)]
pub struct ObsReport {
    /// Per-cell on/off best-of-trials timings.
    pub rows: Vec<ObsRow>,
    /// Aggregate overhead across all cells, percent: `(Σon - Σoff) / Σoff`
    /// over the best-of-trials timings. The acceptance bar is ≤ 5.
    pub aggregate_overhead_pct: f64,
    /// Metric families the instrumented runs populated in the global
    /// registry (evidence the "on" passes actually recorded).
    pub metric_families: usize,
    /// Spans the instrumented runs appended to the global trace ring.
    pub spans_recorded: usize,
}

fn engines() -> Vec<(&'static str, LabelEngine)> {
    vec![
        (
            "lockstep-sequential",
            LabelEngine::Lockstep(Executor::Sequential),
        ),
        (
            "lockstep-frontier",
            LabelEngine::Lockstep(Executor::Frontier),
        ),
        ("bitboard-1", LabelEngine::Bitboard { threads: 1 }),
        ("bitboard-4", LabelEngine::Bitboard { threads: 4 }),
    ]
}

fn sides(settings: &Settings) -> Vec<u32> {
    if settings.side < 100 {
        vec![48, 96] // quick / CI shape
    } else {
        vec![128, 256, 512]
    }
}

/// Best-of-trials: the minimum approximates the noise-free cost, which is
/// what an overhead ratio should compare (scheduler hiccups only ever add
/// time, so a single preempted trial would otherwise dominate the cell).
fn best_of(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// One timed cold two-phase run.
fn labeling_ms(map: &FaultMap, engine: LabelEngine, cap: u32) -> f64 {
    let start = Instant::now();
    let safety = compute_safety_with(map, SafetyRule::BothDimensions, engine, cap);
    let enable = compute_enablement_with(map, &safety.grid, engine, cap);
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    assert!(safety.trace.converged && enable.trace.converged);
    elapsed
}

/// Runs the overhead sweep: mesh size x fault density x engine, with
/// observability toggled per trial (interleaved, so drift in machine load
/// hits both arms equally).
pub fn run(settings: &Settings) -> ObsReport {
    let was_enabled = ocp_obs::enabled();
    let densities = [0.001f64, 0.01];
    let trials = settings.trials.clamp(3, 5) as usize;
    let engines = engines();
    let mut rows = Vec::new();
    let spans_before = ocp_obs::tracer().snapshot().len();

    for &side in &sides(settings) {
        let topology = Topology::mesh(side, side);
        let cap = default_round_cap(topology);
        for &density in &densities {
            let f = ((topology.len() as f64) * density).round().max(1.0) as usize;
            let maps: Vec<FaultMap> = (0..trials)
                .map(|trial| {
                    let seed = settings.seed ^ 0xE16 ^ ((side as u64) << 32) ^ trial as u64;
                    let mut rng = SmallRng::seed_from_u64(seed);
                    FaultMap::new(topology, uniform_faults(topology, f, &mut rng))
                })
                .collect();

            for (name, engine) in &engines {
                // Untimed warm-up: pays the one-time cost of metric-family
                // creation and first-touch caches outside the measurement.
                ocp_obs::set_enabled(true);
                labeling_ms(&maps[0], *engine, cap);
                let mut off_samples = Vec::with_capacity(trials);
                let mut on_samples = Vec::with_capacity(trials);
                for map in &maps {
                    ocp_obs::set_enabled(false);
                    off_samples.push(labeling_ms(map, *engine, cap));
                    ocp_obs::set_enabled(true);
                    on_samples.push(labeling_ms(map, *engine, cap));
                }
                let off_ms = best_of(&off_samples);
                let on_ms = best_of(&on_samples);
                rows.push(ObsRow {
                    side,
                    density,
                    engine: name.to_string(),
                    off_ms,
                    on_ms,
                    overhead_pct: (on_ms - off_ms) / off_ms * 100.0,
                });
            }
        }
    }
    ocp_obs::set_enabled(was_enabled);

    let off_total: f64 = rows.iter().map(|r| r.off_ms).sum();
    let on_total: f64 = rows.iter().map(|r| r.on_ms).sum();
    ObsReport {
        aggregate_overhead_pct: (on_total - off_total) / off_total * 100.0,
        metric_families: ocp_obs::global().snapshot().families.len(),
        spans_recorded: ocp_obs::tracer()
            .snapshot()
            .len()
            .saturating_sub(spans_before),
        rows,
    }
}

/// Renders the per-cell overhead table.
pub fn table(report: &ObsReport) -> Table {
    let mut t = Table::new(["side", "density", "engine", "off ms", "on ms", "overhead"]);
    for row in &report.rows {
        t.push_row([
            format!("{}", row.side),
            format!("{:.3}", row.density),
            row.engine.clone(),
            format!("{:.3}", row.off_ms),
            format!("{:.3}", row.on_ms),
            format!("{:+.2}%", row.overhead_pct),
        ]);
    }
    t.push_row([
        "all".into(),
        "-".into(),
        "aggregate".into(),
        "-".into(),
        "-".into(),
        format!("{:+.2}%", report.aggregate_overhead_pct),
    ]);
    t
}

/// What the `obs-smoke` CI gate observed.
#[derive(Clone, Debug, Serialize)]
pub struct ObsSmokeReport {
    /// Bytes of the Prometheus page scraped over TCP.
    pub scrape_bytes: usize,
    /// Metric families in the typed report's registry snapshot.
    pub registry_families: usize,
    /// Spans in the typed report's trace dump.
    pub spans: usize,
    /// Epochs the service had published when scraped.
    pub epochs_published: u64,
}

/// End-to-end smoke of the three exposure surfaces: start a real service,
/// drive it over TCP, then scrape `Request::MetricsText` (Prometheus text)
/// and `Request::ObsReport` (typed superset) and check both tell the truth.
pub fn obs_smoke(seed: u64) -> ObsSmokeReport {
    use ocp_mesh::Coord;
    use ocp_serve::{Client, MeshService, Request, Response, ServeConfig, TcpServer};
    use std::time::Duration;

    let was_enabled = ocp_obs::enabled();
    ocp_obs::set_enabled(true);
    let side = 16;
    let service = MeshService::start(
        Topology::mesh(side, side),
        [Coord::new(4, 4)],
        ServeConfig::default(),
    )
    .expect("service starts");
    let server = TcpServer::start(&service, "127.0.0.1:0").expect("tcp server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    // Generate traffic on every instrumented surface: reads, a fault
    // injection (publishes an epoch through the writer), and a repair.
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..32 {
        let src = Coord::new(rng.gen_range(0..side as i32), rng.gen_range(0..side as i32));
        let dst = Coord::new(rng.gen_range(0..side as i32), rng.gen_range(0..side as i32));
        match client.request(&Request::RouteLen { src, dst }) {
            Ok(Response::RouteLen(_)) => {}
            other => panic!("unexpected route_len response: {other:?}"),
        }
    }
    match client.request(&Request::InjectFaults {
        nodes: vec![Coord::new(8, 8), Coord::new(9, 9)],
    }) {
        Ok(Response::Injected(ack)) => assert_eq!(ack.rejected, 0),
        other => panic!("unexpected inject response: {other:?}"),
    }
    assert!(service.quiesce(Duration::from_secs(30)), "writer drained");

    // Surface 1: the Prometheus text page over the wire.
    let page = match client.request(&Request::MetricsText) {
        Ok(Response::MetricsText { text }) => text,
        other => panic!("unexpected metrics response: {other:?}"),
    };
    for needle in [
        "# TYPE ocp_serve_epoch gauge",
        "ocp_serve_requests_total{endpoint=\"route_len\"} 32",
        "ocp_serve_epochs_published_total 1",
        "ocp_serve_publish_lag_ns_count 1",
        "ocp_labeling_runs_total", // global registry: labeling phases
        "phase=\"safety-warm\"",   // the writer relabeled via the warm path
    ] {
        assert!(page.contains(needle), "scrape missing {needle:?}:\n{page}");
    }

    // Surface 2: the typed stats-superset report.
    let report = match client.request(&Request::ObsReport) {
        Ok(Response::Obs(report)) => report,
        other => panic!("unexpected obs response: {other:?}"),
    };
    assert_eq!(report.stats.epochs_published, 1);
    assert_eq!(report.stats.route_len.requests, 32);
    assert!(
        report.registry.family("ocp_labeling_runs_total").is_some(),
        "typed registry snapshot misses labeling counters"
    );

    // Surface 3: the span trace, dumped as JSON like a repro experiment
    // would persist it.
    assert!(
        report
            .spans
            .iter()
            .any(|s| s.name == "labeling/safety-warm"),
        "no warm relabel span after an epoch publish: {:?}",
        report.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    let dump = ocp_obs::tracer().dump_json();
    assert!(
        dump.contains("labeling/safety-warm"),
        "JSON dump incomplete"
    );

    drop(client);
    server.shutdown();
    let stats = service.shutdown();
    ocp_obs::set_enabled(was_enabled);
    ObsSmokeReport {
        scrape_bytes: page.len(),
        registry_families: report.registry.families.len(),
        spans: report.spans.len(),
        epochs_published: stats.epochs_published,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_complete_grid_and_real_telemetry() {
        let settings = Settings {
            trials: 3,
            ..Settings::quick()
        };
        let report = run(&settings);
        let expected = sides(&settings).len() * 2 * engines().len();
        assert_eq!(report.rows.len(), expected);
        for row in &report.rows {
            assert!(row.off_ms > 0.0 && row.on_ms > 0.0, "{row:?}");
            assert!(row.overhead_pct.is_finite(), "{row:?}");
        }
        // The instrumented arm populated the global registry and tracer.
        assert!(report.metric_families > 0, "no metric families recorded");
        assert!(report.spans_recorded > 0, "no spans recorded");
    }
}
