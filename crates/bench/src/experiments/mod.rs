//! Experiment implementations (one module per exhibit).

pub mod asynchrony;
pub mod chaos;
pub mod disjoint;
pub mod durability;
pub mod fig5;
pub mod fleet;
pub mod maintenance;
pub mod models;
pub mod observability;
pub mod partition_gap;
pub mod rebuild;
pub mod routeperf;
pub mod routing_eval;
pub mod scaling;
pub mod serve_load;
pub mod verification;

use ocp_analysis::Table;

/// Shared experiment settings.
#[derive(Clone, Copy, Debug)]
pub struct Settings {
    /// Trials per parameter point.
    pub trials: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Machine side length for the Figure 5 sweeps (paper: 100).
    pub side: u32,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            trials: 30,
            seed: 20010425, // IPPS 2001
            side: 100,
        }
    }
}

/// Quick settings for smoke tests.
impl Settings {
    /// Smaller machine / fewer trials, for tests and CI.
    pub fn quick() -> Self {
        Self {
            trials: 5,
            seed: 7,
            side: 40,
        }
    }
}

/// Renders a table with a heading to a string.
pub fn render_section(title: &str, table: &Table) -> String {
    format!("\n== {title} ==\n\n{table}")
}
