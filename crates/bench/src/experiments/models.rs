//! E9: model-quality ablation — how many nonfaulty nodes each fault model
//! sacrifices, and how fragmented the fault regions are.

use super::Settings;
use ocp_analysis::{Series, Table};
use ocp_core::prelude::*;
use ocp_mesh::{Topology, TopologyKind};
use ocp_workloads::{uniform_faults, SweepConfig};
use serde::Serialize;

/// Mean sacrificed-nonfaulty-node counts per fault count, per model.
#[derive(Clone, Debug, Serialize)]
pub struct ModelAblation {
    /// Nonfaulty nodes inside Definition 2a blocks.
    pub def2a_cost: Series,
    /// Nonfaulty nodes inside Definition 2b blocks.
    pub def2b_cost: Series,
    /// Nonfaulty nodes still disabled after phase 2 (the paper's model).
    pub dr_cost: Series,
    /// Mean number of Definition 2b blocks.
    pub block_count: Series,
    /// Mean number of disabled regions.
    pub region_count: Series,
}

/// Runs the ablation on a mesh of `settings.side`.
pub fn run(settings: &Settings) -> ModelAblation {
    let cfg = SweepConfig {
        kind: TopologyKind::Mesh,
        width: settings.side,
        height: settings.side,
        fault_counts: (1..=10)
            .map(|i| (i * settings.side as usize) / 10)
            .collect(),
        trials: settings.trials,
        base_seed: settings.seed ^ 0xE9,
    };
    let topology: Topology = cfg.topology();
    let mut def2a_cost = Series::new("nonfaulty in Def-2a blocks", "faults");
    let mut def2b_cost = Series::new("nonfaulty in Def-2b blocks", "faults");
    let mut dr_cost = Series::new("nonfaulty in disabled regions", "faults");
    let mut block_count = Series::new("Def-2b block count", "faults");
    let mut region_count = Series::new("disabled region count", "faults");

    for &f in &cfg.fault_counts {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut d = Vec::new();
        let mut bc = Vec::new();
        let mut rc = Vec::new();
        for point in cfg.points().into_iter().filter(|p| p.faults == f) {
            let mut rng = cfg.rng(point);
            let faults = uniform_faults(topology, f, &mut rng);
            let map = FaultMap::new(topology, faults);

            let out_a = run_pipeline(
                &map,
                &PipelineConfig {
                    rule: SafetyRule::TwoUnsafeNeighbors,
                    ..PipelineConfig::default()
                },
            );
            let sa = ModelStats::collect(&map, &out_a);
            a.push(sa.unsafe_nonfaulty as f64);

            let out_b = run_pipeline(&map, &PipelineConfig::default());
            let sb = ModelStats::collect(&map, &out_b);
            b.push(sb.unsafe_nonfaulty as f64);
            d.push(sb.disabled_nonfaulty as f64);
            bc.push(sb.block_count as f64);
            rc.push(sb.region_count as f64);
        }
        def2a_cost.push(f as f64, &a);
        def2b_cost.push(f as f64, &b);
        dr_cost.push(f as f64, &d);
        block_count.push(f as f64, &bc);
        region_count.push(f as f64, &rc);
    }
    ModelAblation {
        def2a_cost,
        def2b_cost,
        dr_cost,
        block_count,
        region_count,
    }
}

/// Renders the ablation as one table.
pub fn table(ablation: &ModelAblation) -> Table {
    let mut t = Table::new([
        "faults",
        "Def2a cost",
        "Def2b cost",
        "DR cost",
        "FB count",
        "DR count",
    ]);
    for (i, p) in ablation.def2a_cost.points.iter().enumerate() {
        t.push_row([
            format!("{}", p.x),
            format!("{:.1}", p.summary.mean),
            format!("{:.1}", ablation.def2b_cost.points[i].summary.mean),
            format!("{:.1}", ablation.dr_cost.points[i].summary.mean),
            format!("{:.1}", ablation.block_count.points[i].summary.mean),
            format!("{:.1}", ablation.region_count.points[i].summary.mean),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_ordering_matches_paper_claims() {
        let ab = run(&Settings::quick());
        // Section 3: Def 2b absorbs no more nonfaulty nodes than Def 2a,
        // and the enabled/disabled rule reduces the cost further.
        for i in 0..ab.def2a_cost.points.len() {
            let a = ab.def2a_cost.points[i].summary.mean;
            let b = ab.def2b_cost.points[i].summary.mean;
            let d = ab.dr_cost.points[i].summary.mean;
            assert!(
                b <= a + 1e-9,
                "f={}: 2b {b} > 2a {a}",
                ab.def2a_cost.points[i].x
            );
            assert!(
                d <= b + 1e-9,
                "f={}: dr {d} > 2b {b}",
                ab.def2a_cost.points[i].x
            );
        }
        // The paper's headline: most of the cost is recovered.
        let total_b: f64 = ab.def2b_cost.means().iter().sum();
        let total_d: f64 = ab.dr_cost.means().iter().sum();
        assert!(total_d < total_b * 0.5, "dr {total_d} vs 2b {total_b}");
    }

    #[test]
    fn table_renders() {
        let ab = run(&Settings::quick());
        let t = table(&ab);
        assert_eq!(t.len(), 10);
        assert!(t.to_string().contains("Def2a"));
    }
}
