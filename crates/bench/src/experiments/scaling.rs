//! E15: labeling-engine scaling — wall-clock cost of the two labeling
//! phases across mesh sizes, fault densities and engines, plus the warm
//! relabel latency the mesh-state service writer pays per published epoch.
//!
//! All engines produce byte-identical grids and traces (pinned by the
//! equivalence suite), so this experiment measures pure execution cost:
//! the generic lockstep executors against the frontier worklist and the
//! bit-packed kernels of `ocp_core::labeling::bits`.

use super::Settings;
use ocp_analysis::Table;
use ocp_core::labeling::enablement::compute_enablement_with;
use ocp_core::labeling::safety::compute_safety_with;
use ocp_core::labeling::{default_round_cap, LabelEngine};
use ocp_core::maintenance::try_relabel_after_faults;
use ocp_core::prelude::*;
use ocp_distsim::Executor;
use ocp_mesh::Topology;
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

/// One measured (mesh size, fault density, engine) cell.
#[derive(Clone, Debug, Serialize)]
pub struct ScalingRow {
    /// Mesh side length (the machine is `side x side`).
    pub side: u32,
    /// Fraction of nodes faulty.
    pub density: f64,
    /// Engine label.
    pub engine: String,
    /// Median wall time of both labeling phases, milliseconds.
    pub median_ms: f64,
    /// Speedup vs the sequential lockstep baseline at the same cell.
    pub speedup: f64,
}

/// One measured warm-relabel (service writer path) cell.
#[derive(Clone, Debug, Serialize)]
pub struct RelabelRow {
    /// Mesh side length.
    pub side: u32,
    /// Fraction of nodes faulty before the new fault lands.
    pub density: f64,
    /// Engine label.
    pub engine: String,
    /// Median wall time of one warm-started relabel batch, milliseconds.
    pub median_ms: f64,
    /// Speedup vs the sequential lockstep baseline at the same cell.
    pub speedup: f64,
}

/// Everything E15 produces (`results/scaling.json`).
#[derive(Clone, Debug, Serialize)]
pub struct ScalingReport {
    /// Cold two-phase labeling cost per (side, density, engine).
    pub labeling: Vec<ScalingRow>,
    /// Warm relabel-after-one-fault cost per (side, density, engine) —
    /// the latency the `ocp-serve` writer pays per published epoch.
    pub relabel: Vec<RelabelRow>,
}

const BASELINE: &str = "lockstep-sequential";

fn engines() -> Vec<(&'static str, LabelEngine)> {
    vec![
        (BASELINE, LabelEngine::Lockstep(Executor::Sequential)),
        (
            "lockstep-frontier",
            LabelEngine::Lockstep(Executor::Frontier),
        ),
        (
            "lockstep-sharded4",
            LabelEngine::Lockstep(Executor::Sharded { threads: 4 }),
        ),
        ("bitboard-1", LabelEngine::Bitboard { threads: 1 }),
        ("bitboard-4", LabelEngine::Bitboard { threads: 4 }),
    ]
}

fn sides(settings: &Settings) -> Vec<u32> {
    if settings.side < 100 {
        vec![48, 96] // quick / CI shape
    } else {
        vec![128, 256, 512]
    }
}

fn median_of(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Runs the scaling sweep: mesh size x fault density x engine.
pub fn run(settings: &Settings) -> ScalingReport {
    let densities = [0.001f64, 0.01];
    let trials = settings.trials.clamp(3, 5) as usize;
    let engines = engines();
    let mut labeling = Vec::new();
    let mut relabel = Vec::new();

    for &side in &sides(settings) {
        let topology = Topology::mesh(side, side);
        let cap = default_round_cap(topology);
        for &density in &densities {
            let f = ((topology.len() as f64) * density).round().max(1.0) as usize;

            // Same fault maps for every engine, one per trial.
            let mut maps = Vec::with_capacity(trials);
            let mut new_faults = Vec::with_capacity(trials);
            for trial in 0..trials {
                let seed = settings.seed ^ 0xE15 ^ ((side as u64) << 32) ^ trial as u64;
                let mut rng = SmallRng::seed_from_u64(seed);
                let map = FaultMap::new(topology, uniform_faults(topology, f, &mut rng));
                let healthy: Vec<_> = topology.coords().filter(|&c| !map.is_faulty(c)).collect();
                new_faults.push(*healthy.choose(&mut rng).expect("healthy node"));
                maps.push(map);
            }
            // One converged outcome per trial to warm-start relabels from
            // (engine-independent, so computed once with the fast engine).
            let previous: Vec<PipelineOutcome> = maps
                .iter()
                .map(|map| {
                    run_pipeline(
                        map,
                        &PipelineConfig {
                            engine: LabelEngine::bitboard(),
                            ..PipelineConfig::default()
                        },
                    )
                })
                .collect();

            let mut baseline_label_ms = f64::NAN;
            let mut baseline_relabel_ms = f64::NAN;
            for (name, engine) in &engines {
                let mut label_samples = Vec::with_capacity(trials);
                let mut relabel_samples = Vec::with_capacity(trials);
                for trial in 0..trials {
                    let map = &maps[trial];
                    let start = Instant::now();
                    let safety = compute_safety_with(map, SafetyRule::BothDimensions, *engine, cap);
                    let enable = compute_enablement_with(map, &safety.grid, *engine, cap);
                    label_samples.push(start.elapsed().as_secs_f64() * 1e3);
                    assert!(safety.trace.converged && enable.trace.converged);

                    let cfg = PipelineConfig {
                        engine: *engine,
                        ..PipelineConfig::default()
                    };
                    let start = Instant::now();
                    let warm =
                        try_relabel_after_faults(map, &[new_faults[trial]], &previous[trial], &cfg)
                            .expect("warm relabel converges");
                    relabel_samples.push(start.elapsed().as_secs_f64() * 1e3);
                    drop(warm);
                }
                let label_ms = median_of(&mut label_samples);
                let relabel_ms = median_of(&mut relabel_samples);
                if *name == BASELINE {
                    baseline_label_ms = label_ms;
                    baseline_relabel_ms = relabel_ms;
                }
                labeling.push(ScalingRow {
                    side,
                    density,
                    engine: name.to_string(),
                    median_ms: label_ms,
                    speedup: baseline_label_ms / label_ms,
                });
                relabel.push(RelabelRow {
                    side,
                    density,
                    engine: name.to_string(),
                    median_ms: relabel_ms,
                    speedup: baseline_relabel_ms / relabel_ms,
                });
            }
        }
    }
    ScalingReport { labeling, relabel }
}

/// Renders the cold-labeling speedup table.
pub fn labeling_table(report: &ScalingReport) -> Table {
    let mut t = Table::new(["side", "density", "engine", "median ms", "speedup"]);
    for row in &report.labeling {
        t.push_row([
            format!("{}", row.side),
            format!("{:.3}", row.density),
            row.engine.clone(),
            format!("{:.3}", row.median_ms),
            format!("{:.1}x", row.speedup),
        ]);
    }
    t
}

/// Renders the warm-relabel (serve writer path) latency table.
pub fn relabel_table(report: &ScalingReport) -> Table {
    let mut t = Table::new(["side", "density", "engine", "median ms", "speedup"]);
    for row in &report.relabel {
        t.push_row([
            format!("{}", row.side),
            format!("{:.3}", row.density),
            row.engine.clone(),
            format!("{:.3}", row.median_ms),
            format!("{:.1}x", row.speedup),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_complete_grid_of_rows() {
        let settings = Settings {
            trials: 3,
            ..Settings::quick()
        };
        let report = run(&settings);
        let expected = sides(&settings).len() * 2 * engines().len();
        assert_eq!(report.labeling.len(), expected);
        assert_eq!(report.relabel.len(), expected);
        for row in &report.labeling {
            assert!(row.median_ms > 0.0, "{row:?} non-positive timing");
            assert!(row.speedup.is_finite(), "{row:?} bad speedup");
        }
        for row in &report.relabel {
            assert!(row.median_ms > 0.0, "{row:?} non-positive timing");
            assert!(row.speedup.is_finite(), "{row:?} bad speedup");
        }
    }
}
