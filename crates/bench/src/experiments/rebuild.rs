//! E22: incremental epoch builds — `FaultTolerantRouter::rebuild_from`
//! against the cold constructor it is digest-pinned to, across fault-batch
//! sizes, mesh sides, and clustered densities, plus the banded parallel
//! cold build against its single-thread baseline.
//!
//! Every measured cell re-verifies `table_digest` equality between the
//! warm and cold routers before its timings are reported, so the speedups
//! in `results/rebuild.json` are speedups of *identical* outputs. The E17
//! build-cost table is the cold baseline this experiment's incremental
//! column is measured against.

use super::Settings;
use ocp_analysis::Table;
use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology};
use ocp_routing::{EnabledMap, FaultTolerantRouter};
use ocp_workloads::clustered_faults;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::VecDeque;
use std::hint::black_box;
use std::time::Instant;

/// One measured (side, density, fault-batch size) cell.
#[derive(Clone, Debug, Serialize)]
pub struct RebuildRow {
    /// Mesh side length (the machine is `side x side`).
    pub side: u32,
    /// Fraction of nodes faulty before the delta (clustered placement).
    pub density: f64,
    /// Faults on the base machine.
    pub faults: usize,
    /// New fault cells in the applied delta batch.
    pub batch: usize,
    /// Median single-thread cold `FaultTolerantRouter::new`, milliseconds.
    pub cold_ms: f64,
    /// Median banded cold build at `threads` workers, milliseconds.
    pub cold_par_ms: f64,
    /// Median incremental `rebuild_from`, milliseconds.
    pub incremental_ms: f64,
    /// `cold_ms / incremental_ms` — the epoch-build speedup the serve
    /// writer's warm path gains.
    pub speedup_incremental: f64,
    /// `cold_ms / cold_par_ms` — the banded cold-build speedup.
    pub speedup_parallel: f64,
    /// Fraction of rings/rows/columns the incremental build reused.
    pub reuse_ratio: f64,
    /// Warm router digest equals the cold router digest (re-verified in
    /// every cell; a `false` here fails the run).
    pub digest_match: bool,
}

/// Everything E22 produces (`results/rebuild.json`).
#[derive(Clone, Debug, Serialize)]
pub struct RebuildReport {
    /// Worker threads the parallel cold build ran with.
    pub threads: usize,
    /// Measured cells.
    pub rows: Vec<RebuildRow>,
}

/// Experiment shape: (sides, batch sizes). CI/quick keeps machines small;
/// the full run reaches the 256² flagship cell of the acceptance bar.
fn shape(settings: &Settings) -> (Vec<u32>, Vec<usize>) {
    if settings.side < 100 {
        (vec![24, 48], vec![1, 16])
    } else {
        (vec![64, 128, 256], vec![1, 16, 64])
    }
}

fn median_of(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// One correlated fault batch: a compact blob of up to `n` enabled cells
/// grown breadth-first from a random enabled anchor (crossing currently
/// disabled cells, so the blob stays compact next to existing regions).
fn correlated_batch(enabled: &EnabledMap, n: usize, rng: &mut SmallRng) -> Vec<Coord> {
    let t = enabled.topology();
    let nodes = enabled.enabled_coords();
    let Some(&anchor) = nodes.choose(rng) else {
        return Vec::new();
    };
    let mut seen = std::collections::BTreeSet::from([anchor]);
    let mut queue = VecDeque::from([anchor]);
    let mut blob = Vec::new();
    while let Some(c) = queue.pop_front() {
        if enabled.is_enabled(c) {
            blob.push(c);
            if blob.len() == n {
                break;
            }
        }
        for d in ocp_mesh::DIRECTIONS {
            let (dx, dy) = d.offset();
            let next = Coord::new(c.x + dx, c.y + dy);
            let next = match t.kind() {
                ocp_mesh::TopologyKind::Torus => t.wrap(next),
                ocp_mesh::TopologyKind::Mesh => next,
            };
            if t.contains(next) && seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    blob
}

/// Runs the rebuild sweep: side x density x delta-batch size.
pub fn run(settings: &Settings) -> RebuildReport {
    let (sides, batches) = shape(settings);
    let densities = [0.05f64, 0.10];
    let trials = settings.trials.clamp(3, 7) as usize;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();

    for &side in &sides {
        let topology = Topology::mesh(side, side);
        for &density in &densities {
            let f = ((topology.len() as f64) * density).round().max(1.0) as usize;
            let seed = settings.seed ^ 0xE22 ^ ((side as u64) << 24) ^ (f as u64);
            let mut rng = SmallRng::seed_from_u64(seed);
            let faults = clustered_faults(topology, f, (f / 24).max(1), &mut rng);
            let base_map = FaultMap::new(topology, faults);
            let base_out = run_pipeline(&base_map, &PipelineConfig::default());
            let base_enabled = EnabledMap::from_outcome(&base_out);
            let base_regions: Vec<_> = base_out.regions.iter().map(|r| r.cells.clone()).collect();
            // The previous epoch every incremental rebuild patches from.
            let prev = FaultTolerantRouter::new(base_enabled.clone(), &base_regions);

            for &batch in &batches {
                // Delta: one correlated batch of `batch` fresh faults on
                // currently-enabled cells (the clustered failure model
                // every serving workload in this suite uses — a dying
                // switch or power domain takes out a compact blob, not a
                // uniform scatter), relabeled the way the serve writer's
                // warm path would.
                let new_faults = correlated_batch(&base_enabled, batch, &mut rng);
                let mut map = base_map.clone();
                for &c in &new_faults {
                    map = map.with_additional_fault(c);
                }
                let out = run_pipeline(&map, &PipelineConfig::default());
                let enabled = EnabledMap::from_outcome(&out);
                let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();

                let (warm, stats) =
                    FaultTolerantRouter::rebuild_from(&prev, enabled.clone(), &regions);
                let cold = FaultTolerantRouter::new(enabled.clone(), &regions);
                let digest_match = warm.table_digest() == cold.table_digest();

                let mut cold_samples: Vec<f64> = (0..trials)
                    .map(|_| {
                        let start = Instant::now();
                        black_box(FaultTolerantRouter::new(enabled.clone(), &regions));
                        start.elapsed().as_secs_f64() * 1e3
                    })
                    .collect();
                let mut par_samples: Vec<f64> = (0..trials)
                    .map(|_| {
                        let start = Instant::now();
                        black_box(FaultTolerantRouter::new_with_threads(
                            enabled.clone(),
                            &regions,
                            threads,
                        ));
                        start.elapsed().as_secs_f64() * 1e3
                    })
                    .collect();
                let mut inc_samples: Vec<f64> = (0..trials)
                    .map(|_| {
                        let start = Instant::now();
                        black_box(FaultTolerantRouter::rebuild_from(
                            &prev,
                            enabled.clone(),
                            &regions,
                        ));
                        start.elapsed().as_secs_f64() * 1e3
                    })
                    .collect();
                let cold_ms = median_of(&mut cold_samples);
                let cold_par_ms = median_of(&mut par_samples);
                let incremental_ms = median_of(&mut inc_samples);
                rows.push(RebuildRow {
                    side,
                    density,
                    faults: f,
                    batch,
                    cold_ms,
                    cold_par_ms,
                    incremental_ms,
                    speedup_incremental: cold_ms / incremental_ms,
                    speedup_parallel: cold_ms / cold_par_ms,
                    reuse_ratio: stats.reuse_ratio(),
                    digest_match,
                });
            }
        }
    }
    RebuildReport { threads, rows }
}

/// Renders the sweep as a table.
pub fn table(report: &RebuildReport) -> Table {
    let mut t = Table::new([
        "side", "density", "batch", "cold ms", "par ms", "incr ms", "incr x", "par x", "reuse",
        "digest",
    ]);
    for r in &report.rows {
        t.push_row([
            format!("{}", r.side),
            format!("{:.2}", r.density),
            format!("{}", r.batch),
            format!("{:.2}", r.cold_ms),
            format!("{:.2}", r.cold_par_ms),
            format!("{:.3}", r.incremental_ms),
            format!("{:.1}", r.speedup_incremental),
            format!("{:.2}", r.speedup_parallel),
            format!("{:.2}", r.reuse_ratio),
            format!("{}", r.digest_match),
        ]);
    }
    t
}

/// The flagship cell of the acceptance bar: the largest (side, density)
/// at the largest batch size ≤ 64.
pub fn flagship(report: &RebuildReport) -> Option<&RebuildRow> {
    report.rows.iter().filter(|r| r.batch <= 64).max_by(|a, b| {
        (a.side, a.density, a.batch)
            .partial_cmp(&(b.side, b.density, b.batch))
            .expect("finite densities")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_digest_identical_and_reuses() {
        let report = run(&Settings::quick());
        // 2 sides x 2 densities x 2 batch sizes.
        assert_eq!(report.rows.len(), 8);
        assert!(report.threads >= 1);
        for r in &report.rows {
            assert!(r.digest_match, "warm != cold at {r:?}");
            assert!(r.cold_ms > 0.0 && r.incremental_ms > 0.0);
            assert!(
                r.reuse_ratio > 0.0,
                "small deltas must reuse something: {r:?}"
            );
        }
        assert!(flagship(&report).is_some());
    }
}
