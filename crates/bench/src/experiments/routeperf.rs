//! E17: the indexed query path payoff — `route_len` throughput of the
//! segment-jump/indexed-ring router against the per-hop reference
//! traversal, across mesh sizes, clustered-fault densities, and batch
//! sizes.
//!
//! All engines are pinned byte-identical by the routing equivalence
//! suite, so this experiment measures pure query cost. Three tiers:
//!
//! * **reference** walks every cell of every segment and rebuilds its
//!   livelock guard and exit scans per query;
//! * **indexed** jumps whole segments via the per-row/per-column
//!   interval tables and resolves ring entries through the precomputed
//!   position maps (`indexed-batch64` additionally amortizes one scratch
//!   across each chunk);
//! * **wide-batchN** is the SIMD-lane batch engine behind the serve
//!   `route_len_batch` endpoint: whole batches move through
//!   cache-line-packed next-blocked tables, packed hit words, and the
//!   O(1) exit directory together (experiment E20 documents the
//!   layout).
//!
//! The one-off cost the index shifts to publication time is reported
//! alongside as the *cold baseline*: a from-scratch
//! `FaultTolerantRouter::new` of every table. Since E22 the serve
//! writer's warm path no longer pays it per epoch — fault-only batches
//! patch the previous epoch's tables incrementally
//! (`FaultTolerantRouter::rebuild_from`, digest-identical, ≥5× cheaper
//! at the flagship) and only repair batches fall back to this cold
//! build. E22 (`repro -- rebuild`) measures that split.

use super::Settings;
use ocp_analysis::Table;
use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology};
use ocp_routing::{EnabledMap, FaultTolerantRouter, RouteScratch};
use ocp_workloads::clustered_faults;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One measured (mesh size, fault density, engine) cell.
#[derive(Clone, Debug, Serialize)]
pub struct RouteperfRow {
    /// Mesh side length (the machine is `side x side`).
    pub side: u32,
    /// Fraction of nodes faulty (clustered placement).
    pub density: f64,
    /// Faults actually placed.
    pub faults: usize,
    /// Query engine label.
    pub engine: String,
    /// Scratch-sharing batch size (1 = singleton queries).
    pub batch: usize,
    /// Hop-count queries per measured pass.
    pub queries: u64,
    /// Median nanoseconds per query across trials.
    pub ns_per_query: f64,
    /// Median single-thread throughput, queries per second.
    pub qps: f64,
    /// Throughput vs the reference engine at the same (side, density).
    pub speedup: f64,
}

/// Cold-baseline router + index construction cost of one machine: the
/// from-scratch build the serve writer now pays only for epoch 0 and
/// repair batches — fault-only epochs patch the previous snapshot's
/// tables instead (E22, `results/rebuild.json`).
#[derive(Clone, Debug, Serialize)]
pub struct BuildRow {
    /// Mesh side length.
    pub side: u32,
    /// Fraction of nodes faulty.
    pub density: f64,
    /// Faults actually placed.
    pub faults: usize,
    /// Disabled regions (= fault rings) on the machine.
    pub regions: usize,
    /// Median `FaultTolerantRouter::new` wall time, milliseconds
    /// (segment tables + ring indexes included).
    pub build_ms: f64,
}

/// Everything E17 produces (`results/routeperf.json`).
#[derive(Clone, Debug, Serialize)]
pub struct RouteperfReport {
    /// Query-throughput cells.
    pub rows: Vec<RouteperfRow>,
    /// Router construction cost per machine.
    pub build: Vec<BuildRow>,
}

const REFERENCE: &str = "reference";

#[derive(Clone, Copy)]
enum Engine {
    /// The pre-index per-hop traversal (`route_len_reference`).
    Reference,
    /// Indexed traversal through the public singleton path (`route_len`,
    /// thread-local scratch).
    Indexed,
    /// Indexed traversal with one explicit scratch shared across each
    /// chunk of this many queries — the scalar loop the serve batch
    /// endpoint ran before the wide engine existed, kept as the
    /// amortization baseline.
    IndexedBatch(usize),
    /// The wide SIMD-lane batch engine (`route_len_batch_with`) at this
    /// batch width — the serve `route_len_batch` endpoint's actual data
    /// path, byte-identical to the scalar engines.
    WideBatch(usize),
}

impl Engine {
    fn label(self) -> String {
        match self {
            Engine::Reference => REFERENCE.into(),
            Engine::Indexed => "indexed".into(),
            Engine::IndexedBatch(n) => format!("indexed-batch{n}"),
            Engine::WideBatch(n) => format!("wide-batch{n}"),
        }
    }

    fn batch(self) -> usize {
        match self {
            Engine::Reference | Engine::Indexed => 1,
            Engine::IndexedBatch(n) | Engine::WideBatch(n) => n,
        }
    }
}

fn engines() -> Vec<Engine> {
    vec![
        Engine::Reference,
        Engine::Indexed,
        Engine::IndexedBatch(64),
        Engine::WideBatch(16),
        Engine::WideBatch(64),
        Engine::WideBatch(256),
    ]
}

/// Experiment shape: (sides, queries per pass). CI/quick keeps machines
/// small; the full run reaches the 256² flagship cell of the acceptance
/// bar.
fn shape(settings: &Settings) -> (Vec<u32>, usize) {
    if settings.side < 100 {
        (vec![24, 48], 512)
    } else {
        (vec![64, 128, 256], 2048)
    }
}

fn median_of(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// One timed pass over every query pair.
fn pass_ns(router: &FaultTolerantRouter, pairs: &[(Coord, Coord)], engine: Engine) -> f64 {
    let start = Instant::now();
    match engine {
        Engine::Reference => {
            for &(s, d) in pairs {
                let _ = black_box(router.route_len_reference(s, d));
            }
        }
        Engine::Indexed => {
            for &(s, d) in pairs {
                let _ = black_box(router.route_len(s, d));
            }
        }
        Engine::IndexedBatch(n) => {
            // One persistent scratch, `begin()`-reset per chunk inside
            // `route_len_with` — the scalar amortization baseline the
            // wide engine is measured against.
            let mut scratch = RouteScratch::new();
            for chunk in pairs.chunks(n) {
                for &(s, d) in chunk {
                    let _ = black_box(router.route_len_with(s, d, &mut scratch));
                }
            }
        }
        Engine::WideBatch(n) => {
            // The wide engine with one persistent scratch and results
            // vector — exactly how a long-lived serve worker's handle
            // answers successive `route_len_batch` requests.
            let mut scratch = RouteScratch::new();
            let mut out = Vec::new();
            for chunk in pairs.chunks(n) {
                router.route_len_batch_with(chunk, &mut scratch, &mut out);
                black_box(&out);
            }
        }
    }
    start.elapsed().as_nanos() as f64
}

/// Runs the query-path sweep: mesh size x clustered density x engine.
pub fn run(settings: &Settings) -> RouteperfReport {
    let (sides, queries) = shape(settings);
    let densities = [0.02f64, 0.05, 0.10];
    let trials = settings.trials.clamp(3, 7) as usize;
    let engines = engines();
    let mut rows = Vec::new();
    let mut build = Vec::new();

    for &side in &sides {
        let topology = Topology::mesh(side, side);
        for &density in &densities {
            let f = ((topology.len() as f64) * density).round().max(1.0) as usize;
            let seed = settings.seed ^ 0xE17 ^ ((side as u64) << 24) ^ (f as u64);
            let mut rng = SmallRng::seed_from_u64(seed);
            // ~24-cell clusters: large enough to merge into real detour
            // regions, the regime the ring indexes are for.
            let faults = clustered_faults(topology, f, (f / 24).max(1), &mut rng);
            let map = FaultMap::new(topology, faults);
            let out = run_pipeline(&map, &PipelineConfig::default());
            let enabled = EnabledMap::from_outcome(&out);
            let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();

            // Construction cost (index build included), then one router
            // shared by every engine.
            let mut build_samples: Vec<f64> = (0..trials)
                .map(|_| {
                    let start = Instant::now();
                    black_box(FaultTolerantRouter::new(enabled.clone(), &regions));
                    start.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            let router = FaultTolerantRouter::new(enabled.clone(), &regions);
            build.push(BuildRow {
                side,
                density,
                faults: f,
                regions: regions.len(),
                build_ms: median_of(&mut build_samples),
            });

            // Same enabled-pair workload for every engine.
            let nodes = enabled.enabled_coords();
            let pairs: Vec<(Coord, Coord)> = (0..queries)
                .map(|_| {
                    let p: Vec<_> = nodes.choose_multiple(&mut rng, 2).collect();
                    (*p[0], *p[1])
                })
                .collect();

            let mut reference_qps = 0.0f64;
            for &engine in &engines {
                pass_ns(&router, &pairs, engine); // warm-up, untimed
                let mut samples: Vec<f64> = (0..trials)
                    .map(|_| pass_ns(&router, &pairs, engine))
                    .collect();
                let total_ns = median_of(&mut samples);
                let ns_per_query = total_ns / pairs.len() as f64;
                let qps = 1e9 / ns_per_query;
                if matches!(engine, Engine::Reference) {
                    reference_qps = qps;
                }
                rows.push(RouteperfRow {
                    side,
                    density,
                    faults: f,
                    engine: engine.label(),
                    batch: engine.batch(),
                    queries: pairs.len() as u64,
                    ns_per_query,
                    qps,
                    speedup: qps / reference_qps,
                });
            }
        }
    }
    RouteperfReport { rows, build }
}

/// Renders the throughput sweep as a table.
pub fn table(report: &RouteperfReport) -> Table {
    let mut t = Table::new([
        "side", "density", "faults", "engine", "batch", "ns/query", "Mq/s", "speedup",
    ]);
    for r in &report.rows {
        t.push_row([
            format!("{}", r.side),
            format!("{:.2}", r.density),
            format!("{}", r.faults),
            r.engine.clone(),
            format!("{}", r.batch),
            format!("{:.0}", r.ns_per_query),
            format!("{:.3}", r.qps / 1e6),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t
}

/// Renders the construction-cost table.
pub fn build_table(report: &RouteperfReport) -> Table {
    let mut t = Table::new(["side", "density", "faults", "regions", "build ms"]);
    for b in &report.build {
        t.push_row([
            format!("{}", b.side),
            format!("{:.2}", b.density),
            format!("{}", b.faults),
            format!("{}", b.regions),
            format!("{:.2}", b.build_ms),
        ]);
    }
    t
}

/// The flagship speedup: the wide engine at batch=64 vs reference at the
/// largest (side, density) cell measured. The full run's acceptance bar
/// checks this against 7x at 256² / 10%; the smoke run checks a relaxed
/// bar on the quick shape.
pub fn flagship_speedup(report: &RouteperfReport) -> Option<&RouteperfRow> {
    report
        .rows
        .iter()
        .filter(|r| r.engine == "wide-batch64")
        .max_by(|a, b| {
            (a.side, a.density)
                .partial_cmp(&(b.side, b.density))
                .expect("finite densities")
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_indexed_wins() {
        let report = run(&Settings::quick());
        // 2 sides x 3 densities x 6 engines.
        assert_eq!(report.rows.len(), 36);
        assert_eq!(report.build.len(), 6);
        for r in &report.rows {
            assert!(r.ns_per_query > 0.0);
            assert!(r.speedup > 0.0);
            if r.engine == REFERENCE {
                assert!((r.speedup - 1.0).abs() < 1e-9);
            }
        }
        // Indexed must beat the reference at every cell, even tiny ones.
        for r in report.rows.iter().filter(|r| r.engine != REFERENCE) {
            assert!(
                r.speedup > 1.0,
                "{} at {}x{} d={} only reached {:.2}x",
                r.engine,
                r.side,
                r.side,
                r.density,
                r.speedup
            );
        }
        let flagship = flagship_speedup(&report).expect("batch64 rows exist");
        assert_eq!(flagship.side, 48);
        assert!((flagship.density - 0.10).abs() < 1e-9);
    }
}
