//! E18: what durability costs on the publish path.
//!
//! PR 6 put two gates between a relabeled snapshot and its readers: the
//! publish-time certificate (`EpochCertificate::describe` + independent
//! `check`) and the epoch WAL (append + fsync before the epoch becomes
//! visible). This experiment prices both against the bare publish path
//! across mesh sizes and clustered-fault densities.
//!
//! Each cell times the exact component sequence the serve writer runs per
//! batch — warm `Snapshot::apply`, then (certified mode only) certificate
//! distill/check and a real WAL append + fsync — on a cold-labeled machine,
//! one single-fault batch per trial, median over trials. Timing the
//! components directly rather than through `MeshService` keeps scheduler
//! wakeups and the 1 ms quiesce poll out of the measurement; the
//! `durability-smoke` gate covers the real end-to-end service path
//! (crash → recover → field-identical state).
//!
//! Acceptance bar (full shape): certification + WAL must cost ≤ 10% of the
//! bare publish path at 256²/10% — durability must not tax the epoch rate
//! the serving layer was built for.

use super::Settings;
use ocp_analysis::Table;
use ocp_core::certificate::{outcome_digest, EpochCertificate};
use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology};
use ocp_serve::{EventBatch, MeshService, ServeConfig, Snapshot, Wal, WalRecord};
use ocp_workloads::clustered_faults;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One (side, density) cell, certified and bare modes paired.
#[derive(Clone, Debug, Serialize)]
pub struct DurabilityRow {
    /// Mesh side length.
    pub side: u32,
    /// Fraction of nodes faulty (clustered placement).
    pub density: f64,
    /// Faulty nodes at the start of the measurement.
    pub faults: usize,
    /// Single-fault batches timed (median reported).
    pub batches: usize,
    /// Bare publish path: warm apply only, in milliseconds.
    pub baseline_ms: f64,
    /// Durable publish path: apply + certificate + WAL append + fsync.
    pub certified_ms: f64,
    /// Certificate distill + independent check alone.
    pub cert_ms: f64,
    /// WAL record append alone.
    pub wal_append_ms: f64,
    /// WAL fsync alone.
    pub wal_fsync_ms: f64,
    /// `(certified - baseline) / baseline`, in percent.
    pub overhead_pct: f64,
}

/// The full E18 report, serialized to `results/durability.json`.
#[derive(Clone, Debug, Serialize)]
pub struct DurabilityReport {
    /// Sweep cells, ordered by (side, density).
    pub rows: Vec<DurabilityRow>,
}

fn shape(settings: &Settings) -> Vec<u32> {
    if settings.side < 100 {
        vec![16, 32]
    } else {
        vec![64, 128, 256]
    }
}

fn median_of(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ocp-durability-bench");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{name}-{}.wal", std::process::id()))
}

/// Picks `n` distinct currently-enabled nodes to crash one at a time.
fn fresh_nodes(base: &Snapshot, side: u32, n: usize, rng: &mut SmallRng) -> Vec<Coord> {
    let mut nodes = Vec::new();
    while nodes.len() < n {
        let node = Coord::new(rng.gen_range(0..side as i32), rng.gen_range(0..side as i32));
        if !base.map.is_faulty(node) && !nodes.contains(&node) {
            nodes.push(node);
        }
    }
    nodes
}

fn run_cell(side: u32, density: f64, batches: usize, seed: u64) -> DurabilityRow {
    let topology = Topology::mesh(side, side);
    let f = ((topology.len() as f64) * density).round().max(1.0) as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let faults = clustered_faults(topology, f, (f / 24).max(1), &mut rng);
    let pipeline = PipelineConfig::default();
    let base = Snapshot::cold(0, FaultMap::new(topology, faults), &pipeline)
        .expect("cold labeling converges");
    let nodes = fresh_nodes(&base, side, batches, &mut rng);

    // A real log on a real filesystem: append/fsync costs are the point.
    let wal_path = tmp(&format!("e18-{side}-{}", (density * 100.0) as u32));
    let init = WalRecord::Init {
        topology,
        faults: base.map.faults(),
        rule: pipeline.rule,
        digest: outcome_digest(&base.map, &base.outcome),
    };
    let mut wal = Wal::create(&wal_path, &init).expect("create bench WAL");

    let mut baseline = Vec::new();
    let mut certified = Vec::new();
    let mut cert = Vec::new();
    let mut wal_append = Vec::new();
    let mut wal_fsync = Vec::new();
    for &node in &nodes {
        let batch = EventBatch {
            faults: vec![node],
            repairs: Vec::new(),
        };
        // Bare path: warm apply, publish is just a pointer swap.
        let t0 = Instant::now();
        let next = std::hint::black_box(base.apply(&batch, &pipeline)).expect("warm apply");
        baseline.push(t0.elapsed().as_secs_f64() * 1e3);
        drop(next);

        // Durable path, exactly the writer's sequence on the same batch.
        let t0 = Instant::now();
        let next = std::hint::black_box(base.apply(&batch, &pipeline)).expect("warm apply");
        let t_cert = Instant::now();
        let certificate = EpochCertificate::describe(next.epoch, &next.map, &next.outcome);
        certificate
            .check(&next.map, &next.outcome)
            .expect("publish-time certificate validates");
        cert.push(t_cert.elapsed().as_secs_f64() * 1e3);
        let record = WalRecord::batch(next.epoch, &batch, certificate.grid_digest);
        let t_append = Instant::now();
        wal.append(&record).expect("WAL append");
        wal_append.push(t_append.elapsed().as_secs_f64() * 1e3);
        let t_sync = Instant::now();
        wal.sync().expect("WAL fsync");
        wal_fsync.push(t_sync.elapsed().as_secs_f64() * 1e3);
        certified.push(t0.elapsed().as_secs_f64() * 1e3);
        drop(next);
    }
    let _ = std::fs::remove_file(&wal_path);

    let baseline_ms = median_of(&mut baseline);
    let certified_ms = median_of(&mut certified);
    DurabilityRow {
        side,
        density,
        faults: f,
        batches,
        baseline_ms,
        certified_ms,
        cert_ms: median_of(&mut cert),
        wal_append_ms: median_of(&mut wal_append),
        wal_fsync_ms: median_of(&mut wal_fsync),
        overhead_pct: (certified_ms - baseline_ms) / baseline_ms * 100.0,
    }
}

/// Runs the publish-path sweep: mesh size × clustered density, bare vs
/// certified+durable.
pub fn run(settings: &Settings) -> DurabilityReport {
    let sides = shape(settings);
    let densities = [0.05f64, 0.10];
    let batches = settings.trials.clamp(5, 9) as usize;
    let mut rows = Vec::new();
    for &side in &sides {
        for &density in &densities {
            let seed = settings.seed ^ 0xE18 ^ ((side as u64) << 24) ^ ((density * 100.0) as u64);
            rows.push(run_cell(side, density, batches, seed));
        }
    }
    DurabilityReport { rows }
}

/// The acceptance-bar cell: the largest side at 10% density.
pub fn flagship_overhead(report: &DurabilityReport) -> Option<&DurabilityRow> {
    report
        .rows
        .iter()
        .filter(|r| (r.density - 0.10).abs() < 1e-9)
        .max_by_key(|r| r.side)
}

/// Renders the sweep as a table.
pub fn table(report: &DurabilityReport) -> Table {
    let mut t = Table::new([
        "side",
        "density",
        "faults",
        "bare ms",
        "durable ms",
        "cert ms",
        "append ms",
        "fsync ms",
        "overhead",
    ]);
    for r in &report.rows {
        t.push_row([
            r.side.to_string(),
            format!("{:.2}", r.density),
            r.faults.to_string(),
            format!("{:.3}", r.baseline_ms),
            format!("{:.3}", r.certified_ms),
            format!("{:.3}", r.cert_ms),
            format!("{:.4}", r.wal_append_ms),
            format!("{:.4}", r.wal_fsync_ms),
            format!("{:+.1}%", r.overhead_pct),
        ]);
    }
    t
}

/// Result of the CI crash/recover gate.
#[derive(Clone, Debug, Serialize)]
pub struct SmokeReport {
    /// Epochs published by the uninterrupted durable run.
    pub epochs: u64,
    /// Truncation points recovered from.
    pub cuts_tested: usize,
    /// Cuts that replayed to a verified prefix.
    pub cuts_recovered: usize,
}

/// The `durability-smoke` gate: run a real durable service, crash it (by
/// snapshotting and truncating its WAL), recover, and demand the replayed
/// state be field-identical to the uninterrupted run — the grid digest
/// that backs the certificates is the equality witness.
pub fn smoke(seed: u64) -> SmokeReport {
    let side = 16u32;
    let path = tmp("smoke");
    let service = MeshService::start_durable(
        Topology::mesh(side, side),
        [Coord::new(3, 3)],
        ServeConfig::default(),
        &path,
    )
    .expect("durable service starts");
    let handle = service.handle();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut injected = 0;
    while injected < 6 {
        let node = Coord::new(rng.gen_range(0..side as i32), rng.gen_range(0..side as i32));
        if node == Coord::new(3, 3) || handle.inject_faults(&[node]).accepted != 1 {
            continue;
        }
        injected += 1;
        assert!(service.quiesce(Duration::from_secs(30)), "writer quiesces");
    }
    let mut handle = service.handle();
    let head = handle.snapshot();
    let (oracle_epoch, oracle_digest) = (head.epoch, outcome_digest(&head.map, &head.outcome));
    let oracle_epochs: Vec<u64> = service.epoch_log().iter().map(|r| r.epoch).collect();
    service.shutdown();

    // Uninterrupted recovery must be field-identical.
    let recovered = MeshService::recover(&path, ServeConfig::default()).expect("full recover");
    let mut handle = recovered.handle();
    let head = handle.snapshot();
    assert_eq!(head.epoch, oracle_epoch, "recovered terminal epoch");
    assert_eq!(
        outcome_digest(&head.map, &head.outcome),
        oracle_digest,
        "recovered terminal grids"
    );
    recovered.shutdown();

    // Crash images: the WAL cut at arbitrary byte offsets must recover to
    // a consistent epoch prefix whose grids match the cold oracle.
    let bytes = std::fs::read(&path).expect("read WAL");
    let cut_path = tmp("smoke-cut");
    let cuts: Vec<usize> = (0..5).map(|_| rng.gen_range(1..bytes.len())).collect();
    let mut cuts_recovered = 0;
    for &cut in &cuts {
        std::fs::write(&cut_path, &bytes[..cut]).expect("write truncated copy");
        let Ok(service) = MeshService::recover(&cut_path, ServeConfig::default()) else {
            continue; // cut inside the Init frame: nothing to replay from
        };
        let epochs: Vec<u64> = service.epoch_log().iter().map(|r| r.epoch).collect();
        assert_eq!(
            epochs[..],
            oracle_epochs[..epochs.len()],
            "cut at byte {cut}: prefix-consistent epochs"
        );
        let mut handle = service.handle();
        let head = handle.snapshot();
        let cold = Snapshot::cold(
            head.epoch,
            FaultMap::new(head.map.topology(), head.map.faults()),
            &ServeConfig::default().pipeline,
        )
        .expect("cold oracle converges");
        assert_eq!(
            outcome_digest(&head.map, &head.outcome),
            outcome_digest(&cold.map, &cold.outcome),
            "cut at byte {cut}: recovered grids equal the cold oracle"
        );
        cuts_recovered += 1;
        service.shutdown();
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&cut_path);
    SmokeReport {
        epochs: oracle_epoch,
        cuts_tested: cuts.len(),
        cuts_recovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_every_cell() {
        let settings = Settings::quick();
        let report = run(&settings);
        assert_eq!(report.rows.len(), 4, "2 sides x 2 densities");
        for row in &report.rows {
            assert!(row.baseline_ms > 0.0, "{row:?}");
            assert!(row.certified_ms >= row.baseline_ms * 0.5, "{row:?}");
            assert!(row.cert_ms > 0.0, "{row:?}");
        }
        let flagship = flagship_overhead(&report).expect("10% rows present");
        assert_eq!(flagship.side, 32);
        assert!(!table(&report).to_string().is_empty());
    }

    #[test]
    fn smoke_recovers_from_crash_images() {
        let report = smoke(0xE18);
        assert_eq!(report.epochs, 6);
        assert!(report.cuts_recovered >= 1, "{report:?}");
    }
}
