//! E14: the mesh-state service under production-shaped load.
//!
//! Every other experiment rebuilds the labeled machine per call; this one
//! measures the serving layer (`ocp-serve`) that owns it long-term:
//!
//! * **Closed loop** — `W` workers issue route queries back-to-back; the
//!   offered load self-adjusts to service capacity. Reported: throughput
//!   and on-CPU query latency (p50/p95/p99).
//! * **Open loop** — queries arrive on a fixed schedule regardless of
//!   completion, the honest way to expose tail latency under a target
//!   arrival rate (closed loops hide coordinated omission).
//! * **Fault churn** — both loops run while a background injector crashes
//!   and repairs nodes at a configurable rate, so the writer is
//!   re-converging mid-measurement.
//! * **Staleness vs batching** — how far behind head (in epochs) reads
//!   are served, as the writer's coalescing window `batch_max` varies.
//!
//! The grid keeps `side` modest (`min(side, 32)`): unlike the labeling
//! sweeps, the interesting axis here is concurrency, not machine scale.

use super::Settings;
use ocp_analysis::{Percentiles, Table};
use ocp_mesh::{Coord, Topology};
use ocp_serve::{MeshService, ServeConfig, ServiceHandle};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker counts swept (closed and open loop).
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
/// Background fault/repair event rates swept, in events per second.
pub const FAULT_RATES: [f64; 3] = [0.0, 100.0, 1000.0];
/// Coalescing windows swept by the staleness exhibit.
pub const BATCH_SIZES: [usize; 3] = [1, 8, 64];

/// One measured cell of the load sweep.
#[derive(Clone, Debug, Serialize)]
pub struct LoadRow {
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// Concurrent query workers.
    pub workers: usize,
    /// Background fault/repair events per second (0 = static machine).
    pub fault_rate: f64,
    /// Wall-clock measurement window in milliseconds.
    pub duration_ms: u64,
    /// Queries answered in the window.
    pub requests: u64,
    /// Queries per second.
    pub throughput: f64,
    /// Query latency in microseconds. Open-loop latency is measured from
    /// the *scheduled* arrival time, so it includes queueing delay.
    pub latency_us: Percentiles,
    /// Epochs the writer published during the window.
    pub epochs_published: u64,
    /// Injected events refused by admission control.
    pub events_rejected: u64,
    /// Mean epochs-behind-head across all reads.
    pub staleness_mean: f64,
    /// Worst epochs-behind-head observed.
    pub staleness_max: u64,
}

/// One cell of the staleness-vs-batching exhibit.
#[derive(Clone, Debug, Serialize)]
pub struct StalenessRow {
    /// The writer's coalescing window.
    pub batch_max: usize,
    /// Events the writer applied.
    pub events_applied: u64,
    /// Epochs published (smaller = more coalescing).
    pub epochs_published: u64,
    /// Mean epochs-behind-head across reads.
    pub staleness_mean: f64,
    /// Worst epochs-behind-head observed.
    pub staleness_max: u64,
}

/// The full E14 report, serialized to `results/serve.json`.
#[derive(Clone, Debug, Serialize)]
pub struct ServeReport {
    /// Mesh side length used for the service.
    pub side: u32,
    /// Closed-loop sweep over `WORKER_COUNTS` × `FAULT_RATES`.
    pub closed_loop: Vec<LoadRow>,
    /// Open-loop sweep over `WORKER_COUNTS` × `FAULT_RATES` at a fixed
    /// per-worker arrival rate.
    pub open_loop: Vec<LoadRow>,
    /// Staleness sweep over `BATCH_SIZES` under heavy churn.
    pub staleness: Vec<StalenessRow>,
}

/// Background fault churn: crashes fresh nodes and repairs old ones at
/// `rate` events/sec until `stop` is set, keeping the faulty pool bounded.
/// Events are emitted `burst` at a time (correlated failures) — with
/// `burst > 1` they land faster than one relabeling, which is what gives
/// the writer's coalescing window something to coalesce.
fn churn_loop(
    handle: ServiceHandle,
    side: u32,
    rate: f64,
    burst: usize,
    seed: u64,
    stop: Arc<AtomicBool>,
) {
    if rate <= 0.0 {
        return;
    }
    let interval = Duration::from_secs_f64(burst as f64 / rate);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pool: Vec<Coord> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        for _ in 0..burst {
            if pool.len() >= 8.max(2 * burst) {
                let victim = pool.remove(0);
                handle.repair_nodes(&[victim]);
            } else {
                let node = Coord::new(rng.gen_range(0..side as i32), rng.gen_range(0..side as i32));
                if !pool.contains(&node) {
                    handle.inject_faults(&[node]);
                    pool.push(node);
                }
            }
        }
        std::thread::sleep(interval);
    }
}

/// Runs one measurement cell and returns (latency samples in µs, requests).
#[allow(clippy::too_many_arguments)]
fn drive_workers(
    service: &MeshService,
    side: u32,
    workers: usize,
    open_loop_interval: Option<Duration>,
    dwell: Duration,
    seed: u64,
) -> (Vec<f64>, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..workers)
        .map(|w| {
            let mut handle = service.handle();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (w as u64) << 32);
                let mut samples = Vec::new();
                let mut next_arrival = Instant::now();
                while !stop.load(Ordering::Acquire) {
                    let src =
                        Coord::new(rng.gen_range(0..side as i32), rng.gen_range(0..side as i32));
                    let dst =
                        Coord::new(rng.gen_range(0..side as i32), rng.gen_range(0..side as i32));
                    let started = if let Some(interval) = open_loop_interval {
                        // Open loop: the query "arrives" at the scheduled
                        // instant whether or not we are ready; latency is
                        // measured from that instant (no coordinated
                        // omission).
                        let now = Instant::now();
                        if now < next_arrival {
                            std::thread::sleep(next_arrival - now);
                        }
                        let arrival = next_arrival;
                        next_arrival += interval;
                        arrival
                    } else {
                        Instant::now()
                    };
                    let _ = handle.route_len(src, dst);
                    samples.push(started.elapsed().as_nanos() as f64 / 1_000.0);
                }
                samples
            })
        })
        .collect();
    std::thread::sleep(dwell);
    stop.store(true, Ordering::Release);
    let mut all = Vec::new();
    for t in threads {
        all.extend(t.join().expect("load worker panicked"));
    }
    let requests = all.len() as u64;
    (all, requests)
}

/// Runs one (mode, workers, fault-rate) cell against a fresh service.
fn run_cell(
    side: u32,
    workers: usize,
    fault_rate: f64,
    open_loop_interval: Option<Duration>,
    dwell: Duration,
    seed: u64,
) -> LoadRow {
    let service = MeshService::start(
        Topology::mesh(side, side),
        [Coord::new(3, 3)],
        ServeConfig::default(),
    )
    .expect("service starts");

    let stop_churn = Arc::new(AtomicBool::new(false));
    let churn = {
        let handle = service.handle();
        let stop = stop_churn.clone();
        std::thread::spawn(move || churn_loop(handle, side, fault_rate, 1, seed ^ 0xC, stop))
    };

    let begun = Instant::now();
    let (samples, requests) =
        drive_workers(&service, side, workers, open_loop_interval, dwell, seed);
    let elapsed = begun.elapsed();

    stop_churn.store(true, Ordering::Release);
    churn.join().expect("churn thread panicked");
    service.quiesce(Duration::from_secs(30));
    let stats = service.shutdown();

    LoadRow {
        mode: if open_loop_interval.is_some() {
            "open".into()
        } else {
            "closed".into()
        },
        workers,
        fault_rate,
        duration_ms: elapsed.as_millis() as u64,
        requests,
        throughput: requests as f64 / elapsed.as_secs_f64(),
        latency_us: Percentiles::of(&samples),
        epochs_published: stats.epochs_published,
        events_rejected: stats.events_rejected,
        staleness_mean: stats.staleness_mean_epochs,
        staleness_max: stats.staleness_max_epochs,
    }
}

/// Runs one staleness cell: heavy churn, fixed readers, varying `batch_max`.
fn run_staleness_cell(side: u32, batch_max: usize, dwell: Duration, seed: u64) -> StalenessRow {
    let service = MeshService::start(
        Topology::mesh(side, side),
        [],
        ServeConfig {
            batch_max,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    let stop_churn = Arc::new(AtomicBool::new(false));
    let churn = {
        let handle = service.handle();
        let stop = stop_churn.clone();
        // 2 kHz in bursts of 32: each burst outpaces one relabeling, so
        // the coalescing window is what decides epoch churn.
        std::thread::spawn(move || churn_loop(handle, side, 2000.0, 32, seed ^ 0x5, stop))
    };
    drive_workers(&service, side, 2, None, dwell, seed);
    stop_churn.store(true, Ordering::Release);
    churn.join().expect("churn thread panicked");
    service.quiesce(Duration::from_secs(30));
    let stats = service.shutdown();
    StalenessRow {
        batch_max,
        events_applied: stats.events_applied,
        epochs_published: stats.epochs_published,
        staleness_mean: stats.staleness_mean_epochs,
        staleness_max: stats.staleness_max_epochs,
    }
}

/// Runs the full E14 sweep.
pub fn run(settings: &Settings) -> ServeReport {
    let side = settings.side.min(32);
    let dwell = Duration::from_millis(if settings.trials <= 5 { 150 } else { 400 });
    let mut closed_loop = Vec::new();
    let mut open_loop = Vec::new();
    for &workers in &WORKER_COUNTS {
        for &fault_rate in &FAULT_RATES {
            closed_loop.push(run_cell(
                side,
                workers,
                fault_rate,
                None,
                dwell,
                settings.seed ^ 0xE14,
            ));
            // Open loop: 2 kHz per worker — comfortably under capacity so
            // the schedule is feasible, but high enough that a writer
            // stall would show up as queueing delay in the tail.
            open_loop.push(run_cell(
                side,
                workers,
                fault_rate,
                Some(Duration::from_micros(500)),
                dwell,
                settings.seed ^ 0x0E14,
            ));
        }
    }
    let staleness = BATCH_SIZES
        .iter()
        .map(|&batch_max| run_staleness_cell(side, batch_max, dwell, settings.seed ^ 0xBA7C4))
        .collect();
    ServeReport {
        side,
        closed_loop,
        open_loop,
        staleness,
    }
}

/// Renders one load sweep (closed or open) as a table.
pub fn load_table(rows: &[LoadRow]) -> Table {
    let mut t = Table::new([
        "mode",
        "workers",
        "fault ev/s",
        "req/s",
        "p50 us",
        "p95 us",
        "p99 us",
        "epochs",
        "stale mean",
    ]);
    for r in rows {
        t.push_row([
            r.mode.clone(),
            r.workers.to_string(),
            format!("{:.0}", r.fault_rate),
            format!("{:.0}", r.throughput),
            format!("{:.1}", r.latency_us.p50),
            format!("{:.1}", r.latency_us.p95),
            format!("{:.1}", r.latency_us.p99),
            r.epochs_published.to_string(),
            format!("{:.3}", r.staleness_mean),
        ]);
    }
    t
}

/// Renders the staleness exhibit as a table.
pub fn staleness_table(rows: &[StalenessRow]) -> Table {
    let mut t = Table::new([
        "batch max",
        "events applied",
        "epochs",
        "events/epoch",
        "stale mean",
        "stale max",
    ]);
    for r in rows {
        let per_epoch = if r.epochs_published == 0 {
            0.0
        } else {
            r.events_applied as f64 / r.epochs_published as f64
        };
        t.push_row([
            r.batch_max.to_string(),
            r.events_applied.to_string(),
            r.epochs_published.to_string(),
            format!("{per_epoch:.2}"),
            format!("{:.3}", r.staleness_mean),
            r.staleness_max.to_string(),
        ]);
    }
    t
}

/// Result of the CI smoke exercise: a real TCP server under a short burst
/// of client load, then a clean shutdown.
#[derive(Clone, Debug, Serialize)]
pub struct SmokeReport {
    /// Requests served over TCP.
    pub served: u64,
    /// Epochs published while serving.
    pub epochs_published: u64,
    /// Wall-clock run in milliseconds.
    pub duration_ms: u64,
}

/// Starts the TCP service, hammers it with framed clients for roughly
/// `duration`, injects a few faults mid-run, and shuts down cleanly.
pub fn smoke(duration: Duration, seed: u64) -> SmokeReport {
    use ocp_serve::{Client, Request, Response, TcpServer};
    let side = 16u32;
    let service = MeshService::start(
        Topology::mesh(side, side),
        [Coord::new(4, 4)],
        ServeConfig::default(),
    )
    .expect("service starts");
    let server = TcpServer::start(&service, "127.0.0.1:0").expect("tcp server binds");
    let addr = server.local_addr();

    let begun = Instant::now();
    let clients: Vec<_> = (0..2)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut rng = SmallRng::seed_from_u64(seed ^ w);
                while begun.elapsed() < duration {
                    let request = Request::RouteLen {
                        src: Coord::new(
                            rng.gen_range(0..side as i32),
                            rng.gen_range(0..side as i32),
                        ),
                        dst: Coord::new(
                            rng.gen_range(0..side as i32),
                            rng.gen_range(0..side as i32),
                        ),
                    };
                    match client.request(&request) {
                        Ok(Response::RouteLen(_)) => {}
                        Ok(other) => panic!("unexpected response: {other:?}"),
                        Err(e) => panic!("smoke client failed: {e}"),
                    }
                }
            })
        })
        .collect();

    // Mid-run churn over the wire, like a real operator would inject it.
    let mut admin = Client::connect(addr).expect("admin connects");
    std::thread::sleep(duration / 4);
    match admin
        .request(&Request::InjectFaults {
            nodes: vec![Coord::new(8, 8), Coord::new(9, 8)],
        })
        .expect("inject over tcp")
    {
        Response::Injected(ack) => assert_eq!(ack.rejected, 0),
        other => panic!("unexpected response: {other:?}"),
    }

    for client in clients {
        client.join().expect("smoke client panicked");
    }
    drop(admin);
    let served = server.shutdown();
    service.quiesce(Duration::from_secs(10));
    let stats = service.shutdown();
    SmokeReport {
        served,
        epochs_published: stats.epochs_published,
        duration_ms: begun.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_every_cell() {
        let mut settings = Settings::quick();
        settings.side = 16;
        let report = run(&settings);
        assert_eq!(
            report.closed_loop.len(),
            WORKER_COUNTS.len() * FAULT_RATES.len()
        );
        assert_eq!(report.open_loop.len(), report.closed_loop.len());
        assert_eq!(report.staleness.len(), BATCH_SIZES.len());
        for row in report.closed_loop.iter().chain(&report.open_loop) {
            assert!(row.requests > 0, "{row:?} served nothing");
            assert!(row.latency_us.p50 > 0.0);
            assert!(row.latency_us.p99 >= row.latency_us.p50);
        }
        // Churn cells must actually publish epochs.
        assert!(report
            .closed_loop
            .iter()
            .any(|r| r.fault_rate > 0.0 && r.epochs_published > 0));
        // Larger coalescing windows publish no more epochs than batch=1.
        let first = &report.staleness[0];
        let last = report.staleness.last().unwrap();
        assert!(last.epochs_published <= first.epochs_published.max(1));
    }

    #[test]
    fn smoke_serves_traffic_and_shuts_down() {
        let report = smoke(Duration::from_millis(300), 11);
        assert!(report.served > 0, "TCP server served nothing");
    }
}
