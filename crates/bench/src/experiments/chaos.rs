//! E13: chaos robustness.
//!
//! The paper's protocols are monotone and confluent, which is what makes
//! them self-stabilizing under message loss: a dropped status broadcast is
//! repaired by the chaos executor's heartbeat retransmissions, and the
//! fixpoint is unchanged. This experiment quantifies the price of that
//! robustness — extra virtual time and extra messages relative to the
//! reliable baseline — as the per-link drop rate `p` sweeps over
//! {0, 0.01, 0.05, 0.1, 0.2} (with duplication and reordering at `p/2` to
//! keep every anomaly class exercised).

use super::Settings;
use ocp_analysis::Table;
use ocp_core::labeling::enablement::EnablementProtocol;
use ocp_core::labeling::safety::{SafetyProtocol, SafetyRule};
use ocp_core::prelude::*;
use ocp_distsim::{run_chaos, ChaosConfig, Executor};
use ocp_mesh::{Topology, TopologyKind};
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

/// The swept per-link drop rates.
pub const DROP_RATES: [f64; 5] = [0.0, 0.01, 0.05, 0.1, 0.2];

/// One row: both labeling phases under one drop rate, versus the reliable
/// sequential fixpoint.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosRow {
    /// Per-link drop probability (duplicate/reorder run at half this).
    pub drop: f64,
    /// Trials run.
    pub trials: u32,
    /// Trials whose phase-1 *and* phase-2 fixpoints matched the sequential
    /// executor byte-for-byte (must equal `trials`).
    pub matching: u32,
    /// Mean virtual completion time of phase 1.
    pub virtual_time: f64,
    /// Mean messages delivered by phase 1 (excludes dropped ones).
    pub messages: f64,
    /// Mean heartbeat retransmissions issued by phase 1.
    pub retransmissions: f64,
    /// Mean injected anomalies (drops + duplicates + reorders) in phase 1.
    pub anomalies: f64,
    /// `virtual_time / baseline - 1` against the `p = 0` row.
    pub time_overhead: f64,
    /// `messages / baseline - 1` against the `p = 0` row.
    pub message_overhead: f64,
}

/// Runs the sweep on a `side`×`side` mesh (paper scale: 100×100).
pub fn run(settings: &Settings) -> Vec<ChaosRow> {
    let side = settings.side;
    let topology = Topology::new(TopologyKind::Mesh, side, side);
    let f = (side as usize) / 2;
    // The DES replays every heartbeat; cap trials so the default `all`
    // invocation stays minutes, not hours, at the paper's 100x100 scale.
    let trials = settings.trials.min(10);
    let mut rows = Vec::new();
    for drop in DROP_RATES {
        let mut row = ChaosRow {
            drop,
            trials,
            matching: 0,
            virtual_time: 0.0,
            messages: 0.0,
            retransmissions: 0.0,
            anomalies: 0.0,
            time_overhead: 0.0,
            message_overhead: 0.0,
        };
        for trial in 0..trials {
            let mut rng = SmallRng::seed_from_u64(
                settings.seed ^ 0xE13 ^ (drop.to_bits() >> 32) ^ trial as u64,
            );
            let faults = uniform_faults(topology, f, &mut rng);
            let map = FaultMap::new(topology, faults);

            // Reliable sequential reference.
            let reference = run_pipeline(
                &map,
                &PipelineConfig {
                    engine: ocp_core::LabelEngine::Lockstep(Executor::Sequential),
                    ..PipelineConfig::default()
                },
            );

            let chaos = ChaosConfig::uniform(
                settings.seed ^ 0xC4A05 ^ trial as u64,
                drop,
                drop / 2.0,
                drop / 2.0,
            );
            let p1 = SafetyProtocol::new(&map, SafetyRule::BothDimensions);
            let a1 = run_chaos(
                &p1,
                settings.seed ^ trial as u64,
                4,
                500_000_000,
                &chaos,
                None,
            );
            assert!(
                a1.converged,
                "drop {drop} trial {trial}: phase 1 hit the event cap"
            );
            let p2 = EnablementProtocol::new(&map, &a1.states);
            let a2 = run_chaos(
                &p2,
                settings.seed ^ trial as u64 ^ 1,
                4,
                500_000_000,
                &chaos,
                None,
            );
            assert!(
                a2.converged,
                "drop {drop} trial {trial}: phase 2 hit the event cap"
            );

            if a1.states == reference.safety && a2.states == reference.activation {
                row.matching += 1;
            }
            let n = trials as f64;
            row.virtual_time += a1.virtual_time as f64 / n;
            row.messages += a1.messages_delivered as f64 / n;
            row.retransmissions += a1.chaos.retransmissions as f64 / n;
            row.anomalies += a1.chaos.anomalies() as f64 / n;
        }
        rows.push(row);
    }
    // Overheads against the p = 0 baseline (first row by construction).
    let (base_time, base_msgs) = (rows[0].virtual_time, rows[0].messages);
    for row in &mut rows {
        if base_time > 0.0 {
            row.time_overhead = row.virtual_time / base_time - 1.0;
        }
        if base_msgs > 0.0 {
            row.message_overhead = row.messages / base_msgs - 1.0;
        }
    }
    rows
}

/// Renders the sweep as a table.
pub fn table(rows: &[ChaosRow]) -> Table {
    let mut t = Table::new([
        "drop rate",
        "fixpoint matches",
        "virtual time",
        "msgs (p1)",
        "retransmits",
        "time overhead",
        "msg overhead",
    ]);
    for r in rows {
        t.push_row([
            format!("{:.2}", r.drop),
            format!("{}/{}", r.matching, r.trials),
            format!("{:.0}", r.virtual_time),
            format!("{:.0}", r.messages),
            format!("{:.0}", r.retransmissions),
            format!("{:+.1}%", r.time_overhead * 100.0),
            format!("{:+.1}%", r.message_overhead * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_drop_rate_reaches_the_sequential_fixpoint() {
        let mut settings = Settings::quick();
        settings.trials = 2;
        settings.side = 20;
        let rows = run(&settings);
        assert_eq!(rows.len(), DROP_RATES.len());
        for r in &rows {
            assert_eq!(
                r.matching, r.trials,
                "drop {}: chaos diverged from the sequential fixpoint",
                r.drop
            );
        }
        // The reliable row pays no overhead; lossy rows pay some.
        assert_eq!(rows[0].time_overhead, 0.0);
        assert_eq!(rows[0].anomalies, 0.0);
        let last = rows.last().unwrap();
        assert!(last.anomalies > 0.0, "p=0.2 must inject anomalies");
        // Note: delivery and retransmission counts are NOT asserted — a
        // dropped broadcast whose content the receiver already knows is
        // never retransmitted (the heartbeat no-ops), so on sparse fault
        // maps a lossy run can deliver fewer messages and repair nothing.
    }
}
