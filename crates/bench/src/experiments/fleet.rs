//! E19: fleet serving at connection scale — the reactor transport and
//! the multi-tenant fleet under thousands of concurrent pipelined
//! connections.
//!
//! Three exhibits:
//!
//! * **Connection sweep** — closed- and open-loop load against a
//!   [`FleetFront`] (reactor event loop, framing v2) across connections
//!   × tenants × pipeline depth. Every reply is byte-compared against
//!   the in-process oracle (the same `FleetHandle` dispatch that
//!   produced it), so throughput numbers only count *verified* replies.
//! * **Transport comparison** — `ocp-serve`'s two TCP transports at 1k
//!   connections over the same `MeshService`: the pinned blocking
//!   thread-per-connection reference (framing v1, one request per round
//!   trip — what the old `Client` does) vs one reactor thread + worker
//!   pool multiplexing pipelined v2 frames. The acceptance bar is
//!   reactor ≥ 2× blocking.
//! * **Sustain** — ≥ 10,000 concurrent pipelined connections across the
//!   fleet, every connection served at least one verified reply inside
//!   the window, zero byte mismatches.
//!
//! The load driver is a single-threaded epoll client built on the same
//! [`ocp_reactor::Poll`] shim the server uses: nonblocking
//! `std::net::TcpStream`s, per-connection [`FrameDecoder`]s, and
//! interest-managed write buffers. One thread comfortably drives tens
//! of thousands of sockets, which is the point of the experiment.

use super::Settings;
use ocp_analysis::Table;
use ocp_fleet::{Fleet, FleetConfig, FleetFront, FleetRequest, FleetResponse, TenantSpec};
use ocp_mesh::{Coord, Topology};
use ocp_reactor::{
    encode_v1_into, encode_v2_into, sys, DecodedFrame, Events, FrameDecoder, Interest, Poll,
    ReactorConfig, Token,
};
use ocp_serve::{dispatch_bytes, CertMode, MeshService, Request, ServeConfig, TcpFront, Transport};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// File-descriptor headroom requested before mass-connection runs.
/// When the hard limit cannot move (containers often drop
/// `CAP_SYS_RESOURCE`), the sustain exhibit splits the driver into a
/// child process so neither side needs more than `connections` + slack
/// descriptors.
const NOFILE_WANT: u64 = 60_000;

/// A wire request plus the oracle's reply bytes, shared across the
/// driver connections that repeat it.
type RequestPair = (Arc<Vec<u8>>, Arc<Vec<u8>>);

/// A tenant's name with its [`RequestPair`].
type TenantWorkload = (String, Arc<Vec<u8>>, Arc<Vec<u8>>);

/// Which framing the driver speaks.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Wire {
    /// Length-prefixed frames, replies in order (the legacy protocol).
    V1,
    /// Magic handshake + correlation ids, replies in any order.
    V2,
}

// ---------------------------------------------------------------------
// The mass-connection driver
// ---------------------------------------------------------------------

struct DriverConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbuf: Vec<u8>,
    outpos: usize,
    inflight: usize,
    completed: u64,
    mismatches: u64,
    /// The request payload this connection repeats.
    request: Arc<Vec<u8>>,
    /// The oracle's reply bytes; every received payload must equal this.
    expected: Arc<Vec<u8>>,
    next_corr: u64,
    wants_write: bool,
    closed: bool,
}

impl DriverConn {
    fn enqueue(&mut self, wire: Wire) {
        match wire {
            Wire::V1 => encode_v1_into(&mut self.outbuf, &self.request),
            Wire::V2 => {
                encode_v2_into(&mut self.outbuf, self.next_corr, &self.request);
                self.next_corr = self.next_corr.wrapping_add(1);
            }
        }
        self.inflight += 1;
    }
}

/// Outcome of one driver run.
struct DriveOutcome {
    completed: u64,
    mismatches: u64,
    /// Connections that completed at least one verified reply.
    conns_served: usize,
    /// Connections the peer closed or errored mid-run.
    conns_lost: usize,
    elapsed: Duration,
}

struct MassDriver {
    poll: Poll,
    conns: Vec<DriverConn>,
    wire: Wire,
    scratch: Vec<u8>,
}

impl MassDriver {
    /// Connects `specs.len()` sockets to `addr` (one driver connection
    /// per spec), completing the v2 handshake eagerly while the socket
    /// is still blocking.
    fn connect(addr: SocketAddr, wire: Wire, specs: &[RequestPair]) -> std::io::Result<MassDriver> {
        let poll = Poll::new()?;
        let mut conns = Vec::with_capacity(specs.len());
        for (i, (request, expected)) in specs.iter().enumerate() {
            let mut stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            if wire == Wire::V2 {
                stream.write_all(&ocp_reactor::MAGIC)?;
                let mut echo = [0u8; 4];
                stream.read_exact(&mut echo)?;
                if echo != ocp_reactor::MAGIC {
                    return Err(std::io::Error::other("server did not echo the v2 magic"));
                }
            }
            stream.set_nonblocking(true)?;
            poll.register(stream.as_raw_fd(), Token(i), Interest::READABLE)?;
            conns.push(DriverConn {
                stream,
                decoder: if wire == Wire::V2 {
                    FrameDecoder::new_v2()
                } else {
                    FrameDecoder::new()
                },
                outbuf: Vec::new(),
                outpos: 0,
                inflight: 0,
                completed: 0,
                mismatches: 0,
                request: request.clone(),
                expected: expected.clone(),
                next_corr: 1,
                wants_write: false,
                closed: false,
            });
        }
        Ok(MassDriver {
            poll,
            conns,
            wire,
            scratch: vec![0u8; 64 * 1024],
        })
    }

    /// Closed-loop run: every connection keeps `depth` requests in
    /// flight until `window` elapses, then drains the remainder.
    fn run_closed(&mut self, depth: usize, window: Duration) -> DriveOutcome {
        let start = Instant::now();
        let deadline = start + window;
        for i in 0..self.conns.len() {
            for _ in 0..depth {
                self.conns[i].enqueue(self.wire);
            }
            self.flush(i);
        }
        let mut events = Events::with_capacity(1024);
        let drain_deadline = deadline + Duration::from_secs(10);
        loop {
            let refill = Instant::now() < deadline;
            if !refill && self.conns.iter().all(|c| c.closed || c.inflight == 0) {
                break;
            }
            if Instant::now() > drain_deadline {
                break;
            }
            self.poll.poll(&mut events, Some(100)).expect("driver poll");
            for event in events.iter() {
                let idx = event.token().0;
                if event.is_readable() || event.is_error() {
                    self.on_readable(idx, depth, refill);
                }
                if event.is_writable() {
                    self.flush(idx);
                }
            }
        }
        self.outcome(start.elapsed())
    }

    /// Open-loop run: requests are issued on a fixed global schedule of
    /// `rate` requests/second spread round-robin over connections,
    /// regardless of completions (bounded by `max_inflight` per
    /// connection so a stalled server cannot buffer unboundedly).
    fn run_open(
        &mut self,
        rate: f64,
        window: Duration,
        max_inflight: usize,
    ) -> (DriveOutcome, u64) {
        let start = Instant::now();
        let deadline = start + window;
        let mut events = Events::with_capacity(1024);
        let mut scheduled: u64 = 0;
        let mut sent: u64 = 0;
        let mut cursor = 0usize;
        let drain_deadline = deadline + Duration::from_secs(10);
        loop {
            let now = Instant::now();
            if now < deadline {
                let due = (now.duration_since(start).as_secs_f64() * rate) as u64;
                while scheduled < due {
                    // Round-robin; skip connections at their cap (those
                    // arrivals are *shed*, which the delivery ratio
                    // reports honestly).
                    let mut placed = false;
                    for _ in 0..self.conns.len() {
                        let i = cursor % self.conns.len();
                        cursor += 1;
                        let conn = &mut self.conns[i];
                        if !conn.closed && conn.inflight < max_inflight {
                            conn.enqueue(self.wire);
                            self.flush(i);
                            placed = true;
                            break;
                        }
                    }
                    scheduled += 1;
                    if placed {
                        sent += 1;
                    }
                }
            } else if now > drain_deadline || self.conns.iter().all(|c| c.closed || c.inflight == 0)
            {
                break;
            }
            self.poll.poll(&mut events, Some(1)).expect("driver poll");
            for event in events.iter() {
                let idx = event.token().0;
                if event.is_readable() || event.is_error() {
                    self.on_readable(idx, 0, false);
                }
                if event.is_writable() {
                    self.flush(idx);
                }
            }
        }
        (self.outcome(start.elapsed()), sent)
    }

    fn on_readable(&mut self, idx: usize, depth: usize, refill: bool) {
        let mut finished = 0usize;
        {
            let conn = &mut self.conns[idx];
            if conn.closed {
                return;
            }
            loop {
                match conn.stream.read(&mut self.scratch) {
                    Ok(0) => {
                        conn.closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.decoder.extend(&self.scratch[..n]);
                        loop {
                            match conn.decoder.next_frame() {
                                Ok(Some(frame)) => {
                                    let payload = match &frame {
                                        DecodedFrame::V1 { payload } => &payload[..],
                                        DecodedFrame::V2 { payload, .. } => &payload[..],
                                        DecodedFrame::Hello => continue,
                                    };
                                    if payload != conn.expected.as_slice() {
                                        conn.mismatches += 1;
                                    }
                                    conn.completed += 1;
                                    conn.inflight = conn.inflight.saturating_sub(1);
                                    finished += 1;
                                }
                                Ok(None) => break,
                                Err(e) => panic!("driver frame error: {e:?}"),
                            }
                        }
                        if n < self.scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.closed = true;
                        break;
                    }
                }
            }
            if refill && !conn.closed {
                for _ in 0..finished.min(depth) {
                    if conn.inflight < depth {
                        conn.enqueue(self.wire);
                    }
                }
            }
        }
        if finished > 0 {
            self.flush(idx);
        }
    }

    /// Writes as much buffered output as the socket accepts, keeping
    /// WRITABLE interest only while bytes remain (level-triggered epoll
    /// would spin otherwise).
    fn flush(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        if conn.closed {
            return;
        }
        while conn.outpos < conn.outbuf.len() {
            match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                Ok(0) => {
                    conn.closed = true;
                    return;
                }
                Ok(n) => conn.outpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.closed = true;
                    return;
                }
            }
        }
        if conn.outpos >= conn.outbuf.len() {
            conn.outbuf.clear();
            conn.outpos = 0;
        } else if conn.outpos >= 64 * 1024 {
            conn.outbuf.drain(..conn.outpos);
            conn.outpos = 0;
        }
        let want_write = conn.outpos < conn.outbuf.len();
        if want_write != conn.wants_write {
            conn.wants_write = want_write;
            let interest = if want_write {
                Interest::READABLE.with(Interest::WRITABLE)
            } else {
                Interest::READABLE
            };
            let _ = self
                .poll
                .reregister(conn.stream.as_raw_fd(), Token(idx), interest);
        }
    }

    fn outcome(&self, elapsed: Duration) -> DriveOutcome {
        DriveOutcome {
            completed: self.conns.iter().map(|c| c.completed).sum(),
            mismatches: self.conns.iter().map(|c| c.mismatches).sum(),
            conns_served: self.conns.iter().filter(|c| c.completed > 0).count(),
            conns_lost: self.conns.iter().filter(|c| c.closed).count(),
            elapsed,
        }
    }
}

// ---------------------------------------------------------------------
// Out-of-process driving
// ---------------------------------------------------------------------
//
// The sustain exhibit holds client *and* server ends of every
// connection; at 10k connections that is ~20k descriptors — more than
// one process gets when the container pins RLIMIT_NOFILE. Load
// generators are separate processes in real deployments anyway, so the
// sustain driver runs as a re-exec of the `repro` binary (the hidden
// `fleet-driver` command): the parent keeps the server's ~10k accepted
// sockets, the child keeps the ~10k client sockets, and the child
// reports its outcome as one JSON object on stdout.

/// One request/expected-reply byte pair, as shipped to the driver child.
#[derive(Serialize, Deserialize)]
struct DriverPair {
    request: Vec<u8>,
    expected: Vec<u8>,
}

/// Everything the driver child needs to run one closed-loop exhibit.
#[derive(Serialize, Deserialize)]
struct DriverSpec {
    addr: String,
    v2: bool,
    connections: usize,
    depth: usize,
    window_ms: u64,
    pairs: Vec<DriverPair>,
}

/// The child's outcome, reported back over stdout.
#[derive(Serialize, Deserialize)]
struct DriverOutcomeWire {
    completed: u64,
    mismatches: u64,
    conns_served: usize,
    conns_lost: usize,
    elapsed_ms: u64,
}

/// Entry point for the hidden `repro -- fleet-driver --in <spec>`
/// command: runs the closed-loop driver described by the spec file and
/// returns the outcome as a JSON string (the child prints it to stdout,
/// which must carry nothing else).
pub fn drive_spec_file(path: &Path) -> String {
    let _ = sys::raise_nofile_limit(NOFILE_WANT);
    let bytes = std::fs::read(path).expect("read driver spec");
    let spec: DriverSpec = serde_json::from_slice(&bytes).expect("parse driver spec");
    let addr: SocketAddr = spec.addr.parse().expect("driver spec addr");
    let wire = if spec.v2 { Wire::V2 } else { Wire::V1 };
    let pairs: Vec<RequestPair> = spec
        .pairs
        .into_iter()
        .map(|p| (Arc::new(p.request), Arc::new(p.expected)))
        .collect();
    let specs: Vec<_> = (0..spec.connections)
        .map(|i| pairs[i % pairs.len()].clone())
        .collect();
    let mut driver = MassDriver::connect(addr, wire, &specs).expect("driver child connect");
    let outcome = driver.run_closed(spec.depth, Duration::from_millis(spec.window_ms));
    serde_json::to_string(&DriverOutcomeWire {
        completed: outcome.completed,
        mismatches: outcome.mismatches,
        conns_served: outcome.conns_served,
        conns_lost: outcome.conns_lost,
        elapsed_ms: outcome.elapsed.as_millis() as u64,
    })
    .expect("serialize driver outcome")
}

/// Runs a closed-loop drive in a re-exec'd child process (see the
/// module note above on descriptor budgets).
fn drive_in_child(
    addr: SocketAddr,
    wire: Wire,
    tenant_specs: &[TenantWorkload],
    connections: usize,
    depth: usize,
    window: Duration,
) -> DriveOutcome {
    let spec = DriverSpec {
        addr: addr.to_string(),
        v2: wire == Wire::V2,
        connections,
        depth,
        window_ms: window.as_millis() as u64,
        pairs: tenant_specs
            .iter()
            .map(|(_, request, expected)| DriverPair {
                request: request.as_ref().clone(),
                expected: expected.as_ref().clone(),
            })
            .collect(),
    };
    let path = std::env::temp_dir().join(format!("ocp-fleet-driver-{}.json", std::process::id()));
    std::fs::write(&path, serde_json::to_vec(&spec).expect("serialize spec"))
        .expect("write driver spec");
    let exe = std::env::current_exe().expect("current exe");
    let output = std::process::Command::new(exe)
        .arg("fleet-driver")
        .arg("--in")
        .arg(&path)
        .output()
        .expect("spawn driver child");
    let _ = std::fs::remove_file(&path);
    assert!(
        output.status.success(),
        "driver child failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let wire_out: DriverOutcomeWire =
        serde_json::from_slice(&output.stdout).expect("parse driver outcome");
    DriveOutcome {
        completed: wire_out.completed,
        mismatches: wire_out.mismatches,
        conns_served: wire_out.conns_served,
        conns_lost: wire_out.conns_lost,
        elapsed: Duration::from_millis(wire_out.elapsed_ms),
    }
}

// ---------------------------------------------------------------------
// Workload construction
// ---------------------------------------------------------------------

/// Builds a fleet with `tenants` tenants (varied fault sets, shared
/// 16×16 shape) and returns, per tenant, the wire request and the
/// oracle's reply bytes.
fn fleet_with_tenants(tenants: usize) -> (Fleet, Vec<TenantWorkload>) {
    let config = FleetConfig {
        shards: 8,
        max_tenants: tenants.max(64),
        // The driver hammers a few tenants as hard as it can; admission
        // experiments live in the fleet crate's tests, not here.
        tenant_burst: u64::MAX / 2,
        tenant_rate: u64::MAX / 2,
        max_connections: 20_000,
        max_inflight_bytes: 1 << 30,
        ..FleetConfig::default()
    };
    let fleet = Fleet::new(config).expect("in-memory fleet");
    let handle = fleet.handle();
    let mut specs = Vec::with_capacity(tenants);
    for i in 0..tenants {
        let name = format!("tenant-{i}");
        let spec = TenantSpec {
            topology: Topology::mesh(16, 16),
            initial_faults: vec![Coord::new((i % 8) as i32 + 2, 5)],
            rule: ocp_core::prelude::SafetyRule::BothDimensions,
            cert_mode: CertMode::Enforce,
        };
        match handle.dispatch(FleetRequest::CreateTenant {
            name: name.clone(),
            spec,
        }) {
            FleetResponse::Created { .. } => {}
            other => panic!("tenant creation failed: {other:?}"),
        }
        // Odd tenants drive the batched hop-count endpoint (the wide
        // engine's wire path, pairs mixing detours, an error outcome,
        // and a self-pair); even tenants the singleton path. Every
        // reply of both shapes is oracle-verified byte-for-byte.
        let inner = if i % 2 == 1 {
            Request::RouteLenBatch {
                pairs: vec![
                    (Coord::new(0, 0), Coord::new(15, 15)),
                    (Coord::new(15, 0), Coord::new(0, 15)),
                    (Coord::new((i % 8) as i32 + 2, 5), Coord::new(0, 0)),
                    (Coord::new(3, 3), Coord::new(3, 3)),
                ],
            }
        } else {
            Request::RouteLen {
                src: Coord::new(0, 0),
                dst: Coord::new(15, 15),
            }
        };
        let request = FleetRequest::Tenant {
            tenant: name.clone(),
            request: inner,
        };
        let payload = serde_json::to_vec(&request).expect("serialize");
        // The oracle: the same dispatch the wire path runs, in-process.
        // A static fleet makes the reply a pure function of the request.
        let expected = handle.dispatch_bytes(&payload);
        specs.push((name, Arc::new(payload), Arc::new(expected)));
    }
    (fleet, specs)
}

/// Spreads the per-tenant specs across `connections` driver slots
/// round-robin.
fn conn_specs(tenant_specs: &[TenantWorkload], connections: usize) -> Vec<RequestPair> {
    (0..connections)
        .map(|i| {
            let (_, request, expected) = &tenant_specs[i % tenant_specs.len()];
            (request.clone(), expected.clone())
        })
        .collect()
}

// ---------------------------------------------------------------------
// Rows and report
// ---------------------------------------------------------------------

/// One measured cell of the fleet load sweep.
#[derive(Clone, Debug, Serialize)]
pub struct FleetLoadRow {
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// `"reactor-v2"`, `"reactor-v1"`, or `"blocking-v1"`.
    pub transport: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Tenants the load is spread over (1 for the serve comparison).
    pub tenants: usize,
    /// Pipelined requests in flight per connection.
    pub depth: usize,
    /// Wall-clock measurement window in milliseconds.
    pub duration_ms: u64,
    /// Verified replies received.
    pub requests: u64,
    /// Verified replies per second.
    pub throughput: f64,
    /// Replies whose bytes differed from the in-process oracle
    /// (must be zero; kept in the record so drift is visible).
    pub mismatches: u64,
    /// Open loop only: offered arrivals per second (0 for closed).
    pub offered_rate: f64,
    /// Open loop only: completed / issued (1.0 for closed).
    pub delivery_ratio: f64,
}

/// The 10k-connection sustain exhibit.
#[derive(Clone, Debug, Serialize)]
pub struct SustainRow {
    /// Concurrent pipelined connections held open.
    pub connections: usize,
    /// Tenants the connections are spread over.
    pub tenants: usize,
    /// Verified replies completed inside the window.
    pub completed: u64,
    /// Byte mismatches vs the oracle (must be 0).
    pub mismatches: u64,
    /// Connections that completed ≥ 1 verified reply (must equal
    /// `connections`).
    pub conns_served: usize,
    /// Connections lost to errors or early close (must be 0).
    pub conns_lost: usize,
    /// Window length in milliseconds.
    pub duration_ms: u64,
}

/// Everything E19 measures.
#[derive(Clone, Debug, Serialize)]
pub struct FleetReport {
    /// Closed/open-loop sweep over connections × tenants × depth.
    pub sweep: Vec<FleetLoadRow>,
    /// Blocking vs reactor serve transports at 1k connections.
    pub comparison: Vec<FleetLoadRow>,
    /// Reactor throughput / blocking throughput at 1k connections.
    pub speedup_at_1k: f64,
    /// The mass-connection sustain run.
    pub sustain: SustainRow,
}

/// Builds a row; `open` carries the open-loop (offered rate, issued
/// count) pair, `None` for closed-loop rows.
fn sweep_row(
    mode: &str,
    transport: &str,
    connections: usize,
    tenants: usize,
    depth: usize,
    outcome: &DriveOutcome,
    open: Option<(f64, u64)>,
) -> FleetLoadRow {
    let secs = outcome.elapsed.as_secs_f64();
    let (offered_rate, issued) = open.unwrap_or((0.0, 0));
    FleetLoadRow {
        mode: mode.into(),
        transport: transport.into(),
        connections,
        tenants,
        depth,
        duration_ms: outcome.elapsed.as_millis() as u64,
        requests: outcome.completed,
        throughput: if secs > 0.0 {
            outcome.completed as f64 / secs
        } else {
            0.0
        },
        mismatches: outcome.mismatches,
        offered_rate,
        delivery_ratio: if issued > 0 {
            outcome.completed as f64 / issued as f64
        } else {
            1.0
        },
    }
}

// ---------------------------------------------------------------------
// The exhibits
// ---------------------------------------------------------------------

/// Measures one closed-loop cell against a fleet front.
fn fleet_closed_cell(
    addr: SocketAddr,
    tenant_specs: &[TenantWorkload],
    connections: usize,
    depth: usize,
    window: Duration,
) -> FleetLoadRow {
    let specs = conn_specs(tenant_specs, connections);
    let mut driver = MassDriver::connect(addr, Wire::V2, &specs).expect("driver connect");
    let outcome = driver.run_closed(depth, window);
    sweep_row(
        "closed",
        "reactor-v2",
        connections,
        tenant_specs.len(),
        depth,
        &outcome,
        None,
    )
}

/// The full E19 sweep + comparison + sustain.
pub fn run(settings: &Settings) -> FleetReport {
    let _ = sys::raise_nofile_limit(NOFILE_WANT);
    let quick = settings.side < 100;
    let window = Duration::from_millis(if quick { 500 } else { 1500 });

    // -- sweep: connections × depth at 4 tenants, plus a tenant axis --
    let (fleet, tenant_specs) = fleet_with_tenants(4);
    let front = FleetFront::start(
        fleet.handle(),
        ocp_reactor::loopback(),
        ReactorConfig::default(),
    )
    .expect("fleet front");
    let addr = front.local_addr();

    let mut sweep = Vec::new();
    let conn_axis: &[usize] = if quick {
        &[64, 256]
    } else {
        &[256, 1024, 4096]
    };
    let depth_axis: &[usize] = &[1, 8, 32];
    for &connections in conn_axis {
        for &depth in depth_axis {
            sweep.push(fleet_closed_cell(
                addr,
                &tenant_specs,
                connections,
                depth,
                window,
            ));
        }
    }
    // Open loop at the middle connection count: offered rates bracketing
    // the closed-loop capacity observed above.
    let mid_conns = conn_axis[conn_axis.len() / 2];
    let closed_rate = sweep
        .iter()
        .filter(|r| r.connections == mid_conns && r.depth == 8)
        .map(|r| r.throughput)
        .next()
        .unwrap_or(10_000.0);
    for factor in [0.5, 0.9] {
        let rate = closed_rate * factor;
        let specs = conn_specs(&tenant_specs, mid_conns);
        let mut driver = MassDriver::connect(addr, Wire::V2, &specs).expect("driver connect");
        let (outcome, issued) = driver.run_open(rate, window, 64);
        sweep.push(sweep_row(
            "open",
            "reactor-v2",
            mid_conns,
            tenant_specs.len(),
            64,
            &outcome,
            Some((rate, issued)),
        ));
    }
    // Tenant axis at fixed connections/depth.
    front.shutdown();
    fleet.shutdown(Duration::from_secs(5));
    for tenants in [1usize, 16] {
        let (fleet, tenant_specs) = fleet_with_tenants(tenants);
        let front = FleetFront::start(
            fleet.handle(),
            ocp_reactor::loopback(),
            ReactorConfig::default(),
        )
        .expect("fleet front");
        sweep.push(fleet_closed_cell(
            front.local_addr(),
            &tenant_specs,
            conn_axis[conn_axis.len() - 1],
            8,
            window,
        ));
        front.shutdown();
        fleet.shutdown(Duration::from_secs(5));
    }

    // -- transport comparison at 1k connections --
    let comparison_conns = if quick { 128 } else { 1000 };
    let (comparison, speedup_at_1k) = transport_comparison(comparison_conns, window);

    // -- sustain --
    let sustain_conns = if quick { 1024 } else { 10_000 };
    let sustain = sustain_exhibit(
        sustain_conns,
        8,
        Duration::from_secs(if quick { 2 } else { 5 }),
    );

    FleetReport {
        sweep,
        comparison,
        speedup_at_1k,
        sustain,
    }
}

/// Blocking vs reactor serve transports over the same `MeshService` at
/// `connections` concurrent connections. Blocking is measured the way
/// its `Client` uses it (framing v1, one request per round trip);
/// the reactor is measured with its pipelined v2 multiplexing (depth 8)
/// — the feature the event loop exists to provide.
fn transport_comparison(connections: usize, window: Duration) -> (Vec<FleetLoadRow>, f64) {
    let service = MeshService::start(Topology::mesh(16, 16), [], ServeConfig::default())
        .expect("comparison service");
    let request = Request::RouteLen {
        src: Coord::new(0, 0),
        dst: Coord::new(15, 15),
    };
    let payload = Arc::new(serde_json::to_vec(&request).expect("serialize"));
    let mut oracle = service.handle();
    let expected = Arc::new(dispatch_bytes(&mut oracle, &payload));
    let specs: Vec<_> = (0..connections)
        .map(|_| (payload.clone(), expected.clone()))
        .collect();

    let mut rows = Vec::new();

    let blocking =
        TcpFront::start(&service, "127.0.0.1:0", Transport::Blocking).expect("blocking front");
    let mut driver =
        MassDriver::connect(blocking.local_addr(), Wire::V1, &specs).expect("driver connect");
    let outcome = driver.run_closed(1, window);
    rows.push(sweep_row(
        "closed",
        "blocking-v1",
        connections,
        1,
        1,
        &outcome,
        None,
    ));
    drop(driver);
    blocking.shutdown();

    let reactor =
        TcpFront::start(&service, "127.0.0.1:0", Transport::Reactor).expect("reactor front");
    let mut driver =
        MassDriver::connect(reactor.local_addr(), Wire::V2, &specs).expect("driver connect");
    let outcome = driver.run_closed(8, window);
    rows.push(sweep_row(
        "closed",
        "reactor-v2",
        connections,
        1,
        8,
        &outcome,
        None,
    ));
    drop(driver);
    reactor.shutdown();
    service.shutdown();

    let blocking_tput = rows[0].throughput.max(1.0);
    let speedup = rows[1].throughput / blocking_tput;
    (rows, speedup)
}

/// Holds `connections` pipelined connections open across `tenants`
/// tenants for `window`, requiring every connection to complete
/// verified work. The driver runs out-of-process so the parent's
/// descriptor budget is spent only on the server's accepted sockets.
fn sustain_exhibit(connections: usize, tenants: usize, window: Duration) -> SustainRow {
    let _ = sys::raise_nofile_limit(NOFILE_WANT);
    let (fleet, tenant_specs) = fleet_with_tenants(tenants);
    let front = FleetFront::start(
        fleet.handle(),
        ocp_reactor::loopback(),
        ReactorConfig::default(),
    )
    .expect("fleet front");
    let outcome = drive_in_child(
        front.local_addr(),
        Wire::V2,
        &tenant_specs,
        connections,
        2,
        window,
    );
    front.shutdown();
    fleet.shutdown(Duration::from_secs(5));
    SustainRow {
        connections,
        tenants,
        completed: outcome.completed,
        mismatches: outcome.mismatches,
        conns_served: outcome.conns_served,
        conns_lost: outcome.conns_lost,
        duration_ms: outcome.elapsed.as_millis() as u64,
    }
}

// ---------------------------------------------------------------------
// Smoke gate
// ---------------------------------------------------------------------

/// What `repro -- fleet-smoke` measured; the caller enforces the bars.
#[derive(Clone, Debug, Serialize)]
pub struct FleetSmokeReport {
    /// Tenants in the smoke fleet.
    pub tenants: usize,
    /// Concurrent pipelined connections driven.
    pub connections: usize,
    /// Verified replies received.
    pub verified: u64,
    /// Byte mismatches vs the oracle.
    pub mismatches: u64,
    /// Connections that completed ≥ 1 verified reply.
    pub conns_served: usize,
    /// Connections lost mid-run.
    pub conns_lost: usize,
    /// Blocking-transport closed-loop throughput (req/s).
    pub blocking_throughput: f64,
    /// Reactor-transport closed-loop throughput (req/s).
    pub reactor_throughput: f64,
    /// `reactor_throughput / blocking_throughput`.
    pub speedup: f64,
}

/// The CI gate: ≥ 512 pipelined connections across ≥ 4 tenants with
/// every reply oracle-verified — half the tenants driving the batched
/// hop-count endpoint (the wide engine over corr-id v2 framing), half
/// the singleton path — plus the 2× reactor-vs-blocking bar at 1k
/// connections.
pub fn smoke(_seed: u64) -> FleetSmokeReport {
    let _ = sys::raise_nofile_limit(NOFILE_WANT);

    // Part 1: multi-tenant pipelined verification.
    const TENANTS: usize = 4;
    const CONNECTIONS: usize = 512;
    let (fleet, tenant_specs) = fleet_with_tenants(TENANTS);
    let front = FleetFront::start(
        fleet.handle(),
        ocp_reactor::loopback(),
        ReactorConfig::default(),
    )
    .expect("fleet front");
    let specs = conn_specs(&tenant_specs, CONNECTIONS);
    let mut driver =
        MassDriver::connect(front.local_addr(), Wire::V2, &specs).expect("driver connect");
    let outcome = driver.run_closed(4, Duration::from_millis(1200));
    drop(driver);
    front.shutdown();
    fleet.shutdown(Duration::from_secs(5));

    // Part 2: the 2× transport bar at 1k connections.
    let (comparison, speedup) = transport_comparison(1000, Duration::from_millis(1500));

    FleetSmokeReport {
        tenants: TENANTS,
        connections: CONNECTIONS,
        verified: outcome.completed,
        mismatches: outcome.mismatches,
        conns_served: outcome.conns_served,
        conns_lost: outcome.conns_lost,
        blocking_throughput: comparison[0].throughput,
        reactor_throughput: comparison[1].throughput,
        speedup,
    }
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Renders the sweep (and comparison) rows.
pub fn table(rows: &[FleetLoadRow]) -> Table {
    let mut t = Table::new([
        "mode",
        "transport",
        "conns",
        "tenants",
        "depth",
        "req/s",
        "verified",
        "mismatch",
        "offered/s",
        "delivered",
    ]);
    for r in rows {
        t.push_row([
            r.mode.clone(),
            r.transport.clone(),
            r.connections.to_string(),
            r.tenants.to_string(),
            r.depth.to_string(),
            format!("{:.0}", r.throughput),
            r.requests.to_string(),
            r.mismatches.to_string(),
            if r.offered_rate > 0.0 {
                format!("{:.0}", r.offered_rate)
            } else {
                "-".into()
            },
            format!("{:.3}", r.delivery_ratio),
        ]);
    }
    t
}

/// Renders the sustain exhibit.
pub fn sustain_table(row: &SustainRow) -> Table {
    let mut t = Table::new([
        "conns",
        "tenants",
        "completed",
        "mismatch",
        "served",
        "lost",
        "window ms",
    ]);
    t.push_row([
        row.connections.to_string(),
        row.tenants.to_string(),
        row.completed.to_string(),
        row.mismatches.to_string(),
        row.conns_served.to_string(),
        row.conns_lost.to_string(),
        row.duration_ms.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end pass through the driver: small fleet,
    /// modest connection count, every reply oracle-verified.
    #[test]
    fn driver_verifies_replies_against_the_oracle() {
        let (fleet, tenant_specs) = fleet_with_tenants(2);
        let front = FleetFront::start(
            fleet.handle(),
            ocp_reactor::loopback(),
            ReactorConfig::default(),
        )
        .unwrap();
        let specs = conn_specs(&tenant_specs, 16);
        let mut driver = MassDriver::connect(front.local_addr(), Wire::V2, &specs).unwrap();
        let outcome = driver.run_closed(4, Duration::from_millis(200));
        assert_eq!(outcome.mismatches, 0);
        assert_eq!(outcome.conns_served, 16, "every connection saw a reply");
        assert_eq!(outcome.conns_lost, 0);
        assert!(outcome.completed >= 16 * 4);
        drop(driver);
        front.shutdown();
        fleet.shutdown(Duration::from_secs(5));
    }

    /// The v1 leg of the driver against the blocking reference server.
    #[test]
    fn driver_speaks_v1_to_the_blocking_transport() {
        let service = MeshService::start(Topology::mesh(8, 8), [], ServeConfig::default()).unwrap();
        let request = Request::Epoch;
        let payload = Arc::new(serde_json::to_vec(&request).unwrap());
        let mut oracle = service.handle();
        let expected = Arc::new(dispatch_bytes(&mut oracle, &payload));
        let specs: Vec<_> = (0..8)
            .map(|_| (payload.clone(), expected.clone()))
            .collect();
        let front = TcpFront::start(&service, "127.0.0.1:0", Transport::Blocking).unwrap();
        let mut driver = MassDriver::connect(front.local_addr(), Wire::V1, &specs).unwrap();
        let outcome = driver.run_closed(1, Duration::from_millis(150));
        assert_eq!(outcome.mismatches, 0);
        assert_eq!(outcome.conns_served, 8);
        drop(driver);
        front.shutdown();
        service.shutdown();
    }
}
