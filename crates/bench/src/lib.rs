//! # ocp-bench
//!
//! Experiment definitions behind the `repro` binary. Each submodule of
//! [`experiments`] regenerates one exhibit of the paper (see DESIGN.md's
//! per-experiment index and EXPERIMENTS.md for measured results):
//!
//! * [`experiments::fig5`] — Figure 5 (a)–(d): rounds to form faulty blocks
//!   and disabled regions, and the enabled-node ratio, vs the number of
//!   faults on 100×100 mesh and torus machines.
//! * [`experiments::models`] — derived table E9: nonfaulty nodes sacrificed
//!   by Definition 2a blocks vs Definition 2b blocks vs disabled regions.
//! * [`experiments::routing_eval`] — derived table E10: routability and
//!   stretch under the faulty-block vs disabled-region models, plus CDG
//!   acyclicity and wormhole latency.
//! * [`experiments::verification`] — E8: machine-checking Theorems 1–2,
//!   Lemma 1 and the Corollary over randomized fault patterns.
//! * [`experiments::maintenance`] — incremental re-labeling cost after a
//!   new fault (warm start) vs relabeling from scratch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
