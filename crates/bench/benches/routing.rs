//! B5: routing-layer costs — fault-tolerant route computation, ring
//! construction, and the wormhole simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocp_core::prelude::*;
use ocp_mesh::Topology;
use ocp_routing::wormhole::{simulate, PacketSpec, WormholeConfig};
use ocp_routing::{EnabledMap, FaultTolerantRouter};
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

fn build_router(side: u32, f: usize, seed: u64) -> FaultTolerantRouter {
    let topology = Topology::mesh(side, side);
    let mut rng = SmallRng::seed_from_u64(seed);
    let faults = uniform_faults(topology, f, &mut rng);
    let map = FaultMap::new(topology, faults);
    let out = run_pipeline(&map, &PipelineConfig::default());
    let enabled = EnabledMap::from_outcome(&out);
    let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();
    FaultTolerantRouter::new(enabled, &regions)
}

fn route_computation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ft_route");
    group.sample_size(30);
    for f in [8usize, 32, 64] {
        let router = build_router(32, f, 11);
        let nodes = router.enabled().enabled_coords();
        let mut rng = SmallRng::seed_from_u64(13);
        let pairs: Vec<_> = (0..64)
            .map(|_| {
                let p: Vec<_> = nodes.choose_multiple(&mut rng, 2).collect();
                (*p[0], *p[1])
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(f), &pairs, |b, pairs| {
            b.iter(|| {
                for &(s, d) in pairs {
                    let _ = black_box(router.route(s, d));
                }
            });
        });
    }
    group.finish();
}

fn router_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_build_with_rings");
    group.sample_size(20);
    for f in [16usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, &f| {
            b.iter(|| black_box(build_router(32, f, 17)));
        });
    }
    group.finish();
}

fn wormhole_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("wormhole_sim");
    group.sample_size(10);
    let router = build_router(24, 16, 19);
    let nodes = router.enabled().enabled_coords();
    let mut rng = SmallRng::seed_from_u64(23);
    let mut specs = Vec::new();
    let mut i = 0u64;
    while specs.len() < 100 {
        let p: Vec<_> = nodes.choose_multiple(&mut rng, 2).collect();
        if let Ok(path) = router.route(*p[0], *p[1]) {
            if !path.is_empty() {
                specs.push(PacketSpec::with_assignment(
                    path,
                    i / 4,
                    &ocp_routing::cdg::assign_detour_vc,
                ));
                i += 1;
            }
        }
    }
    let cfg = WormholeConfig {
        vcs: 2,
        ..WormholeConfig::default()
    };
    group.bench_function("100_packets_24x24", |b| {
        b.iter(|| black_box(simulate(&specs, &cfg)));
    });
    group.finish();
}

criterion_group!(
    benches,
    route_computation,
    router_construction,
    wormhole_simulation
);
criterion_main!(benches);
