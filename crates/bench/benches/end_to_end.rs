//! B6: end-to-end pipeline at the paper's scale, plus warm-start
//! maintenance vs cold relabeling.

use criterion::{criterion_group, criterion_main, Criterion};
use ocp_core::maintenance::relabel_after_fault;
use ocp_core::prelude::*;
use ocp_core::verify::verify;
use ocp_mesh::{Coord, Topology};
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn paper_scale_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_scale");
    group.sample_size(20);
    let topology = Topology::mesh(100, 100);
    let mut rng = SmallRng::seed_from_u64(2001);
    let faults = uniform_faults(topology, 50, &mut rng);
    let map = FaultMap::new(topology, faults);
    group.bench_function("pipeline_100x100_f50", |b| {
        b.iter(|| black_box(run_pipeline(&map, &PipelineConfig::default())));
    });
    let out = run_pipeline(&map, &PipelineConfig::default());
    group.bench_function("verify_100x100_f50", |b| {
        b.iter(|| black_box(verify(&map, &out).is_ok()));
    });
    group.finish();
}

fn maintenance_warm_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance");
    group.sample_size(20);
    let topology = Topology::mesh(100, 100);
    let mut rng = SmallRng::seed_from_u64(404);
    let faults = uniform_faults(topology, 60, &mut rng);
    let map = FaultMap::new(topology, faults);
    let cfg = PipelineConfig::default();
    let before = run_pipeline(&map, &cfg);
    let new_fault = Coord::new(50, 50);
    group.bench_function("warm_relabel", |b| {
        b.iter(|| black_box(relabel_after_fault(&map, new_fault, &before, &cfg)));
    });
    let updated = map.with_additional_fault(new_fault);
    group.bench_function("cold_relabel", |b| {
        b.iter(|| black_box(run_pipeline(&updated, &cfg)));
    });
    group.finish();
}

criterion_group!(benches, paper_scale_pipeline, maintenance_warm_vs_cold);
criterion_main!(benches);
