//! B9: the indexed query path — `route_len` cost of the segment-jump
//! indexed traversal against the per-hop reference, plus the batched
//! scratch-reuse path.
//!
//! B10: the wide (SIMD-lane) batch engine — `route_len_batch_with` at
//! several batch widths over the same machine and workload, the data
//! path behind the serve `route_len_batch` endpoint.
//!
//! B11: `route_disjoint` — the k-disjoint max-flow path against the
//! single-route traversal it builds on, at k in {1, 2, 3}. k=1 rides the
//! plain traversal (no flow network); k >= 2 pays vertex-split max-flow
//! plus deterministic decomposition per query.
//!
//! All engines return byte-identical answers (pinned by the routing
//! equivalence suite); the spread between them is pure query cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology};
use ocp_routing::{EnabledMap, FaultTolerantRouter, RouteScratch};
use ocp_workloads::clustered_faults;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

fn build_router(side: u32, f: usize, seed: u64) -> FaultTolerantRouter {
    let topology = Topology::mesh(side, side);
    let mut rng = SmallRng::seed_from_u64(seed);
    let faults = clustered_faults(topology, f, (f / 24).max(1), &mut rng);
    let map = FaultMap::new(topology, faults);
    let out = run_pipeline(&map, &PipelineConfig::default());
    let enabled = EnabledMap::from_outcome(&out);
    let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();
    FaultTolerantRouter::new(enabled, &regions)
}

fn query_pairs(router: &FaultTolerantRouter, n: usize, seed: u64) -> Vec<(Coord, Coord)> {
    let nodes = router.enabled().enabled_coords();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let p: Vec<_> = nodes.choose_multiple(&mut rng, 2).collect();
            (*p[0], *p[1])
        })
        .collect()
}

fn route_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_query");
    group.sample_size(20);
    // 48² at ~10% clustered faults: big enough for multi-ring detours,
    // small enough for the bench smoke.
    let router = build_router(48, 230, 0xB9);
    let queries = query_pairs(&router, 64, 29);

    group.bench_with_input(
        BenchmarkId::from_parameter("reference"),
        &queries,
        |b, queries| {
            b.iter(|| {
                for &(s, d) in queries {
                    let _ = black_box(router.route_len_reference(s, d));
                }
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("indexed"),
        &queries,
        |b, queries| {
            b.iter(|| {
                for &(s, d) in queries {
                    let _ = black_box(router.route_len(s, d));
                }
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("indexed_batch64"),
        &queries,
        |b, queries| {
            // Persistent scratch across chunks, as a serve worker's
            // handle reuses its scratch across successive batches.
            let mut scratch = RouteScratch::new();
            b.iter(|| {
                for chunk in queries.chunks(64) {
                    for &(s, d) in chunk {
                        let _ = black_box(router.route_len_with(s, d, &mut scratch));
                    }
                }
            });
        },
    );
    group.finish();
}

fn route_query_wide(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_query_wide");
    group.sample_size(20);
    // Same machine and workload shape as B9, a larger pair set so every
    // batch width gets full batches.
    let router = build_router(48, 230, 0xB9);
    let queries = query_pairs(&router, 256, 29);

    for width in [16usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("batch{width}")),
            &queries,
            |b, queries| {
                // Persistent scratch and results vector across batches,
                // as a serve worker's handle reuses them across
                // successive `route_len_batch` requests.
                let mut scratch = RouteScratch::new();
                let mut out = Vec::new();
                b.iter(|| {
                    for chunk in queries.chunks(width) {
                        router.route_len_batch_with(chunk, &mut scratch, &mut out);
                        black_box(&out);
                    }
                });
            },
        );
    }
    group.finish();
}

fn route_disjoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_disjoint");
    group.sample_size(20);
    // Same machine and workload shape as B9/B10, so the k=1 row is
    // directly comparable to the single-route query cost.
    let router = build_router(48, 230, 0xB9);
    let queries = query_pairs(&router, 64, 29);

    group.bench_with_input(
        BenchmarkId::from_parameter("route"),
        &queries,
        |b, queries| {
            b.iter(|| {
                for &(s, d) in queries {
                    let _ = black_box(router.route(s, d));
                }
            });
        },
    );
    for k in [1usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}")),
            &queries,
            |b, queries| {
                // Persistent scratch across queries: the fast (k=1) path
                // stays allocation-free, exactly as a serve worker runs it.
                let mut scratch = RouteScratch::new();
                b.iter(|| {
                    for &(s, d) in queries {
                        let _ = black_box(router.route_disjoint_with(s, d, k, &mut scratch));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, route_query, route_query_wide, route_disjoint);
criterion_main!(benches);
