//! B12: epoch build paths — the cold single-thread
//! `FaultTolerantRouter::new`, the row-band-threaded cold build at the
//! machine's core count, and the incremental `rebuild_from` patching the
//! previous epoch after one correlated fault batch.
//!
//! All three produce digest-identical routers (pinned by the incremental
//! equivalence suites); the spread is pure construction cost, the number
//! the serve writer pays once per published snapshot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology};
use ocp_routing::{EnabledMap, FaultTolerantRouter};
use ocp_workloads::clustered_faults;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

/// `(enabled, regions)` of the labeled machine for a fault set.
fn labeled(map: &FaultMap) -> (EnabledMap, Vec<ocp_geometry::Region>) {
    let out = run_pipeline(map, &PipelineConfig::default());
    let enabled = EnabledMap::from_outcome(&out);
    let regions = out.regions.iter().map(|r| r.cells.clone()).collect();
    (enabled, regions)
}

fn index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(20);
    // Same machine shape as B9/B10: 48² at ~10% clustered faults.
    let topology = Topology::mesh(48, 48);
    let mut rng = SmallRng::seed_from_u64(0xB12);
    let faults = clustered_faults(topology, 230, 230 / 24, &mut rng);
    let base_map = FaultMap::new(topology, faults);
    let (base_enabled, base_regions) = labeled(&base_map);
    let prev = FaultTolerantRouter::new(base_enabled.clone(), &base_regions);

    // One correlated 8-cell fault batch next to a random enabled anchor —
    // the epoch delta the incremental path patches over.
    let anchor = *base_enabled
        .enabled_coords()
        .choose(&mut rng)
        .expect("enabled cells");
    let mut map = base_map.clone();
    let mut added = 0;
    'grow: for dy in 0..4i32 {
        for dx in 0..4i32 {
            let c = Coord::new(anchor.x + dx, anchor.y + dy);
            if topology.contains(c) && base_enabled.is_enabled(c) {
                map = map.with_additional_fault(c);
                added += 1;
                if added == 8 {
                    break 'grow;
                }
            }
        }
    }
    let (enabled, regions) = labeled(&map);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    group.bench_with_input(
        BenchmarkId::from_parameter("cold"),
        &(&enabled, &regions),
        |b, (enabled, regions)| {
            b.iter(|| black_box(FaultTolerantRouter::new((*enabled).clone(), regions)));
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("cold_par"),
        &(&enabled, &regions),
        |b, (enabled, regions)| {
            b.iter(|| {
                black_box(FaultTolerantRouter::new_with_threads(
                    (*enabled).clone(),
                    regions,
                    threads,
                ))
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("incremental"),
        &(&enabled, &regions),
        |b, (enabled, regions)| {
            b.iter(|| {
                black_box(FaultTolerantRouter::rebuild_from(
                    &prev,
                    (*enabled).clone(),
                    regions,
                ))
            });
        },
    );
    group.finish();
}

criterion_group!(benches, index_build);
criterion_main!(benches);
