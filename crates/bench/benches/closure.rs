//! B4: geometric kernels — orthogonal convex closure and convexity checks,
//! the verification oracles of Theorem 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocp_geometry::{is_orthogonally_convex, orthogonal_convex_closure, Region};
use ocp_mesh::Coord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_points(n: usize, extent: i32, seed: u64) -> Region {
    let mut rng = SmallRng::seed_from_u64(seed);
    Region::from_cells(
        (0..n).map(|_| Coord::new(rng.gen_range(0..extent), rng.gen_range(0..extent))),
    )
}

fn closure_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ortho_convex_closure");
    for n in [10usize, 50, 200, 1000] {
        let region = random_points(n, 64, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &region, |b, r| {
            b.iter(|| black_box(orthogonal_convex_closure(r)));
        });
    }
    group.finish();
}

fn convexity_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("convexity_check");
    for n in [100usize, 1000, 5000] {
        let region = orthogonal_convex_closure(&random_points(n, 128, 3));
        group.bench_with_input(
            BenchmarkId::from_parameter(region.len()),
            &region,
            |b, r| {
                b.iter(|| black_box(is_orthogonally_convex(r)));
            },
        );
    }
    group.finish();
}

fn shapes_closure(c: &mut Criterion) {
    use ocp_geometry::shapes;
    let mut group = c.benchmark_group("shape_closure");
    let cases = [
        ("l_shape", Region::from_cells(shapes::l_shape(30, 10))),
        ("u_shape", Region::from_cells(shapes::u_shape(30, 10))),
        ("h_shape", Region::from_cells(shapes::h_shape(31, 10))),
        ("plus", Region::from_cells(shapes::plus_shape(15))),
    ];
    for (name, region) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &region, |b, r| {
            b.iter(|| black_box(orthogonal_convex_closure(r)));
        });
    }
    group.finish();
}

fn exact_partition_solver(c: &mut Criterion) {
    use ocp_core::partition::optimal_partition;
    let mut group = c.benchmark_group("optimal_partition");
    group.sample_size(10);
    for n in [4usize, 6, 8, 10] {
        // Faults on a loose diagonal: feasibility interactions without
        // trivial answers.
        let faults = Region::from_cells((0..n as i32).map(|i| Coord::new(2 * i, 2 * i + (i % 2))));
        group.bench_with_input(BenchmarkId::from_parameter(n), &faults, |b, f| {
            b.iter(|| black_box(optimal_partition(f, 12)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    closure_scaling,
    convexity_check,
    shapes_closure,
    exact_partition_solver
);
criterion_main!(benches);
