//! B3: the three executors compared on the same labeling problem.
//!
//! Sequential measures the pure per-node work; sharded adds real threads
//! with halo exchange over channels (HPC rendering); the actor executor
//! pays one thread per node and is only run on a small machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocp_core::labeling::safety::{compute_safety, SafetyRule};
use ocp_core::prelude::*;
use ocp_distsim::Executor;
use ocp_mesh::Topology;
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn executors_on_medium_mesh(c: &mut Criterion) {
    let mut group = c.benchmark_group("executors_96x96");
    group.sample_size(10);
    let topology = Topology::mesh(96, 96);
    let mut rng = SmallRng::seed_from_u64(5);
    let faults = uniform_faults(topology, 96, &mut rng);
    let map = FaultMap::new(topology, faults);
    let execs = [
        ("sequential", Executor::Sequential),
        ("sharded2", Executor::Sharded { threads: 2 }),
        ("sharded4", Executor::Sharded { threads: 4 }),
        ("sharded8", Executor::Sharded { threads: 8 }),
    ];
    for (name, exec) in execs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &exec, |b, &exec| {
            b.iter(|| black_box(compute_safety(&map, SafetyRule::BothDimensions, exec, 400)));
        });
    }
    group.finish();
}

fn actor_on_small_mesh(c: &mut Criterion) {
    let mut group = c.benchmark_group("executors_16x16_actor");
    group.sample_size(10);
    let topology = Topology::mesh(16, 16);
    let mut rng = SmallRng::seed_from_u64(6);
    let faults = uniform_faults(topology, 8, &mut rng);
    let map = FaultMap::new(topology, faults);
    for (name, exec) in [
        ("sequential", Executor::Sequential),
        ("actor", Executor::Actor),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &exec, |b, &exec| {
            b.iter(|| black_box(compute_safety(&map, SafetyRule::BothDimensions, exec, 400)));
        });
    }
    group.finish();
}

fn async_vs_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_vs_sync_40x40");
    group.sample_size(20);
    let topology = Topology::mesh(40, 40);
    let mut rng = SmallRng::seed_from_u64(8);
    let faults = uniform_faults(topology, 20, &mut rng);
    let map = FaultMap::new(topology, faults);
    group.bench_function("sync_sequential", |b| {
        b.iter(|| {
            black_box(compute_safety(
                &map,
                SafetyRule::BothDimensions,
                Executor::Sequential,
                400,
            ))
        });
    });
    for delay in [1u64, 8] {
        group.bench_function(format!("async_delay_{delay}"), |b| {
            b.iter(|| {
                let p = ocp_core::labeling::safety::SafetyProtocol::new(
                    &map,
                    SafetyRule::BothDimensions,
                );
                black_box(ocp_distsim::run_async(&p, 7, delay, 50_000_000))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    executors_on_medium_mesh,
    actor_on_small_mesh,
    async_vs_sync
);
criterion_main!(benches);
