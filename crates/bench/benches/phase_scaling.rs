//! B1/B2: runtime scaling of the two labeling phases with machine size and
//! fault count (sequential executor — the per-node work the distributed
//! protocol performs, without thread overhead).
//!
//! B8: the labeling engines compared on one fixed problem — sequential,
//! frontier worklist, sharded threads, and the bit-packed kernels (single
//! and tiled multi-threaded).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocp_core::prelude::*;
use ocp_distsim::Executor;
use ocp_mesh::Topology;
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn phase_scaling_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_by_size");
    group.sample_size(20);
    for side in [32u32, 64, 100, 128] {
        let topology = Topology::mesh(side, side);
        let mut rng = SmallRng::seed_from_u64(42);
        // 1% fault density, the regime of the paper's sweep midpoint.
        let faults = uniform_faults(topology, (side * side / 100) as usize, &mut rng);
        let map = FaultMap::new(topology, faults);
        group.bench_with_input(BenchmarkId::from_parameter(side), &map, |b, map| {
            b.iter(|| black_box(run_pipeline(map, &PipelineConfig::default())));
        });
    }
    group.finish();
}

fn phase_scaling_by_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_by_faults");
    group.sample_size(20);
    let topology = Topology::mesh(100, 100);
    for f in [10usize, 50, 100, 200] {
        let mut rng = SmallRng::seed_from_u64(7);
        let faults = uniform_faults(topology, f, &mut rng);
        let map = FaultMap::new(topology, faults);
        group.bench_with_input(BenchmarkId::from_parameter(f), &map, |b, map| {
            b.iter(|| black_box(run_pipeline(map, &PipelineConfig::default())));
        });
    }
    group.finish();
}

fn safety_rules_compared(c: &mut Criterion) {
    let mut group = c.benchmark_group("safety_rule");
    group.sample_size(20);
    let topology = Topology::mesh(100, 100);
    let mut rng = SmallRng::seed_from_u64(9);
    let faults = uniform_faults(topology, 100, &mut rng);
    let map = FaultMap::new(topology, faults);
    for (name, rule) in [
        ("def2a", SafetyRule::TwoUnsafeNeighbors),
        ("def2b", SafetyRule::BothDimensions),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_pipeline(
                    &map,
                    &PipelineConfig {
                        rule,
                        ..PipelineConfig::default()
                    },
                ))
            });
        });
    }
    group.finish();
}

fn label_engines_compared(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_engine");
    group.sample_size(20);
    // 256x256 at 1% fault density — the E15 sweep midpoint.
    let topology = Topology::mesh(256, 256);
    let mut rng = SmallRng::seed_from_u64(15);
    let faults = uniform_faults(topology, topology.len() / 100, &mut rng);
    let map = FaultMap::new(topology, faults);
    for (name, engine) in [
        ("sequential", LabelEngine::Lockstep(Executor::Sequential)),
        ("frontier", LabelEngine::Lockstep(Executor::Frontier)),
        (
            "sharded4",
            LabelEngine::Lockstep(Executor::Sharded { threads: 4 }),
        ),
        ("bitboard1", LabelEngine::Bitboard { threads: 1 }),
        ("bitboard4", LabelEngine::Bitboard { threads: 4 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_pipeline(
                    &map,
                    &PipelineConfig {
                        engine,
                        ..PipelineConfig::default()
                    },
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    phase_scaling_by_size,
    phase_scaling_by_faults,
    safety_rules_compared,
    label_engines_compared
);
criterion_main!(benches);
