//! B7: in-process query throughput of the mesh-state service.
//!
//! Measures the `ServiceHandle` read hot path — the epoch check plus the
//! query against the cached snapshot — with the writer idle, so the
//! numbers isolate serving overhead from re-convergence cost. `route_len`
//! vs `route` quantifies what the allocation-free fast path buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocp_mesh::{Coord, Topology};
use ocp_serve::{MeshService, ServeConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn build_service(side: u32, faults: usize) -> MeshService {
    let mut rng = SmallRng::seed_from_u64(0xB6);
    let topology = Topology::mesh(side, side);
    let faults = ocp_workloads::uniform_faults(topology, faults, &mut rng);
    MeshService::start(topology, faults, ServeConfig::default()).expect("service starts")
}

fn pairs(side: u32, n: usize, seed: u64) -> Vec<(Coord, Coord)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                Coord::new(rng.gen_range(0..side as i32), rng.gen_range(0..side as i32)),
                Coord::new(rng.gen_range(0..side as i32), rng.gen_range(0..side as i32)),
            )
        })
        .collect()
}

fn serve_queries(c: &mut Criterion) {
    let side = 32u32;
    let mut group = c.benchmark_group("serve_read");
    group.sample_size(30);
    for faults in [8usize, 64] {
        let service = build_service(side, faults);
        let queries = pairs(side, 64, 21);
        let mut handle = service.handle();
        group.bench_with_input(BenchmarkId::new("route", faults), &queries, |b, queries| {
            b.iter(|| {
                for &(s, d) in queries {
                    let _ = black_box(handle.route(s, d));
                }
            });
        });
        let mut handle = service.handle();
        group.bench_with_input(
            BenchmarkId::new("route_len", faults),
            &queries,
            |b, queries| {
                b.iter(|| {
                    for &(s, d) in queries {
                        let _ = black_box(handle.route_len(s, d));
                    }
                });
            },
        );
        let mut handle = service.handle();
        group.bench_with_input(
            BenchmarkId::new("status", faults),
            &queries,
            |b, queries| {
                b.iter(|| {
                    for &(s, _) in queries {
                        let _ = black_box(handle.status(s));
                    }
                });
            },
        );
        service.shutdown();
    }
    group.finish();
}

criterion_group!(benches, serve_queries);
criterion_main!(benches);
