//! Incremental maintenance of the labeling when new faults appear.
//!
//! The paper observes that faulty blocks "can be easily established and
//! maintained through message exchanges among neighboring nodes". This
//! module makes that concrete: when a node fails *after* the labels have
//! converged, phase 1 can resume from the previous fixpoint — the
//! safe/unsafe rule is monotone in the fault set, so every previously
//! unsafe node stays unsafe and only the neighborhood of the new fault
//! needs extra rounds. Phase 2 is *not* monotone in the fault set (a new
//! fault can force previously enabled nodes back to disabled), so it is
//! recomputed from the fresh safety grid, which is cheap.

use crate::labeling::enablement::try_compute_enablement_with;
use crate::labeling::safety::{SafetyOutcome, SafetyRule, SafetyState};
use crate::labeling::{default_round_cap, LabelEngine};
use crate::pipeline::{try_run_pipeline, PipelineConfig, PipelineOutcome};
use crate::status::FaultMap;
use ocp_distsim::{try_run, ConvergenceError, LockstepProtocol, NeighborStates, RunTrace};
use ocp_mesh::{Coord, Grid, Topology};

/// Phase-1 protocol warm-started from a previous fixpoint.
struct WarmSafetyProtocol<'a> {
    map: &'a FaultMap,
    rule: SafetyRule,
    previous: &'a Grid<SafetyState>,
}

impl LockstepProtocol for WarmSafetyProtocol<'_> {
    type State = SafetyState;

    fn topology(&self) -> Topology {
        self.map.topology()
    }

    fn initial(&self, c: Coord) -> SafetyState {
        if self.map.is_faulty(c) {
            SafetyState::Unsafe
        } else {
            *self.previous.get(c)
        }
    }

    fn ghost(&self) -> SafetyState {
        SafetyState::Safe
    }

    fn participates(&self, c: Coord) -> bool {
        !self.map.is_faulty(c)
    }

    fn step(
        &self,
        c: Coord,
        current: SafetyState,
        neighbors: &NeighborStates<SafetyState>,
    ) -> SafetyState {
        crate::labeling::safety::SafetyProtocol::new(self.map, self.rule)
            .step(c, current, neighbors)
    }

    fn initial_frontier(&self) -> Option<Vec<Coord>> {
        // The warm initial state differs from the previous fixpoint only at
        // faults that were previously safe (forced unsafe), so in round 1
        // only the participating neighbors of those cells can flip.
        let t = self.topology();
        Some(
            self.map
                .faults()
                .into_iter()
                .filter(|&f| *self.previous.get(f) == SafetyState::Safe)
                .flat_map(|f| {
                    ocp_mesh::Neighborhood::of(t, f)
                        .nodes()
                        .collect::<Vec<Coord>>()
                })
                .collect(),
        )
    }
}

/// Result of an incremental re-labeling.
#[derive(Clone, Debug)]
pub struct MaintenanceOutcome {
    /// The refreshed full outcome (blocks, regions, grids).
    pub outcome: PipelineOutcome,
    /// Rounds the warm-started phase 1 needed (compare against the
    /// from-scratch `outcome.safety_trace` of a cold run).
    pub incremental_safety_trace: RunTrace,
}

/// Re-labels after `new_fault` appears, warm-starting phase 1 from
/// `previous`'s converged safety grid.
///
/// # Panics
/// Panics if `previous` was computed under a different rule than
/// `config.rule` or on a different machine than `map`, or (with the
/// convergence diagnostics) if the warm run stalls at the round cap.
pub fn relabel_after_fault(
    map: &FaultMap,
    new_fault: Coord,
    previous: &PipelineOutcome,
    config: &PipelineConfig,
) -> (FaultMap, MaintenanceOutcome) {
    relabel_after_faults(map, &[new_fault], previous, config)
}

/// Re-labels after a whole batch of simultaneous new faults, warm-starting
/// phase 1 from `previous`'s converged safety grid. The batch is the unit
/// [`run_fault_schedule`] replays for same-time crash events; phase 1 is
/// monotone in the fault set, so one warm run absorbs the entire batch.
///
/// # Panics
/// Same conditions as [`relabel_after_fault`].
pub fn relabel_after_faults(
    map: &FaultMap,
    new_faults: &[Coord],
    previous: &PipelineOutcome,
    config: &PipelineConfig,
) -> (FaultMap, MaintenanceOutcome) {
    try_relabel_after_faults(map, new_faults, previous, config).unwrap_or_else(|e| panic!("{e}"))
}

/// [`relabel_after_faults`] with the convergence watchdog: a warm run that
/// stalls at the round cap is an explicit [`ConvergenceError`].
pub fn try_relabel_after_faults(
    map: &FaultMap,
    new_faults: &[Coord],
    previous: &PipelineOutcome,
    config: &PipelineConfig,
) -> Result<(FaultMap, MaintenanceOutcome), ConvergenceError> {
    assert_eq!(previous.rule, config.rule, "rule changed between runs");
    assert_eq!(
        map.topology(),
        previous.safety.topology(),
        "machine changed between runs"
    );
    let mut updated = map.clone();
    for &f in new_faults {
        updated = updated.with_additional_fault(f);
    }
    let cap = config
        .max_rounds
        .unwrap_or_else(|| default_round_cap(map.topology()));

    let warm_timer = crate::telemetry::PhaseTimer::start();
    let safety_run: SafetyOutcome = match config.engine {
        LabelEngine::Lockstep(executor) => {
            let warm = WarmSafetyProtocol {
                map: &updated,
                rule: config.rule,
                previous: &previous.safety,
            };
            let out = try_run(&warm, executor, cap)
                .map_err(|e| e.with_label("warm-started phase-1 safety relabeling"))?;
            SafetyOutcome {
                grid: out.states,
                trace: out.trace,
            }
        }
        LabelEngine::Bitboard { threads } => crate::labeling::bits::try_compute_safety_bits(
            &updated,
            config.rule,
            Some(&previous.safety),
            threads,
            cap,
        )
        .map_err(|e| e.with_label("warm-started phase-1 safety relabeling"))?,
    };
    // The warm arms call their engines directly (not through
    // `compute_safety_with`), so this is the exactly-once recording point
    // for warm-started phase-1 runs.
    crate::telemetry::record_phase("safety-warm", config.engine, &safety_run.trace, warm_timer);
    let blocks = crate::blocks::extract_blocks(&updated, &safety_run.grid);
    let enablement = try_compute_enablement_with(&updated, &safety_run.grid, config.engine, cap)?;
    let regions = crate::regions::extract_regions(&updated, &enablement.grid);

    let outcome = PipelineOutcome {
        rule: config.rule,
        safety: safety_run.grid,
        activation: enablement.grid,
        blocks,
        regions,
        safety_trace: safety_run.trace.clone(),
        enablement_trace: enablement.trace,
    };
    Ok((
        updated,
        MaintenanceOutcome {
            outcome,
            incremental_safety_trace: safety_run.trace,
        },
    ))
}

/// Relabels after the node at `repaired` comes back to life.
///
/// Repair is not monotone for phase 1 (unsafe labels may need to *retract*),
/// so the safe thing — and what this function does — is a cold rerun of the
/// whole pipeline on the updated map. It exists for API symmetry with
/// [`relabel_after_fault`] and to centralize the reasoning: do not warm-start
/// safety labels across repairs.
pub fn relabel_after_repair(
    map: &FaultMap,
    repaired: Coord,
    config: &PipelineConfig,
) -> (FaultMap, PipelineOutcome) {
    let updated = map.with_repaired_node(repaired);
    let outcome = crate::pipeline::run_pipeline(&updated, config);
    (updated, outcome)
}

/// One replayed batch of a fault schedule.
#[derive(Clone, Debug)]
pub struct ScheduleStep {
    /// Virtual time of the batch.
    pub time: u64,
    /// Nodes that crashed in this batch.
    pub new_faults: Vec<Coord>,
    /// Warm-started phase-1 trace for this batch.
    pub safety_trace: RunTrace,
}

/// Result of replaying a whole fault schedule through the warm-start path.
#[derive(Clone, Debug)]
pub struct FaultScheduleOutcome {
    /// The fault map after every scheduled crash has landed.
    pub final_map: FaultMap,
    /// The re-stabilized labeling on the final fault set (verified
    /// byte-identical to a cold pipeline run on `final_map`).
    pub outcome: PipelineOutcome,
    /// One entry per crash-time batch, in replay order.
    pub steps: Vec<ScheduleStep>,
    /// Productive warm phase-1 rounds summed over all batches — the total
    /// incremental re-convergence cost of the schedule.
    pub total_incremental_rounds: u32,
}

/// Replays a time-ordered list of `(virtual_time, node)` crash events
/// (e.g. `ocp_workloads::FaultSchedule::events`) through the incremental
/// maintenance path: a cold pipeline run on `map`, then one warm-started
/// re-labeling per batch of same-time crashes.
///
/// This is the self-stabilization claim made executable: **the verifier at
/// the end asserts the re-stabilized labels are byte-identical to a cold
/// oracle pipeline on the final fault set**, so no matter when faults
/// landed mid-protocol, the machine converges to the state it would have
/// computed had it known the final fault set from the start. (Phase 1 is
/// monotone in the fault set, which is what makes the warm path sound;
/// phase 2 is recomputed per batch.)
///
/// # Panics
/// Panics if a scheduled node is already faulty in `map` or scheduled
/// twice, or — the verifier — if the final labels diverge from the cold
/// oracle (which would be a bug in the maintenance path, not the
/// schedule).
pub fn run_fault_schedule(
    map: &FaultMap,
    events: &[(u64, Coord)],
    config: &PipelineConfig,
) -> Result<FaultScheduleOutcome, ConvergenceError> {
    let mut current_map = map.clone();
    let mut current = try_run_pipeline(&current_map, config)?;
    let mut steps = Vec::new();

    let mut i = 0usize;
    while i < events.len() {
        let time = events[i].0;
        assert!(
            steps.last().is_none_or(|s: &ScheduleStep| s.time <= time),
            "fault schedule must be sorted by time"
        );
        let mut batch = Vec::new();
        while i < events.len() && events[i].0 == time {
            let node = events[i].1;
            assert!(
                !current_map.is_faulty(node),
                "schedule crashes {node:?} twice (or it was already faulty)"
            );
            batch.push(node);
            i += 1;
        }
        let (next_map, step) = try_relabel_after_faults(&current_map, &batch, &current, config)?;
        steps.push(ScheduleStep {
            time,
            new_faults: batch,
            safety_trace: step.incremental_safety_trace.clone(),
        });
        current_map = next_map;
        current = step.outcome;
    }

    // The verifier: re-stabilization must land exactly on the cold oracle.
    let oracle = try_run_pipeline(&current_map, config)?;
    assert_eq!(
        current.safety, oracle.safety,
        "re-stabilized safety labels diverge from the cold oracle"
    );
    assert_eq!(
        current.activation, oracle.activation,
        "re-stabilized activation labels diverge from the cold oracle"
    );
    crate::verify::verify(&current_map, &current)
        .expect("re-stabilized outcome violates the paper's invariants");

    let total_incremental_rounds = steps.iter().map(|s| s.safety_trace.rounds()).sum();
    Ok(FaultScheduleOutcome {
        final_map: current_map,
        outcome: current,
        steps,
        total_incremental_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_pipeline;
    use crate::verify::verify;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn incremental_matches_from_scratch() {
        let t = Topology::mesh(14, 14);
        let map = FaultMap::new(t, [c(3, 3), c(4, 4), c(10, 2)]);
        let cfg = PipelineConfig::default();
        let cold = run_pipeline(&map, &cfg);

        let new_fault = c(4, 2);
        let (updated, warm) = relabel_after_fault(&map, new_fault, &cold, &cfg);

        let scratch_map = map.with_additional_fault(new_fault);
        let scratch = run_pipeline(&scratch_map, &cfg);

        assert_eq!(warm.outcome.safety, scratch.safety);
        assert_eq!(warm.outcome.activation, scratch.activation);
        assert_eq!(warm.outcome.blocks.len(), scratch.blocks.len());
        verify(&updated, &warm.outcome).expect("warm outcome verifies");
    }

    #[test]
    fn warm_start_is_no_slower_than_cold() {
        let t = Topology::mesh(20, 20);
        // A sizable diagonal cluster so the cold run needs several rounds.
        let faults: Vec<Coord> = (0..5).map(|i| c(5 + i, 5 + i)).collect();
        let cfg = PipelineConfig::default();
        let map = FaultMap::new(t, faults);
        let cold = run_pipeline(&map, &cfg);
        assert!(cold.safety_trace.rounds() >= 2);

        // A far-away isolated fault should cost ~0 incremental rounds.
        let (_updated, warm) = relabel_after_fault(&map, c(17, 2), &cold, &cfg);
        assert!(
            warm.incremental_safety_trace.rounds() < cold.safety_trace.rounds(),
            "incremental {} >= cold {}",
            warm.incremental_safety_trace.rounds(),
            cold.safety_trace.rounds()
        );
    }

    #[test]
    fn repair_shrinks_blocks_and_verifies() {
        // A 2x2 diagonal block; repairing one fault leaves a lone fault.
        let map = FaultMap::new(Topology::mesh(10, 10), [c(4, 4), c(5, 5)]);
        let cfg = PipelineConfig::default();
        let before = run_pipeline(&map, &cfg);
        assert_eq!(before.blocks[0].len(), 4);

        let (updated, after) = relabel_after_repair(&map, c(5, 5), &cfg);
        assert_eq!(updated.fault_count(), 1);
        assert_eq!(after.blocks.len(), 1);
        assert_eq!(after.blocks[0].len(), 1);
        verify(&updated, &after).expect("invariants after repair");
    }

    #[test]
    fn fault_schedule_replays_to_the_cold_oracle() {
        let t = Topology::mesh(16, 16);
        let map = FaultMap::new(t, [c(2, 2), c(3, 3)]);
        // Three batches: a simultaneous pair, then two singletons.
        let events = vec![(3, c(10, 10)), (3, c(11, 11)), (9, c(4, 2)), (15, c(12, 3))];
        let cfg = PipelineConfig::default();
        let out = run_fault_schedule(&map, &events, &cfg).expect("schedule converges");
        assert_eq!(out.final_map.fault_count(), 6);
        assert_eq!(out.steps.len(), 3);
        assert_eq!(out.steps[0].new_faults, vec![c(10, 10), c(11, 11)]);
        // Oracle equality is asserted inside; spot-check independently too.
        let oracle = run_pipeline(&out.final_map, &cfg);
        assert_eq!(out.outcome.safety, oracle.safety);
        assert_eq!(out.outcome.activation, oracle.activation);
        assert_eq!(out.outcome.blocks.len(), oracle.blocks.len());
    }

    #[test]
    fn random_fault_schedules_self_stabilize() {
        use ocp_workloads::FaultSchedule;
        use rand::{rngs::SmallRng, SeedableRng};
        let t = Topology::mesh(20, 20);
        for seed in 0..5u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let schedule = FaultSchedule::random(t, 12, 30, &mut rng);
            let out = run_fault_schedule(
                &FaultMap::healthy(t),
                schedule.events(),
                &PipelineConfig::default(),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let mut got = out.final_map.faults();
            got.sort();
            assert_eq!(got, schedule.final_faults());
        }
    }

    #[test]
    fn empty_schedule_is_a_cold_run() {
        let map = FaultMap::new(Topology::mesh(8, 8), [c(2, 2)]);
        let cfg = PipelineConfig::default();
        let out = run_fault_schedule(&map, &[], &cfg).expect("converges");
        assert!(out.steps.is_empty());
        assert_eq!(out.total_incremental_rounds, 0);
        let cold = run_pipeline(&map, &cfg);
        assert_eq!(out.outcome.safety, cold.safety);
    }

    #[test]
    fn adding_fault_inside_existing_block_is_free() {
        let map = FaultMap::new(Topology::mesh(10, 10), [c(2, 2), c(3, 3)]);
        let cfg = PipelineConfig::default();
        let cold = run_pipeline(&map, &cfg);
        // (2,3) is already unsafe; making it faulty changes no safety label.
        let (_u, warm) = relabel_after_fault(&map, c(2, 3), &cold, &cfg);
        assert_eq!(warm.incremental_safety_trace.rounds(), 0);
    }
}
