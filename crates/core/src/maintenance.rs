//! Incremental maintenance of the labeling when new faults appear.
//!
//! The paper observes that faulty blocks "can be easily established and
//! maintained through message exchanges among neighboring nodes". This
//! module makes that concrete: when a node fails *after* the labels have
//! converged, phase 1 can resume from the previous fixpoint — the
//! safe/unsafe rule is monotone in the fault set, so every previously
//! unsafe node stays unsafe and only the neighborhood of the new fault
//! needs extra rounds. Phase 2 is *not* monotone in the fault set (a new
//! fault can force previously enabled nodes back to disabled), so it is
//! recomputed from the fresh safety grid, which is cheap.

use crate::labeling::default_round_cap;
use crate::labeling::enablement::compute_enablement;
use crate::labeling::safety::{SafetyRule, SafetyState};
use crate::pipeline::{PipelineConfig, PipelineOutcome};
use crate::status::FaultMap;
use ocp_distsim::{run, LockstepProtocol, NeighborStates, RunTrace};
use ocp_mesh::{Coord, Grid, Topology};

/// Phase-1 protocol warm-started from a previous fixpoint.
struct WarmSafetyProtocol<'a> {
    map: &'a FaultMap,
    rule: SafetyRule,
    previous: &'a Grid<SafetyState>,
}

impl LockstepProtocol for WarmSafetyProtocol<'_> {
    type State = SafetyState;

    fn topology(&self) -> Topology {
        self.map.topology()
    }

    fn initial(&self, c: Coord) -> SafetyState {
        if self.map.is_faulty(c) {
            SafetyState::Unsafe
        } else {
            *self.previous.get(c)
        }
    }

    fn ghost(&self) -> SafetyState {
        SafetyState::Safe
    }

    fn participates(&self, c: Coord) -> bool {
        !self.map.is_faulty(c)
    }

    fn step(
        &self,
        c: Coord,
        current: SafetyState,
        neighbors: &NeighborStates<SafetyState>,
    ) -> SafetyState {
        crate::labeling::safety::SafetyProtocol::new(self.map, self.rule)
            .step(c, current, neighbors)
    }
}

/// Result of an incremental re-labeling.
#[derive(Clone, Debug)]
pub struct MaintenanceOutcome {
    /// The refreshed full outcome (blocks, regions, grids).
    pub outcome: PipelineOutcome,
    /// Rounds the warm-started phase 1 needed (compare against the
    /// from-scratch `outcome.safety_trace` of a cold run).
    pub incremental_safety_trace: RunTrace,
}

/// Re-labels after `new_fault` appears, warm-starting phase 1 from
/// `previous`'s converged safety grid.
///
/// # Panics
/// Panics if `previous` was computed under a different rule than
/// `config.rule` or on a different machine than `map`.
pub fn relabel_after_fault(
    map: &FaultMap,
    new_fault: Coord,
    previous: &PipelineOutcome,
    config: &PipelineConfig,
) -> (FaultMap, MaintenanceOutcome) {
    assert_eq!(previous.rule, config.rule, "rule changed between runs");
    assert_eq!(
        map.topology(),
        previous.safety.topology(),
        "machine changed between runs"
    );
    let updated = map.with_additional_fault(new_fault);
    let cap = config
        .max_rounds
        .unwrap_or_else(|| default_round_cap(map.topology()));

    let warm = WarmSafetyProtocol {
        map: &updated,
        rule: config.rule,
        previous: &previous.safety,
    };
    let safety_run = run(&warm, config.executor, cap);
    let blocks = crate::blocks::extract_blocks(&updated, &safety_run.states);
    let enablement = compute_enablement(&updated, &safety_run.states, config.executor, cap);
    let regions = crate::regions::extract_regions(&updated, &enablement.grid);

    let outcome = PipelineOutcome {
        rule: config.rule,
        safety: safety_run.states,
        activation: enablement.grid,
        blocks,
        regions,
        safety_trace: safety_run.trace.clone(),
        enablement_trace: enablement.trace,
    };
    (
        updated,
        MaintenanceOutcome {
            outcome,
            incremental_safety_trace: safety_run.trace,
        },
    )
}

/// Relabels after the node at `repaired` comes back to life.
///
/// Repair is not monotone for phase 1 (unsafe labels may need to *retract*),
/// so the safe thing — and what this function does — is a cold rerun of the
/// whole pipeline on the updated map. It exists for API symmetry with
/// [`relabel_after_fault`] and to centralize the reasoning: do not warm-start
/// safety labels across repairs.
pub fn relabel_after_repair(
    map: &FaultMap,
    repaired: Coord,
    config: &PipelineConfig,
) -> (FaultMap, PipelineOutcome) {
    let updated = map.with_repaired_node(repaired);
    let outcome = crate::pipeline::run_pipeline(&updated, config);
    (updated, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_pipeline;
    use crate::verify::verify;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn incremental_matches_from_scratch() {
        let t = Topology::mesh(14, 14);
        let map = FaultMap::new(t, [c(3, 3), c(4, 4), c(10, 2)]);
        let cfg = PipelineConfig::default();
        let cold = run_pipeline(&map, &cfg);

        let new_fault = c(4, 2);
        let (updated, warm) = relabel_after_fault(&map, new_fault, &cold, &cfg);

        let scratch_map = map.with_additional_fault(new_fault);
        let scratch = run_pipeline(&scratch_map, &cfg);

        assert_eq!(warm.outcome.safety, scratch.safety);
        assert_eq!(warm.outcome.activation, scratch.activation);
        assert_eq!(warm.outcome.blocks.len(), scratch.blocks.len());
        verify(&updated, &warm.outcome).expect("warm outcome verifies");
    }

    #[test]
    fn warm_start_is_no_slower_than_cold() {
        let t = Topology::mesh(20, 20);
        // A sizable diagonal cluster so the cold run needs several rounds.
        let faults: Vec<Coord> = (0..5).map(|i| c(5 + i, 5 + i)).collect();
        let cfg = PipelineConfig::default();
        let map = FaultMap::new(t, faults);
        let cold = run_pipeline(&map, &cfg);
        assert!(cold.safety_trace.rounds() >= 2);

        // A far-away isolated fault should cost ~0 incremental rounds.
        let (_updated, warm) = relabel_after_fault(&map, c(17, 2), &cold, &cfg);
        assert!(
            warm.incremental_safety_trace.rounds() < cold.safety_trace.rounds(),
            "incremental {} >= cold {}",
            warm.incremental_safety_trace.rounds(),
            cold.safety_trace.rounds()
        );
    }

    #[test]
    fn repair_shrinks_blocks_and_verifies() {
        // A 2x2 diagonal block; repairing one fault leaves a lone fault.
        let map = FaultMap::new(Topology::mesh(10, 10), [c(4, 4), c(5, 5)]);
        let cfg = PipelineConfig::default();
        let before = run_pipeline(&map, &cfg);
        assert_eq!(before.blocks[0].len(), 4);

        let (updated, after) = relabel_after_repair(&map, c(5, 5), &cfg);
        assert_eq!(updated.fault_count(), 1);
        assert_eq!(after.blocks.len(), 1);
        assert_eq!(after.blocks[0].len(), 1);
        verify(&updated, &after).expect("invariants after repair");
    }

    #[test]
    fn adding_fault_inside_existing_block_is_free() {
        let map = FaultMap::new(Topology::mesh(10, 10), [c(2, 2), c(3, 3)]);
        let cfg = PipelineConfig::default();
        let cold = run_pipeline(&map, &cfg);
        // (2,3) is already unsafe; making it faulty changes no safety label.
        let (_u, warm) = relabel_after_fault(&map, c(2, 3), &cold, &cfg);
        assert_eq!(warm.incremental_safety_trace.rounds(), 0);
    }
}
