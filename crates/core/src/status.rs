//! Ground-truth fault state.

use ocp_mesh::{Coord, Grid, Topology};
use serde::{Deserialize, Serialize};

/// Whether a node works. Faulty nodes "just cease to work" (Section 2):
/// they send no messages and route no traffic; link faults are treated as
/// faults of an endpoint, as in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Health {
    /// The node works.
    Healthy,
    /// The node has failed.
    Faulty,
}

/// The fault configuration of a machine: topology + per-node health.
///
/// Construction is the only place fault knowledge is global; the labeling
/// protocols themselves only ever look at their own node's health and the
/// messages of direct neighbors, honoring the paper's "no a-priori global
/// information of fault distribution" assumption.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMap {
    grid: Grid<Health>,
    fault_count: usize,
}

impl FaultMap {
    /// A machine with the given faulty nodes.
    ///
    /// # Panics
    /// Panics if a fault coordinate is outside the machine.
    pub fn new<I: IntoIterator<Item = Coord>>(topology: Topology, faults: I) -> Self {
        let mut grid = Grid::filled(topology, Health::Healthy);
        let mut fault_count = 0;
        for f in faults {
            assert!(topology.contains(f), "fault {f} outside machine");
            if *grid.get(f) == Health::Healthy {
                grid.set(f, Health::Faulty);
                fault_count += 1;
            }
        }
        Self { grid, fault_count }
    }

    /// A fault-free machine.
    pub fn healthy(topology: Topology) -> Self {
        Self::new(topology, std::iter::empty())
    }

    /// The machine.
    pub fn topology(&self) -> Topology {
        self.grid.topology()
    }

    /// True if the node at `c` has failed.
    ///
    /// # Panics
    /// Panics if `c` is not a real node.
    pub fn is_faulty(&self, c: Coord) -> bool {
        *self.grid.get(c) == Health::Faulty
    }

    /// The underlying per-node health grid — dense row-major storage that
    /// bulk kernels pack into bit masks without per-coordinate lookups.
    pub fn health_grid(&self) -> &Grid<Health> {
        &self.grid
    }

    /// Number of faulty nodes.
    pub fn fault_count(&self) -> usize {
        self.fault_count
    }

    /// Sorted fault coordinates.
    pub fn faults(&self) -> Vec<Coord> {
        self.grid.coords_where(|&h| h == Health::Faulty).collect()
    }

    /// A copy of this map with one more faulty node (for incremental
    /// maintenance experiments). No-op if `c` is already faulty.
    pub fn with_additional_fault(&self, c: Coord) -> Self {
        let mut next = self.clone();
        if !next.is_faulty(c) {
            next.grid.set(c, Health::Faulty);
            next.fault_count += 1;
        }
        next
    }

    /// A copy of this map with the node at `c` repaired. No-op if `c` is
    /// healthy. (Repair is *not* monotone for either labeling phase, so
    /// relabeling after a repair always starts cold — see
    /// [`crate::maintenance::relabel_after_repair`].)
    pub fn with_repaired_node(&self, c: Coord) -> Self {
        let mut next = self.clone();
        if next.is_faulty(c) {
            next.grid.set(c, Health::Healthy);
            next.fault_count -= 1;
        }
        next
    }

    /// Converts link faults into node faults, as the paper prescribes
    /// ("link faults can be treated as node faults"): for each failed link,
    /// the smaller-addressed endpoint is marked faulty (a deterministic
    /// convention — any one endpoint suffices, since disabling either
    /// removes the link from service).
    ///
    /// # Panics
    /// Panics if a link's endpoints are not neighbors in `topology`, or
    /// lie outside the machine.
    pub fn from_link_faults<I>(topology: Topology, links: I) -> Self
    where
        I: IntoIterator<Item = (Coord, Coord)>,
    {
        let mut faults = Vec::new();
        for (a, b) in links {
            assert!(
                topology.contains(a) && topology.contains(b),
                "link endpoint outside machine: {a} - {b}"
            );
            let adjacent = ocp_mesh::DIRECTIONS
                .into_iter()
                .any(|d| topology.neighbor(a, d).coord() == Some(b));
            assert!(adjacent, "{a} - {b} is not a link of the machine");
            faults.push(a.min(b));
        }
        Self::new(topology, faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn construction_and_queries() {
        let map = FaultMap::new(Topology::mesh(5, 5), [c(1, 1), c(3, 4)]);
        assert_eq!(map.fault_count(), 2);
        assert!(map.is_faulty(c(1, 1)));
        assert!(!map.is_faulty(c(0, 0)));
        assert_eq!(map.faults(), vec![c(1, 1), c(3, 4)]);
    }

    #[test]
    fn duplicate_faults_collapse() {
        let map = FaultMap::new(Topology::mesh(4, 4), [c(2, 2), c(2, 2)]);
        assert_eq!(map.fault_count(), 1);
    }

    #[test]
    fn healthy_machine() {
        let map = FaultMap::healthy(Topology::torus(8, 8));
        assert_eq!(map.fault_count(), 0);
        assert!(map.faults().is_empty());
    }

    #[test]
    #[should_panic(expected = "outside machine")]
    fn out_of_range_fault_panics() {
        FaultMap::new(Topology::mesh(3, 3), [c(3, 0)]);
    }

    #[test]
    fn link_faults_become_node_faults() {
        let t = Topology::mesh(5, 5);
        let map = FaultMap::from_link_faults(t, [(c(1, 1), c(2, 1)), (c(3, 3), c(3, 4))]);
        assert_eq!(map.fault_count(), 2);
        assert!(map.is_faulty(c(1, 1))); // smaller endpoint
        assert!(map.is_faulty(c(3, 3)));
        assert!(!map.is_faulty(c(2, 1)));
    }

    #[test]
    fn link_faults_wrap_on_torus() {
        let t = Topology::torus(5, 5);
        let map = FaultMap::from_link_faults(t, [(c(4, 0), c(0, 0))]);
        assert_eq!(map.fault_count(), 1);
        assert!(map.is_faulty(c(0, 0)));
    }

    #[test]
    #[should_panic(expected = "not a link")]
    fn non_adjacent_link_fault_panics() {
        FaultMap::from_link_faults(Topology::mesh(5, 5), [(c(0, 0), c(2, 0))]);
    }

    #[test]
    fn repair_restores_health() {
        let map = FaultMap::new(Topology::mesh(4, 4), [c(1, 1), c(2, 2)]);
        let repaired = map.with_repaired_node(c(1, 1));
        assert_eq!(repaired.fault_count(), 1);
        assert!(!repaired.is_faulty(c(1, 1)));
        // idempotent on healthy nodes
        assert_eq!(repaired.with_repaired_node(c(1, 1)).fault_count(), 1);
    }

    #[test]
    fn incremental_fault_addition() {
        let map = FaultMap::new(Topology::mesh(4, 4), [c(0, 0)]);
        let more = map.with_additional_fault(c(1, 1));
        assert_eq!(map.fault_count(), 1);
        assert_eq!(more.fault_count(), 2);
        assert!(more.is_faulty(c(1, 1)));
        // idempotent
        assert_eq!(more.with_additional_fault(c(1, 1)).fault_count(), 2);
    }
}
