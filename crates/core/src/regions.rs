//! Disabled-region extraction (connected disabled nodes) — the paper's
//! orthogonal convex polygons.

use crate::labeling::enablement::ActivationState;
use crate::status::FaultMap;
use ocp_geometry::{Rect, Region};
use ocp_mesh::{connected_components_grid, Coord, Grid, TopologyKind};

/// One disabled region: a maximal connected set of disabled nodes after
/// phase 2. Theorem 1: it is an orthogonal convex polygon; Theorem 2: the
/// smallest one covering its faults.
#[derive(Clone, Debug)]
pub struct DisabledRegion {
    /// Member cells in machine coordinates.
    pub cells: Region,
    /// Member cells in planar coordinates (unwrapped across a torus seam);
    /// `None` if the region wraps around the torus.
    pub planar: Option<Region>,
    /// The faulty cells of the region (machine coordinates).
    pub faults: Region,
    /// The faulty cells in planar coordinates, translated consistently with
    /// [`DisabledRegion::planar`].
    pub planar_faults: Option<Region>,
}

impl DisabledRegion {
    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the region has no members (never produced by extraction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Nonfaulty nodes still sacrificed after phase 2 — what remains of the
    /// block's cost once the maximum number of nodes is re-enabled.
    pub fn nonfaulty_count(&self) -> usize {
        self.cells.len() - self.faults.len()
    }

    /// Planar bounding box (`None` for an unwrappable torus region).
    pub fn bbox(&self) -> Option<Rect> {
        self.planar.as_ref().and_then(|p| p.bbox())
    }

    /// Theorem 1 check: is this region an orthogonal convex polygon?
    /// (`false` when the region wraps a torus and has no planar embedding.)
    pub fn is_orthogonally_convex(&self) -> bool {
        self.planar
            .as_ref()
            .is_some_and(ocp_geometry::is_orthogonally_convex)
    }
}

/// Extracts the disabled regions from a converged phase-2 grid.
///
/// # Panics
/// Panics if the activation grid covers a different machine than `map`.
pub fn extract_regions(map: &FaultMap, activation: &Grid<ActivationState>) -> Vec<DisabledRegion> {
    assert_eq!(
        map.topology(),
        activation.topology(),
        "activation grid belongs to a different machine"
    );
    let topology = map.topology();
    connected_components_grid(activation, |&s| s == ActivationState::Disabled)
        .into_iter()
        .map(|comp| {
            let faults: Vec<Coord> = comp
                .cells
                .iter()
                .copied()
                .filter(|&c| map.is_faulty(c))
                .collect();
            // One embedding serves both the cells and their fault subset,
            // so convexity and minimality checks see consistent coordinates.
            // On a mesh that embedding is the identity — skip the
            // seam-unwrapping BFS, which dominates extraction on big regions.
            if topology.kind() == TopologyKind::Mesh {
                let cells = Region::from_cells(comp.cells);
                let faults = Region::from_cells(faults);
                return DisabledRegion {
                    planar: Some(cells.clone()),
                    cells,
                    planar_faults: Some(faults.clone()),
                    faults,
                };
            }
            let mapping = Region::unwrap_mapping(topology, &comp.cells);
            let planar = mapping
                .as_ref()
                .map(|m| Region::from_cells(m.values().copied()));
            let planar_faults = mapping
                .as_ref()
                .map(|m| Region::from_cells(faults.iter().map(|f| m[f])));
            DisabledRegion {
                cells: Region::from_cells(comp.cells),
                planar,
                faults: Region::from_cells(faults),
                planar_faults,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::enablement::compute_enablement;
    use crate::labeling::safety::{compute_safety, SafetyRule};
    use ocp_distsim::Executor;
    use ocp_mesh::Topology;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn regions_of(t: Topology, faults: &[Coord]) -> (FaultMap, Vec<DisabledRegion>) {
        let map = FaultMap::new(t, faults.iter().copied());
        let safety = compute_safety(&map, SafetyRule::BothDimensions, Executor::Sequential, 400);
        let act = compute_enablement(&map, &safety.grid, Executor::Sequential, 400);
        let regions = extract_regions(&map, &act.grid);
        (map, regions)
    }

    #[test]
    fn section3_regions_are_fault_only() {
        let (_m, regions) = regions_of(Topology::mesh(6, 6), &[c(1, 3), c(2, 1), c(3, 2)]);
        // All nonfaulty nodes re-enabled: the disabled set is exactly the
        // three faults, i.e. three singleton regions (no two faults are
        // axis-adjacent). The paper groups {(2,1),(3,2)} by originating
        // block; under 4-connectivity they are separate components — see
        // DESIGN.md §4.
        assert_eq!(regions.len(), 3);
        for r in &regions {
            assert_eq!(r.len(), 1);
            assert_eq!(r.nonfaulty_count(), 0);
            assert!(r.is_orthogonally_convex());
        }
    }

    #[test]
    fn dense_square_block_stays_whole() {
        let block = Rect::new(c(2, 2), c(4, 4));
        let (_m, regions) = regions_of(Topology::mesh(9, 9), &block.cells().collect::<Vec<_>>());
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].len(), 9);
        assert_eq!(regions[0].nonfaulty_count(), 0);
        assert!(regions[0].is_orthogonally_convex());
    }

    #[test]
    fn regions_pairwise_distance_at_least_two() {
        use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};
        let t = Topology::mesh(20, 20);
        for seed in 0..6u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut all: Vec<Coord> = t.coords().collect();
            all.shuffle(&mut rng);
            let faults: Vec<Coord> = all.into_iter().take(30).collect();
            let (_m, regions) = regions_of(t, &faults);
            for i in 0..regions.len() {
                for j in i + 1..regions.len() {
                    let d = regions[i].cells.distance(&regions[j].cells).unwrap();
                    assert!(d >= 2, "seed {seed}: regions at distance {d}");
                }
            }
        }
    }

    #[test]
    fn planar_faults_follow_unwrap() {
        let t = Topology::torus(8, 8);
        let (_m, regions) = regions_of(t, &[c(7, 4), c(0, 4)]);
        assert_eq!(regions.len(), 1);
        let r = &regions[0];
        let p = r.planar.as_ref().unwrap();
        let pf = r.planar_faults.as_ref().unwrap();
        assert!(p.is_superset(pf));
        assert_eq!(pf.len(), 2);
        // In planar coordinates the two faults are adjacent.
        let cells: Vec<Coord> = pf.iter().collect();
        assert!(cells[0].is_adjacent(cells[1]));
    }

    #[test]
    fn no_faults_no_regions() {
        let (_m, regions) = regions_of(Topology::mesh(8, 8), &[]);
        assert!(regions.is_empty());
    }
}
