//! The full two-phase flow: safety labeling → faulty blocks → enablement
//! labeling → disabled regions.

use crate::blocks::{extract_blocks, FaultyBlock};
use crate::labeling::enablement::{try_compute_enablement_with, ActivationState};
use crate::labeling::safety::{try_compute_safety_with, SafetyRule, SafetyState};
use crate::labeling::{default_round_cap, LabelEngine};
use crate::regions::{extract_regions, DisabledRegion};
use crate::status::FaultMap;
use ocp_distsim::{ConvergenceError, RunTrace};
use ocp_mesh::Grid;

/// How to run the pipeline.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Phase-1 rule. Defaults to Definition 2b, the rule the paper's
    /// algorithm uses.
    pub rule: SafetyRule,
    /// Labeling engine for both phases. All engines produce identical
    /// grids and traces; defaults to the paper-faithful sequential
    /// lockstep executor.
    pub engine: LabelEngine,
    /// Round cap; `None` derives a generous cap from the topology diameter.
    pub max_rounds: Option<u32>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            rule: SafetyRule::BothDimensions,
            engine: LabelEngine::default(),
            max_rounds: None,
        }
    }
}

/// Everything the two phases produce.
#[derive(Clone, Debug)]
pub struct PipelineOutcome {
    /// Phase-1 rule used.
    pub rule: SafetyRule,
    /// Converged safe/unsafe grid.
    pub safety: Grid<SafetyState>,
    /// Converged enabled/disabled grid.
    pub activation: Grid<ActivationState>,
    /// Faulty blocks (phase-1 components).
    pub blocks: Vec<FaultyBlock>,
    /// Disabled regions (phase-2 components) — the orthogonal convex
    /// polygons the paper constructs.
    pub regions: Vec<DisabledRegion>,
    /// Distributed-run trace of phase 1 (Figure 5 (a) measures its rounds).
    pub safety_trace: RunTrace,
    /// Distributed-run trace of phase 2 (Figure 5 (b)).
    pub enablement_trace: RunTrace,
}

impl PipelineOutcome {
    /// Disabled regions grouped by the faulty block that contains them.
    /// (Every disabled node was unsafe, so each region lies inside exactly
    /// one block.) Regions that fall in no block — impossible for converged
    /// runs — would be dropped.
    pub fn regions_per_block(&self) -> Vec<Vec<&DisabledRegion>> {
        let mut grouped: Vec<Vec<&DisabledRegion>> = vec![Vec::new(); self.blocks.len()];
        for region in &self.regions {
            if let Some(first) = region.cells.iter().next() {
                if let Some(bi) = self.blocks.iter().position(|b| b.cells.contains(first)) {
                    grouped[bi].push(region);
                }
            }
        }
        grouped
    }
}

/// Runs phase 1 and phase 2 and extracts blocks and regions.
///
/// # Panics
/// Panics (with the [`ConvergenceError`] diagnostics) if either phase
/// stalls at the round cap — the grids would not be fixpoints, and blocks
/// or regions extracted from them would be garbage. Use
/// [`try_run_pipeline`] to handle the stall instead.
pub fn run_pipeline(map: &FaultMap, config: &PipelineConfig) -> PipelineOutcome {
    try_run_pipeline(map, config).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_pipeline`] with the convergence watchdog: a phase that stalls at
/// the round cap is an explicit [`ConvergenceError`] naming the phase,
/// instead of grids that silently aren't fixpoints.
pub fn try_run_pipeline(
    map: &FaultMap,
    config: &PipelineConfig,
) -> Result<PipelineOutcome, ConvergenceError> {
    let cap = config
        .max_rounds
        .unwrap_or_else(|| default_round_cap(map.topology()));
    let timer = crate::telemetry::PhaseTimer::start();
    let safety = try_compute_safety_with(map, config.rule, config.engine, cap)?;
    let blocks = extract_blocks(map, &safety.grid);
    let enablement = try_compute_enablement_with(map, &safety.grid, config.engine, cap)?;
    let regions = extract_regions(map, &enablement.grid);
    let outcome = PipelineOutcome {
        rule: config.rule,
        safety: safety.grid,
        activation: enablement.grid,
        blocks,
        regions,
        safety_trace: safety.trace,
        enablement_trace: enablement.trace,
    };
    crate::telemetry::record_pipeline(config.engine, &outcome, timer);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_mesh::{Coord, Topology};

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn default_config_is_paper_setting() {
        let cfg = PipelineConfig::default();
        assert_eq!(cfg.rule, SafetyRule::BothDimensions);
        assert_eq!(
            cfg.engine,
            LabelEngine::Lockstep(ocp_distsim::Executor::Sequential)
        );
    }

    #[test]
    fn pipeline_converges_and_phases_chain() {
        let map = FaultMap::new(Topology::mesh(10, 10), [c(3, 3), c(4, 4), c(8, 1)]);
        let out = run_pipeline(&map, &PipelineConfig::default());
        assert!(out.safety_trace.converged);
        assert!(out.enablement_trace.converged);
        // Disabled cells are a subset of unsafe cells.
        for (coord, &a) in out.activation.iter() {
            if a == ActivationState::Disabled {
                assert_eq!(*out.safety.get(coord), SafetyState::Unsafe);
            }
        }
    }

    #[test]
    fn regions_per_block_partitions_regions() {
        let map = FaultMap::new(
            Topology::mesh(16, 16),
            [c(2, 2), c(3, 3), c(10, 10), c(12, 12), c(11, 11)],
        );
        let out = run_pipeline(&map, &PipelineConfig::default());
        let grouped = out.regions_per_block();
        let total: usize = grouped.iter().map(|g| g.len()).sum();
        assert_eq!(total, out.regions.len());
        // Every region inside its block.
        for (bi, group) in grouped.iter().enumerate() {
            for region in group {
                assert!(out.blocks[bi].cells.is_superset(&region.cells));
            }
        }
    }

    #[test]
    fn tiny_round_cap_is_an_explicit_error() {
        // A long diagonal chain needs many phase-1 rounds; cap 1 stalls.
        let faults: Vec<Coord> = (0..8).map(|i| c(i, i)).collect();
        let map = FaultMap::new(Topology::mesh(10, 10), faults);
        let cfg = PipelineConfig {
            max_rounds: Some(1),
            ..PipelineConfig::default()
        };
        let err = try_run_pipeline(&map, &cfg).expect_err("cap of 1 cannot converge");
        let text = err.to_string();
        assert!(text.contains("phase-1 safety labeling"), "{text}");
        assert!(text.contains("1 rounds"), "{text}");
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn run_pipeline_panics_loudly_instead_of_lying() {
        let faults: Vec<Coord> = (0..8).map(|i| c(i, i)).collect();
        let map = FaultMap::new(Topology::mesh(10, 10), faults);
        let cfg = PipelineConfig {
            max_rounds: Some(1),
            ..PipelineConfig::default()
        };
        let _ = run_pipeline(&map, &cfg);
    }

    #[test]
    fn explicit_round_cap_respected() {
        let map = FaultMap::new(Topology::mesh(6, 6), [c(2, 2), c(3, 3)]);
        let out = run_pipeline(
            &map,
            &PipelineConfig {
                max_rounds: Some(50),
                ..PipelineConfig::default()
            },
        );
        assert!(out.safety_trace.rounds_executed() <= 50);
        assert!(out.safety_trace.converged);
    }
}
