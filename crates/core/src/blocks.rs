//! Faulty-block extraction (connected unsafe nodes).

use crate::labeling::safety::SafetyState;
use crate::status::FaultMap;
use ocp_geometry::{Rect, Region};
use ocp_mesh::{connected_components_grid, Coord, Grid, TopologyKind};

/// One faulty block: a maximal connected set of unsafe nodes.
///
/// Section 3: faulty blocks in 2-D meshes are disjoint rectangles; under
/// Definition 2a any two are at distance ≥ 3, under Definition 2b ≥ 2.
#[derive(Clone, Debug)]
pub struct FaultyBlock {
    /// Member cells in machine coordinates.
    pub cells: Region,
    /// Member cells in planar coordinates (unwrapped across a torus seam);
    /// `None` if the block wraps all the way around a torus and admits no
    /// planar embedding.
    pub planar: Option<Region>,
    /// The faulty cells of the block (machine coordinates).
    pub faults: Region,
}

impl FaultyBlock {
    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the block has no members (never produced by extraction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Nonfaulty nodes sacrificed to this block — the cost the paper's
    /// phase 2 recovers.
    pub fn nonfaulty_count(&self) -> usize {
        self.cells.len() - self.faults.len()
    }

    /// Planar bounding box (`None` for an unwrappable torus block).
    pub fn bbox(&self) -> Option<Rect> {
        self.planar.as_ref().and_then(|p| p.bbox())
    }

    /// True if the block is exactly a full rectangle (the shape Section 3
    /// guarantees). Unwrappable torus blocks report `false`.
    pub fn is_rectangle(&self) -> bool {
        self.planar.as_ref().is_some_and(|p| p.is_rectangle())
    }

    /// Block diameter `d(B)` — the paper's per-phase round bound is
    /// `max d(B)` over all blocks. `None` for unwrappable torus blocks.
    pub fn diameter(&self) -> Option<u32> {
        self.bbox().map(|b| b.diameter())
    }
}

/// Extracts the faulty blocks from a converged phase-1 grid.
///
/// # Panics
/// Panics if the safety grid covers a different machine than `map`.
pub fn extract_blocks(map: &FaultMap, safety: &Grid<SafetyState>) -> Vec<FaultyBlock> {
    assert_eq!(
        map.topology(),
        safety.topology(),
        "safety grid belongs to a different machine"
    );
    let topology = map.topology();
    connected_components_grid(safety, |&s| s == SafetyState::Unsafe)
        .into_iter()
        .map(|comp| {
            let faults: Vec<Coord> = comp
                .cells
                .iter()
                .copied()
                .filter(|&c| map.is_faulty(c))
                .collect();
            // On a mesh the planar embedding is the identity — skip the
            // seam-unwrapping BFS, which dominates extraction on big blocks.
            let unwrapped = (topology.kind() == TopologyKind::Torus)
                .then(|| Region::unwrapped(topology, &comp.cells));
            let cells = Region::from_cells(comp.cells);
            let planar = match unwrapped {
                Some(p) => p, // torus: `None` when the block wraps around
                None => Some(cells.clone()),
            };
            FaultyBlock {
                planar,
                cells,
                faults: Region::from_cells(faults),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::safety::{compute_safety, SafetyRule};
    use ocp_distsim::Executor;
    use ocp_mesh::Topology;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn blocks_of(t: Topology, faults: &[Coord], rule: SafetyRule) -> (FaultMap, Vec<FaultyBlock>) {
        let map = FaultMap::new(t, faults.iter().copied());
        let safety = compute_safety(&map, rule, Executor::Sequential, 400);
        let blocks = extract_blocks(&map, &safety.grid);
        (map, blocks)
    }

    #[test]
    fn section3_single_block() {
        let (_m, blocks) = blocks_of(
            Topology::mesh(6, 6),
            &[c(1, 3), c(2, 1), c(3, 2)],
            SafetyRule::BothDimensions,
        );
        assert_eq!(blocks.len(), 1);
        let b = &blocks[0];
        assert_eq!(b.len(), 9);
        assert_eq!(b.faults.len(), 3);
        assert_eq!(b.nonfaulty_count(), 6);
        assert!(b.is_rectangle());
        assert_eq!(b.bbox(), Some(Rect::new(c(1, 1), c(3, 3))));
        assert_eq!(b.diameter(), Some(4));
    }

    #[test]
    fn blocks_are_rectangles_on_random_patterns() {
        use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};
        for rule in [SafetyRule::TwoUnsafeNeighbors, SafetyRule::BothDimensions] {
            for seed in 0..8u64 {
                let t = Topology::mesh(20, 20);
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut all: Vec<Coord> = t.coords().collect();
                all.shuffle(&mut rng);
                let faults: Vec<Coord> = all.into_iter().take(25).collect();
                let (_m, blocks) = blocks_of(t, &faults, rule);
                for b in &blocks {
                    assert!(
                        b.is_rectangle(),
                        "{rule:?} seed {seed}: non-rect block {:?}",
                        b.cells
                    );
                }
            }
        }
    }

    #[test]
    fn block_distance_bounds() {
        use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};
        let t = Topology::mesh(24, 24);
        for (rule, min_d) in [
            (SafetyRule::TwoUnsafeNeighbors, 3),
            (SafetyRule::BothDimensions, 2),
        ] {
            for seed in 0..6u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut all: Vec<Coord> = t.coords().collect();
                all.shuffle(&mut rng);
                let faults: Vec<Coord> = all.into_iter().take(30).collect();
                let (_m, blocks) = blocks_of(t, &faults, rule);
                for i in 0..blocks.len() {
                    for j in i + 1..blocks.len() {
                        let d = blocks[i].cells.distance(&blocks[j].cells).unwrap();
                        assert!(
                            d >= min_d,
                            "{rule:?} seed {seed}: blocks at distance {d} < {min_d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn torus_seam_block_unwraps_to_rectangle() {
        let t = Topology::torus(10, 10);
        // Diagonal faults across the corner seam.
        let (_m, blocks) = blocks_of(t, &[c(9, 9), c(0, 0)], SafetyRule::BothDimensions);
        assert_eq!(blocks.len(), 1);
        let b = &blocks[0];
        assert_eq!(b.len(), 4);
        assert!(b.is_rectangle(), "seam block should unwrap to a 2x2 rect");
    }

    #[test]
    fn every_fault_is_in_exactly_one_block() {
        let faults = [c(2, 2), c(3, 3), c(10, 10), c(12, 10)];
        let (map, blocks) = blocks_of(Topology::mesh(16, 16), &faults, SafetyRule::BothDimensions);
        for f in map.faults() {
            let owners = blocks.iter().filter(|b| b.cells.contains(f)).count();
            assert_eq!(owners, 1, "fault {f} in {owners} blocks");
        }
    }

    #[test]
    fn no_faults_no_blocks() {
        let (_m, blocks) = blocks_of(Topology::mesh(8, 8), &[], SafetyRule::BothDimensions);
        assert!(blocks.is_empty());
    }
}
