//! # ocp-core
//!
//! The paper's contribution: a distributed two-phase labeling scheme that
//! turns rectangular **faulty blocks** into minimal **orthogonal convex
//! polygons** ("disabled regions") in 2-D meshes and tori.
//!
//! ## The three orthogonal node classifications (Section 3)
//!
//! 1. **faulty / nonfaulty** — ground truth, [`FaultMap`].
//! 2. **safe / unsafe** — computed by phase 1 ([`labeling::safety`]):
//!    * Definition 2a: a nonfaulty node is unsafe iff it has **two or more**
//!      unsafe neighbors (classical faulty-block rule, blocks ≥ 3 apart).
//!    * Definition 2b: a nonfaulty node is unsafe iff it has an unsafe
//!      neighbor **in both dimensions** (enhanced rule, blocks ≥ 2 apart,
//!      fewer nonfaulty nodes sacrificed).
//!
//!    Connected unsafe nodes form rectangular faulty blocks
//!    ([`blocks::extract_blocks`]).
//! 3. **enabled / disabled** — computed by phase 2
//!    ([`labeling::enablement`], Definition 3): faulty ⇒ disabled, safe ⇒
//!    enabled; a nonfaulty unsafe node starts disabled and is flipped to
//!    enabled once it sees **two or more enabled** neighbors. The rule is
//!    monotone (disabled → enabled only), which is exactly what makes the
//!    status well defined — Figure 2's "double status" examples are pinned
//!    as tests. Connected disabled nodes form the disabled regions
//!    ([`regions::extract_regions`]).
//!
//! Both phases run as synchronous neighbor-exchange protocols on
//! `ocp-distsim`'s engine, converging within the largest block diameter
//! rounds.
//!
//! ## Reproduced results
//!
//! * Theorem 1 — every disabled region is an orthogonal convex polygon.
//! * Lemma 1 — every corner node of a disabled region is faulty.
//! * Theorem 2 — every disabled region is the *smallest* orthogonal convex
//!   polygon covering the faults it contains (checked against the
//!   orthogonal convex closure).
//! * Corollary — disabled regions of a block never contain more nonfaulty
//!   nodes than the smallest orthogonal convex polygon covering all the
//!   block's faults.
//!
//! [`verify::verify`] machine-checks all of these on any outcome, and
//! [`pipeline::run_pipeline`] packages the whole flow.
//!
//! ```
//! use ocp_core::prelude::*;
//! use ocp_mesh::{Coord, Topology};
//!
//! // Section 3's example: three faults in a 6x6 mesh.
//! let map = FaultMap::new(
//!     Topology::mesh(6, 6),
//!     [Coord::new(1, 3), Coord::new(2, 1), Coord::new(3, 2)],
//! );
//! let out = run_pipeline(&map, &PipelineConfig::default());
//! assert_eq!(out.blocks.len(), 1);           // one 3x3 faulty block...
//! assert_eq!(out.blocks[0].cells.len(), 9);
//! // ...whose nonfaulty nodes are all re-enabled by phase 2:
//! assert!(out.regions.iter().all(|r| r.nonfaulty_count() == 0));
//! verify(&map, &out).expect("paper invariants hold");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod certificate;
pub mod labeling;
pub mod maintenance;
pub mod partition;
pub mod pipeline;
pub mod regions;
pub mod stats;
pub mod status;
pub(crate) mod telemetry;
pub mod verify;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::blocks::{extract_blocks, FaultyBlock};
    pub use crate::certificate::{outcome_digest, EpochCertificate};
    pub use crate::labeling::enablement::ActivationState;
    pub use crate::labeling::safety::{SafetyRule, SafetyState};
    pub use crate::labeling::LabelEngine;
    pub use crate::maintenance::{run_fault_schedule, FaultScheduleOutcome};
    pub use crate::pipeline::{run_pipeline, try_run_pipeline, PipelineConfig, PipelineOutcome};
    pub use crate::regions::{extract_regions, DisabledRegion};
    pub use crate::stats::ModelStats;
    pub use crate::status::FaultMap;
    pub use crate::verify::{verify, Violation};
    pub use ocp_distsim::ConvergenceError;
}

pub use prelude::*;
