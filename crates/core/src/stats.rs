//! Per-run metrics — the quantities the paper's Figure 5 plots.

use crate::labeling::enablement::ActivationState;
use crate::labeling::safety::SafetyState;
use crate::pipeline::PipelineOutcome;
use crate::status::FaultMap;
use serde::{Deserialize, Serialize};

/// Metrics of one pipeline run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Number of faulty nodes (`f`).
    pub faults: usize,
    /// Nonfaulty nodes labeled unsafe by phase 1 — the nodes the classical
    /// faulty-block model sacrifices.
    pub unsafe_nonfaulty: usize,
    /// Of those, the nodes phase 2 re-enabled.
    pub enabled_recovered: usize,
    /// Nonfaulty nodes still disabled after phase 2.
    pub disabled_nonfaulty: usize,
    /// Faulty blocks formed.
    pub block_count: usize,
    /// Disabled regions formed.
    pub region_count: usize,
    /// Largest block diameter `max d(B)` (`None` if there are no blocks or
    /// a block wraps a torus).
    pub max_block_diameter: Option<u32>,
    /// Rounds needed by phase 1 (Figure 5 (a)).
    pub rounds_phase1: u32,
    /// Rounds needed by phase 2 (Figure 5 (b)).
    pub rounds_phase2: u32,
}

impl ModelStats {
    /// Collects the metrics of a run.
    pub fn collect(map: &FaultMap, outcome: &PipelineOutcome) -> Self {
        let unsafe_nonfaulty = outcome
            .safety
            .iter()
            .filter(|&(c, &s)| s == SafetyState::Unsafe && !map.is_faulty(c))
            .count();
        let disabled_nonfaulty = outcome
            .activation
            .iter()
            .filter(|&(c, &a)| a == ActivationState::Disabled && !map.is_faulty(c))
            .count();
        let max_block_diameter = outcome.blocks.iter().filter_map(|b| b.diameter()).max();
        Self {
            faults: map.fault_count(),
            unsafe_nonfaulty,
            enabled_recovered: unsafe_nonfaulty - disabled_nonfaulty,
            disabled_nonfaulty,
            block_count: outcome.blocks.len(),
            region_count: outcome.regions.len(),
            max_block_diameter,
            rounds_phase1: outcome.safety_trace.rounds(),
            rounds_phase2: outcome.enablement_trace.rounds(),
        }
    }

    /// Figure 5 (c)/(d)'s metric: the fraction of unsafe-but-nonfaulty nodes
    /// that phase 2 re-enabled. `None` when no nonfaulty node was unsafe
    /// (the ratio is undefined; the paper averages only over blocks that
    /// have unsafe nonfaulty nodes).
    pub fn enabled_ratio(&self) -> Option<f64> {
        if self.unsafe_nonfaulty == 0 {
            None
        } else {
            Some(self.enabled_recovered as f64 / self.unsafe_nonfaulty as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, PipelineConfig};
    use ocp_mesh::{Coord, Topology};

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn section3_stats() {
        let map = FaultMap::new(Topology::mesh(6, 6), [c(1, 3), c(2, 1), c(3, 2)]);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let s = ModelStats::collect(&map, &out);
        assert_eq!(s.faults, 3);
        assert_eq!(s.unsafe_nonfaulty, 6); // 3x3 block minus 3 faults
        assert_eq!(s.enabled_recovered, 6); // all re-enabled
        assert_eq!(s.disabled_nonfaulty, 0);
        assert_eq!(s.enabled_ratio(), Some(1.0));
        assert_eq!(s.block_count, 1);
        assert_eq!(s.region_count, 3);
        assert_eq!(s.max_block_diameter, Some(4));
        assert!(s.rounds_phase1 >= 1);
    }

    #[test]
    fn ratio_undefined_without_unsafe_nonfaulty() {
        let map = FaultMap::new(Topology::mesh(6, 6), [c(3, 3)]);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let s = ModelStats::collect(&map, &out);
        assert_eq!(s.unsafe_nonfaulty, 0);
        assert_eq!(s.enabled_ratio(), None);
        assert_eq!(s.rounds_phase1, 0);
        assert_eq!(s.rounds_phase2, 0);
    }

    #[test]
    fn rounds_stay_far_below_mesh_diameter() {
        // The paper states each phase needs about max d(B) rounds and that
        // measured rounds are "much lower than the diameter of the mesh".
        // The literal max d(B) bound can be exceeded by cascaded block
        // merging (one block's growth triggering another merge), so the
        // robust reproducible claims are: phase 2 is bounded by the largest
        // block diameter, and both phases stay well under the machine
        // diameter. (See EXPERIMENTS.md, "round-bound note".)
        use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};
        let t = Topology::mesh(24, 24);
        for seed in 0..6u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut all: Vec<Coord> = t.coords().collect();
            all.shuffle(&mut rng);
            let faults: Vec<Coord> = all.into_iter().take(40).collect();
            let map = FaultMap::new(t, faults);
            let out = run_pipeline(&map, &PipelineConfig::default());
            let s = ModelStats::collect(&map, &out);
            let d = s.max_block_diameter.unwrap_or(0);
            assert!(
                s.rounds_phase1 <= 2 * d.max(1),
                "seed {seed}: phase1 {} > 2*d {}",
                s.rounds_phase1,
                d
            );
            assert!(
                s.rounds_phase2 <= d.max(1),
                "seed {seed}: phase2 {} > d {}",
                s.rounds_phase2,
                d
            );
            assert!(s.rounds_phase1 < t.diameter() / 2);
            assert!(s.rounds_phase2 < t.diameter() / 2);
        }
    }
}
