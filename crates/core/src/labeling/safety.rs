//! Phase 1: the safe/unsafe labeling protocol (Definitions 2a and 2b).

use crate::status::FaultMap;
use ocp_distsim::{
    run, try_run, ConvergenceError, Executor, LockstepProtocol, NeighborStates, RunTrace,
};
use ocp_mesh::{Coord, Dimension, Grid, Topology};
use serde::{Deserialize, Serialize};

/// Which unsafe-node definition phase 1 applies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SafetyRule {
    /// Definition 2a: a nonfaulty node is unsafe iff it has **two or more**
    /// unsafe neighbors. Classical faulty blocks; pairwise distance ≥ 3.
    TwoUnsafeNeighbors,
    /// Definition 2b: a nonfaulty node is unsafe iff it has an unsafe
    /// neighbor **in both dimensions**. Enhanced blocks with fewer nonfaulty
    /// members; pairwise distance ≥ 2. This is the rule the paper's
    /// algorithm (Section 3) uses.
    BothDimensions,
}

/// Safe/unsafe status exchanged by phase 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SafetyState {
    /// Not (yet) implicated in a faulty block.
    Safe,
    /// Faulty, or a nonfaulty node absorbed into a faulty block.
    Unsafe,
}

/// The phase-1 protocol: all faulty nodes are permanently unsafe; nonfaulty
/// nodes start safe and monotonically turn unsafe per the chosen rule.
///
/// The paper initializes every nonfaulty node to safe precisely so that the
/// iteration is monotone and the fixpoint well defined (the same subtlety
/// Definition 3 addresses for phase 2).
pub struct SafetyProtocol<'a> {
    map: &'a FaultMap,
    rule: SafetyRule,
}

impl<'a> SafetyProtocol<'a> {
    /// Protocol over `map` with `rule`.
    pub fn new(map: &'a FaultMap, rule: SafetyRule) -> Self {
        Self { map, rule }
    }
}

impl LockstepProtocol for SafetyProtocol<'_> {
    type State = SafetyState;

    fn topology(&self) -> Topology {
        self.map.topology()
    }

    fn initial(&self, c: Coord) -> SafetyState {
        if self.map.is_faulty(c) {
            SafetyState::Unsafe
        } else {
            SafetyState::Safe
        }
    }

    fn ghost(&self) -> SafetyState {
        // The added boundary lines consist of permanently safe ghost nodes.
        SafetyState::Safe
    }

    fn participates(&self, c: Coord) -> bool {
        !self.map.is_faulty(c)
    }

    fn step(
        &self,
        _c: Coord,
        current: SafetyState,
        neighbors: &NeighborStates<SafetyState>,
    ) -> SafetyState {
        if current == SafetyState::Unsafe {
            return SafetyState::Unsafe; // monotone
        }
        let is_unsafe = |s: SafetyState| s == SafetyState::Unsafe;
        let becomes_unsafe = match self.rule {
            SafetyRule::TwoUnsafeNeighbors => neighbors.count(is_unsafe) >= 2,
            SafetyRule::BothDimensions => {
                neighbors.any_in_dimension(Dimension::X, is_unsafe)
                    && neighbors.any_in_dimension(Dimension::Y, is_unsafe)
            }
        };
        if becomes_unsafe {
            SafetyState::Unsafe
        } else {
            SafetyState::Safe
        }
    }

    fn initial_frontier(&self) -> Option<Vec<Coord>> {
        // Round 1 sees only the faults unsafe, so only their neighbors
        // can flip; the frontier executor filters and deduplicates.
        let t = self.topology();
        Some(
            self.map
                .faults()
                .into_iter()
                .flat_map(|f| {
                    ocp_mesh::Neighborhood::of(t, f)
                        .nodes()
                        .collect::<Vec<Coord>>()
                })
                .collect(),
        )
    }
}

/// Result of phase 1.
#[derive(Clone, Debug)]
pub struct SafetyOutcome {
    /// Converged safe/unsafe status of every node.
    pub grid: Grid<SafetyState>,
    /// Rounds/messages of the distributed run.
    pub trace: RunTrace,
}

/// Runs phase 1 to quiescence.
///
/// Low-level: a run that stalls at `max_rounds` is only reported through
/// [`RunTrace::converged`]. Callers that treat the grid as a fixpoint
/// should prefer [`try_compute_safety`], which makes the stall an error.
pub fn compute_safety(
    map: &FaultMap,
    rule: SafetyRule,
    executor: Executor,
    max_rounds: u32,
) -> SafetyOutcome {
    let protocol = SafetyProtocol::new(map, rule);
    let out = run(&protocol, executor, max_rounds);
    SafetyOutcome {
        grid: out.states,
        trace: out.trace,
    }
}

/// [`compute_safety`] with the convergence watchdog: a run that stalls at
/// `max_rounds` is an explicit [`ConvergenceError`] with diagnostics.
pub fn try_compute_safety(
    map: &FaultMap,
    rule: SafetyRule,
    executor: Executor,
    max_rounds: u32,
) -> Result<SafetyOutcome, ConvergenceError> {
    let protocol = SafetyProtocol::new(map, rule);
    let out = try_run(&protocol, executor, max_rounds)
        .map_err(|e| e.with_label("phase-1 safety labeling"))?;
    Ok(SafetyOutcome {
        grid: out.states,
        trace: out.trace,
    })
}

/// Runs phase 1 on the chosen [`crate::labeling::LabelEngine`]. All engines
/// produce identical grids and traces; see the engine docs.
pub fn compute_safety_with(
    map: &FaultMap,
    rule: SafetyRule,
    engine: crate::labeling::LabelEngine,
    max_rounds: u32,
) -> SafetyOutcome {
    let timer = crate::telemetry::PhaseTimer::start();
    let out = match engine {
        crate::labeling::LabelEngine::Lockstep(executor) => {
            compute_safety(map, rule, executor, max_rounds)
        }
        crate::labeling::LabelEngine::Bitboard { threads } => {
            crate::labeling::bits::compute_safety_bits(map, rule, None, threads, max_rounds)
        }
    };
    crate::telemetry::record_phase("safety", engine, &out.trace, timer);
    out
}

/// [`compute_safety_with`] with the convergence watchdog.
pub fn try_compute_safety_with(
    map: &FaultMap,
    rule: SafetyRule,
    engine: crate::labeling::LabelEngine,
    max_rounds: u32,
) -> Result<SafetyOutcome, ConvergenceError> {
    let timer = crate::telemetry::PhaseTimer::start();
    let out = match engine {
        crate::labeling::LabelEngine::Lockstep(executor) => {
            try_compute_safety(map, rule, executor, max_rounds)
        }
        crate::labeling::LabelEngine::Bitboard { threads } => {
            crate::labeling::bits::try_compute_safety_bits(map, rule, None, threads, max_rounds)
        }
    }?;
    crate::telemetry::record_phase("safety", engine, &out.trace, timer);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn unsafe_set(out: &SafetyOutcome) -> Vec<Coord> {
        out.grid
            .coords_where(|&s| s == SafetyState::Unsafe)
            .collect()
    }

    fn run_mesh(faults: &[Coord], rule: SafetyRule) -> SafetyOutcome {
        let map = FaultMap::new(Topology::mesh(8, 8), faults.iter().copied());
        compute_safety(&map, rule, Executor::Sequential, 100)
    }

    #[test]
    fn no_faults_all_safe_zero_rounds() {
        let out = run_mesh(&[], SafetyRule::BothDimensions);
        assert!(unsafe_set(&out).is_empty());
        assert_eq!(out.trace.rounds(), 0);
    }

    #[test]
    fn isolated_fault_stays_alone_under_both_rules() {
        for rule in [SafetyRule::TwoUnsafeNeighbors, SafetyRule::BothDimensions] {
            let out = run_mesh(&[c(4, 4)], rule);
            assert_eq!(unsafe_set(&out), vec![c(4, 4)]);
            assert_eq!(out.trace.rounds(), 0);
        }
    }

    #[test]
    fn diagonal_faults_merge_into_2x2_block() {
        // The paper notes faults (x,y) and (x+1,y+1) end up in one region.
        let out = run_mesh(&[c(3, 3), c(4, 4)], SafetyRule::BothDimensions);
        let mut got = unsafe_set(&out);
        got.sort();
        assert_eq!(got, vec![c(3, 3), c(3, 4), c(4, 3), c(4, 4)]);
    }

    #[test]
    fn rules_differ_on_colinear_neighbors() {
        // A node with two unsafe neighbors along the SAME dimension is
        // unsafe under 2a but safe under 2b (the paper's distinguishing
        // example).
        let faults = [c(2, 4), c(4, 4)]; // (3,4) has unsafe west and east
        let a = run_mesh(&faults, SafetyRule::TwoUnsafeNeighbors);
        let b = run_mesh(&faults, SafetyRule::BothDimensions);
        let au = unsafe_set(&a);
        let bu = unsafe_set(&b);
        assert!(au.contains(&c(3, 4)), "2a should absorb the middle node");
        assert!(
            !bu.contains(&c(3, 4)),
            "2b should keep the middle node safe"
        );
    }

    #[test]
    fn def2b_produces_no_more_unsafe_than_def2a() {
        // Sweep a few seeded random patterns; 2b is the enhanced definition
        // that sacrifices fewer nonfaulty nodes.
        use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};
        let t = Topology::mesh(16, 16);
        for seed in 0..5u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut all: Vec<Coord> = t.coords().collect();
            all.shuffle(&mut rng);
            let faults: Vec<Coord> = all.into_iter().take(20).collect();
            let map = FaultMap::new(t, faults.iter().copied());
            let a = compute_safety(
                &map,
                SafetyRule::TwoUnsafeNeighbors,
                Executor::Sequential,
                200,
            );
            let b = compute_safety(&map, SafetyRule::BothDimensions, Executor::Sequential, 200);
            let ca = a.grid.count_where(|&s| s == SafetyState::Unsafe);
            let cb = b.grid.count_where(|&s| s == SafetyState::Unsafe);
            assert!(cb <= ca, "seed {seed}: 2b={cb} > 2a={ca}");
        }
    }

    #[test]
    fn section3_example_block() {
        // Faults (1,3), (2,1), (3,2) -> block {1..3} x {1..3} under 2b.
        let map = FaultMap::new(Topology::mesh(6, 6), [c(1, 3), c(2, 1), c(3, 2)]);
        let out = compute_safety(&map, SafetyRule::BothDimensions, Executor::Sequential, 100);
        let mut got = unsafe_set(&out);
        got.sort();
        let want: Vec<Coord> = (1..=3)
            .flat_map(|x| (1..=3).map(move |y| c(x, y)))
            .collect();
        assert_eq!(got, want);
        assert!(out.trace.converged);
    }

    #[test]
    fn ghost_boundary_keeps_border_faults_small() {
        // A fault hugging the mesh corner: ghosts are safe, so nothing
        // special happens at the border.
        let out = run_mesh(&[c(0, 0)], SafetyRule::BothDimensions);
        assert_eq!(unsafe_set(&out), vec![c(0, 0)]);
    }

    #[test]
    fn torus_labeling_wraps() {
        // Diagonal faults across the torus seam merge exactly like interior
        // ones.
        let t = Topology::torus(8, 8);
        let map = FaultMap::new(t, [c(7, 7), c(0, 0)]);
        let out = compute_safety(&map, SafetyRule::BothDimensions, Executor::Sequential, 100);
        let mut got = unsafe_set(&out);
        got.sort();
        assert_eq!(got, vec![c(0, 0), c(0, 7), c(7, 0), c(7, 7)]);
    }
}
