//! The two distributed labeling phases of the paper.
//!
//! Phase 1 ([`safety`]) classifies nonfaulty nodes safe/unsafe and yields the
//! rectangular faulty blocks; phase 2 ([`enablement`]) re-enables as many
//! unsafe-but-nonfaulty nodes as possible, leaving minimal orthogonal convex
//! disabled regions. Both are [`ocp_distsim::LockstepProtocol`]s and run on
//! any of the three executors.

pub mod distance;
pub mod enablement;
pub mod safety;

/// Default round cap for a topology: generous multiple of the diameter (the
/// protocols converge within the largest block diameter, which is at most
/// the machine diameter).
pub fn default_round_cap(topology: ocp_mesh::Topology) -> u32 {
    2 * (topology.width() + topology.height()) + 8
}
