//! The two distributed labeling phases of the paper.
//!
//! Phase 1 ([`safety`]) classifies nonfaulty nodes safe/unsafe and yields the
//! rectangular faulty blocks; phase 2 ([`enablement`]) re-enables as many
//! unsafe-but-nonfaulty nodes as possible, leaving minimal orthogonal convex
//! disabled regions. Both are [`ocp_distsim::LockstepProtocol`]s and run on
//! any of the generic executors — or, via [`LabelEngine::Bitboard`], on the
//! word-parallel bit-packed kernels of [`bits`], which reproduce the exact
//! same outcomes and traces at a fraction of the cost.

pub mod bits;
pub mod distance;
pub mod enablement;
pub mod safety;

use ocp_distsim::Executor;

/// How the labeling phases execute.
///
/// Every variant produces byte-identical grids and [`ocp_distsim::RunTrace`]s
/// for the paper's (deterministic, monotone) protocols — pinned by the
/// executor-equivalence tests — so the choice is purely a performance one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelEngine {
    /// Run the phase protocols generically on an `ocp-distsim` executor
    /// (the paper-faithful message-passing renderings).
    Lockstep(Executor),
    /// Protocol-specific word-parallel bit-packed kernels with a row-level
    /// frontier ([`bits`]); `threads > 1` adds row-band tiling with halo
    /// exchange. Orders of magnitude faster on large sparse-fault meshes.
    Bitboard {
        /// Worker threads for the tiled kernel (clamped to the mesh
        /// height); `1` runs the single-threaded row-frontier kernel.
        threads: usize,
    },
}

impl Default for LabelEngine {
    /// The paper-faithful reference setting.
    fn default() -> Self {
        LabelEngine::Lockstep(Executor::Sequential)
    }
}

impl From<Executor> for LabelEngine {
    fn from(executor: Executor) -> Self {
        LabelEngine::Lockstep(executor)
    }
}

impl LabelEngine {
    /// The fastest known configuration for serving workloads (E15): the
    /// single-threaded bitboard kernel — per-round work is so small after
    /// bit packing that cross-thread halo synchronization only pays off
    /// beyond the mesh sizes the service typically labels.
    pub fn bitboard() -> Self {
        LabelEngine::Bitboard { threads: 1 }
    }

    /// Stable lowercase identifier, used as the `engine` label on every
    /// metric the labeling phases export and as the engine name in the
    /// `repro` experiment sweeps (e.g. `lockstep-sequential`,
    /// `lockstep-sharded4`, `bitboard-1`).
    pub fn label(&self) -> String {
        match self {
            LabelEngine::Lockstep(executor) => format!("lockstep-{}", executor.label()),
            LabelEngine::Bitboard { threads } => format!("bitboard-{threads}"),
        }
    }
}

/// Default round cap for a topology: generous multiple of the diameter (the
/// protocols converge within the largest block diameter, which is at most
/// the machine diameter).
pub fn default_round_cap(topology: ocp_mesh::Topology) -> u32 {
    2 * (topology.width() + topology.height()) + 8
}
