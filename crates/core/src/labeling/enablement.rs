//! Phase 2: the enabled/disabled labeling protocol (Definition 3).

use crate::labeling::safety::SafetyState;
use crate::status::FaultMap;
use ocp_distsim::{
    run, try_run, ConvergenceError, Executor, LockstepProtocol, NeighborStates, RunTrace,
};
use ocp_mesh::{Coord, Grid, Topology};
use serde::{Deserialize, Serialize};

/// Enabled/disabled status exchanged by phase 2. Only enabled nodes take
/// part in routing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ActivationState {
    /// Participates in routing.
    Enabled,
    /// Treated as faulty by routing (faulty, or sacrificed for convexity).
    Disabled,
}

/// The phase-2 protocol (Definition 3, Wu):
///
/// * all faulty nodes are permanently disabled;
/// * all safe nodes are enabled;
/// * an unsafe (nonfaulty) node starts disabled and flips to enabled once it
///   has **two or more enabled** neighbors.
///
/// The rule is deliberately monotone — nodes only ever go disabled →
/// enabled — so each node has exactly one well-defined final status. (A
/// recursive two-way definition admits "double status": the paper's Figure
/// 2(b) configuration could consistently be either all-enabled or
/// all-disabled.)
pub struct EnablementProtocol<'a> {
    map: &'a FaultMap,
    safety: &'a Grid<SafetyState>,
}

impl<'a> EnablementProtocol<'a> {
    /// Protocol over `map`, consuming phase 1's converged safety grid.
    ///
    /// # Panics
    /// Panics if the safety grid covers a different topology.
    pub fn new(map: &'a FaultMap, safety: &'a Grid<SafetyState>) -> Self {
        assert_eq!(
            map.topology(),
            safety.topology(),
            "safety grid belongs to a different machine"
        );
        Self { map, safety }
    }
}

impl LockstepProtocol for EnablementProtocol<'_> {
    type State = ActivationState;

    fn topology(&self) -> Topology {
        self.map.topology()
    }

    fn initial(&self, c: Coord) -> ActivationState {
        if self.map.is_faulty(c) {
            ActivationState::Disabled
        } else if *self.safety.get(c) == SafetyState::Safe {
            ActivationState::Enabled
        } else {
            ActivationState::Disabled
        }
    }

    fn ghost(&self) -> ActivationState {
        // Ghost nodes are "safe but do not participate in any activities";
        // for the labeling they count as enabled neighbors.
        ActivationState::Enabled
    }

    fn participates(&self, c: Coord) -> bool {
        !self.map.is_faulty(c)
    }

    fn step(
        &self,
        _c: Coord,
        current: ActivationState,
        neighbors: &NeighborStates<ActivationState>,
    ) -> ActivationState {
        if current == ActivationState::Enabled {
            return ActivationState::Enabled; // monotone
        }
        if neighbors.count(|s| s == ActivationState::Enabled) >= 2 {
            ActivationState::Enabled
        } else {
            ActivationState::Disabled
        }
    }

    fn initial_frontier(&self) -> Option<Vec<Coord>> {
        // Enabled nodes never change (monotone) and faulty nodes don't
        // participate, so only the disabled nonfaulty — i.e. the unsafe
        // nonfaulty — can flip in round 1.
        Some(
            self.safety
                .iter()
                .filter(|&(c, &s)| s == SafetyState::Unsafe && !self.map.is_faulty(c))
                .map(|(c, _)| c)
                .collect(),
        )
    }
}

/// Result of phase 2.
#[derive(Clone, Debug)]
pub struct EnablementOutcome {
    /// Converged enabled/disabled status of every node.
    pub grid: Grid<ActivationState>,
    /// Rounds/messages of the distributed run.
    pub trace: RunTrace,
}

/// Runs phase 2 to quiescence on top of a converged phase-1 grid.
///
/// Low-level: a run that stalls at `max_rounds` is only reported through
/// [`RunTrace::converged`]. Callers that treat the grid as a fixpoint
/// should prefer [`try_compute_enablement`], which makes the stall an
/// error.
pub fn compute_enablement(
    map: &FaultMap,
    safety: &Grid<SafetyState>,
    executor: Executor,
    max_rounds: u32,
) -> EnablementOutcome {
    let protocol = EnablementProtocol::new(map, safety);
    let out = run(&protocol, executor, max_rounds);
    EnablementOutcome {
        grid: out.states,
        trace: out.trace,
    }
}

/// [`compute_enablement`] with the convergence watchdog: a run that stalls
/// at `max_rounds` is an explicit [`ConvergenceError`] with diagnostics.
pub fn try_compute_enablement(
    map: &FaultMap,
    safety: &Grid<SafetyState>,
    executor: Executor,
    max_rounds: u32,
) -> Result<EnablementOutcome, ConvergenceError> {
    let protocol = EnablementProtocol::new(map, safety);
    let out = try_run(&protocol, executor, max_rounds)
        .map_err(|e| e.with_label("phase-2 enablement labeling"))?;
    Ok(EnablementOutcome {
        grid: out.states,
        trace: out.trace,
    })
}

/// Runs phase 2 on the chosen [`crate::labeling::LabelEngine`]. All engines
/// produce identical grids and traces; see the engine docs.
pub fn compute_enablement_with(
    map: &FaultMap,
    safety: &Grid<SafetyState>,
    engine: crate::labeling::LabelEngine,
    max_rounds: u32,
) -> EnablementOutcome {
    let timer = crate::telemetry::PhaseTimer::start();
    let out = match engine {
        crate::labeling::LabelEngine::Lockstep(executor) => {
            compute_enablement(map, safety, executor, max_rounds)
        }
        crate::labeling::LabelEngine::Bitboard { threads } => {
            crate::labeling::bits::compute_enablement_bits(map, safety, threads, max_rounds)
        }
    };
    crate::telemetry::record_phase("enablement", engine, &out.trace, timer);
    out
}

/// [`compute_enablement_with`] with the convergence watchdog.
pub fn try_compute_enablement_with(
    map: &FaultMap,
    safety: &Grid<SafetyState>,
    engine: crate::labeling::LabelEngine,
    max_rounds: u32,
) -> Result<EnablementOutcome, ConvergenceError> {
    let timer = crate::telemetry::PhaseTimer::start();
    let out = match engine {
        crate::labeling::LabelEngine::Lockstep(executor) => {
            try_compute_enablement(map, safety, executor, max_rounds)
        }
        crate::labeling::LabelEngine::Bitboard { threads } => {
            crate::labeling::bits::try_compute_enablement_bits(map, safety, threads, max_rounds)
        }
    }?;
    crate::telemetry::record_phase("enablement", engine, &out.trace, timer);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::safety::{compute_safety, SafetyRule};

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn pipeline(t: Topology, faults: &[Coord]) -> (FaultMap, EnablementOutcome) {
        let map = FaultMap::new(t, faults.iter().copied());
        let safety = compute_safety(&map, SafetyRule::BothDimensions, Executor::Sequential, 400);
        let enable = compute_enablement(&map, &safety.grid, Executor::Sequential, 400);
        (map, enable)
    }

    fn disabled(out: &EnablementOutcome) -> Vec<Coord> {
        out.grid
            .coords_where(|&s| s == ActivationState::Disabled)
            .collect()
    }

    #[test]
    fn section3_example_enables_all_nonfaulty() {
        let (_map, out) = pipeline(Topology::mesh(6, 6), &[c(1, 3), c(2, 1), c(3, 2)]);
        // "All the nonfaulty nodes in the faulty block are enabled."
        let mut got = disabled(&out);
        got.sort();
        assert_eq!(got, vec![c(1, 3), c(2, 1), c(3, 2)]);
    }

    #[test]
    fn faulty_nodes_never_enable() {
        let (map, out) = pipeline(Topology::mesh(8, 8), &[c(2, 2), c(3, 3), c(2, 3), c(3, 2)]);
        for f in map.faults() {
            assert_eq!(*out.grid.get(f), ActivationState::Disabled);
        }
    }

    #[test]
    fn fig2a_corner_pocket_is_re_enabled() {
        // Faulty 4x4 block except its upper-right 2x2 pocket.
        let block = ocp_geometry::Rect::new(c(1, 1), c(4, 4));
        let pocket = ocp_geometry::Rect::new(c(3, 3), c(4, 4));
        let faults: Vec<Coord> = block.cells().filter(|&x| !pocket.contains(x)).collect();
        let (_map, out) = pipeline(Topology::mesh(8, 8), &faults);
        for p in pocket.cells() {
            assert_eq!(
                *out.grid.get(p),
                ActivationState::Enabled,
                "corner pocket node {p} should re-enable"
            );
        }
    }

    #[test]
    fn fig2b_center_pocket_stays_disabled() {
        // Faulty 5x4 block except a 2x2 pocket at the top center: each
        // pocket node sees at most one enabled neighbor, so the monotone
        // rule keeps the whole pocket disabled.
        let block = ocp_geometry::Rect::new(c(1, 1), c(5, 4));
        let pocket = ocp_geometry::Rect::new(c(2, 3), c(3, 4));
        let faults: Vec<Coord> = block.cells().filter(|&x| !pocket.contains(x)).collect();
        let (_map, out) = pipeline(Topology::mesh(9, 8), &faults);
        for p in pocket.cells() {
            assert_eq!(
                *out.grid.get(p),
                ActivationState::Disabled,
                "center pocket node {p} must stay disabled"
            );
        }
    }

    #[test]
    fn border_pocket_uses_ghost_neighbors() {
        // A pocket in the mesh corner: ghost nodes count as enabled
        // neighbors, so the corner cell of the machine re-enables exactly
        // like an interior corner pocket.
        let block = ocp_geometry::Rect::new(c(0, 0), c(2, 2));
        let faults: Vec<Coord> = block.cells().filter(|&x| x != c(0, 0)).collect();
        let (_map, out) = pipeline(Topology::mesh(6, 6), &faults);
        assert_eq!(*out.grid.get(c(0, 0)), ActivationState::Enabled);
    }

    #[test]
    fn enablement_rounds_zero_when_nothing_unsafe_nonfaulty() {
        let (_map, out) = pipeline(Topology::mesh(8, 8), &[c(4, 4)]);
        assert_eq!(out.trace.rounds(), 0);
        assert!(out.trace.converged);
    }

    #[test]
    #[should_panic(expected = "different machine")]
    fn topology_mismatch_panics() {
        let map = FaultMap::healthy(Topology::mesh(4, 4));
        let other = FaultMap::healthy(Topology::mesh(5, 5));
        let safety = compute_safety(&other, SafetyRule::BothDimensions, Executor::Sequential, 10);
        let _ = EnablementProtocol::new(&map, &safety.grid);
    }
}
